//! Ablation: block pointers on vs off (paper Section 6's design choice).
//!
//! With pointers, migration caused by load balancing is deferred past the
//! pointer stabilization time and duplicate moves are avoided; without
//! them, every balance move copies data immediately. The paper argues the
//! pointer optimization roughly halves balancing traffic on Harvard —
//! this ablation measures both sides, plus the availability cost of the
//! temporary 2-copy windows pointers create.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{availability_fixture, AVAIL_WARMUP_DAYS};
use d2_core::{AvailabilitySim, ClusterConfig, SystemKind};
use d2_sim::{FailureTrace, SimTime};
use d2_workload::split_tasks;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let (trace, base, model) = availability_fixture();
    let tasks = split_tasks(
        &trace.accesses,
        SimTime::from_secs(5),
        SimTime::from_secs(300),
    );
    let failures = FailureTrace::generate(base.nodes, &model, &mut StdRng::seed_from_u64(100));

    println!("\nAblation: block pointers on/off (D2, Harvard workload)");
    println!(
        "{:>10}  {:>14}  {:>12}  {:>14}  {:>10}",
        "pointers", "unavailability", "migrated(MB)", "ptrs-installed", "moves"
    );
    for use_pointers in [true, false] {
        let cfg = ClusterConfig {
            use_pointers,
            ..base
        };
        let mut sim = AvailabilitySim::build(SystemKind::D2, &cfg, &trace, AVAIL_WARMUP_DAYS);
        let report = sim.run(&trace, &tasks, &failures);
        let s = sim.cluster.stats;
        println!(
            "{:>10}  {:>14.2e}  {:>12.1}  {:>14}  {:>10}",
            use_pointers,
            report.task_unavailability(),
            s.migration_bytes as f64 / 1e6,
            s.pointers_installed,
            s.balance_moves
        );
    }

    let mut g = c.benchmark_group("ablation_pointers");
    g.sample_size(10);
    let cfg = ClusterConfig {
        use_pointers: false,
        ..base
    };
    g.bench_function("no_pointer_availability_run", |bencher| {
        bencher.iter(|| {
            let mut sim = AvailabilitySim::build(SystemKind::D2, &cfg, &trace, 0.02);
            sim.run(&trace, &tasks, &failures)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
