//! Ablation beyond the paper's figures: how D2's task availability
//! responds to the redundancy scheme —
//!
//! - replication r = 3 (the paper's availability runs),
//! - replication r = 4 (the paper notes zero D2 failures at r = 4),
//! - 2-of-4 erasure coding (the alternative Section 3 discusses:
//!   same 4-successor group, half the storage),
//! - hybrid placement r = 3 + 1 hashed safeguard replica (the paper's
//!   Section 11 future work, implemented here).

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{availability_fixture, AVAIL_WARMUP_DAYS};
use d2_core::{AvailabilitySim, ClusterConfig, SystemKind};
use d2_ec::RedundancyPolicy;
use d2_sim::{FailureTrace, SimTime};
use d2_workload::split_tasks;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let (trace, base, model) = availability_fixture();
    let tasks = split_tasks(
        &trace.accesses,
        SimTime::from_secs(5),
        SimTime::from_secs(300),
    );
    let failures = FailureTrace::generate(base.nodes, &model, &mut StdRng::seed_from_u64(100));

    let variants: Vec<(&str, ClusterConfig)> = vec![
        (
            "replication r=3",
            ClusterConfig {
                replicas: 3,
                ..base
            },
        ),
        (
            "replication r=4",
            ClusterConfig {
                replicas: 4,
                ..base
            },
        ),
        (
            "erasure 2-of-4",
            ClusterConfig {
                redundancy: Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 }),
                ..base
            },
        ),
        (
            "hybrid r=3 + 1 hashed",
            ClusterConfig {
                replicas: 3,
                hybrid_hash_replicas: 1,
                ..base
            },
        ),
    ];

    println!("\nAblation: D2 task unavailability by redundancy scheme");
    println!(
        "{:>24}  {:>14}  {:>12}  {:>10}",
        "scheme", "unavailability", "failed-tasks", "stored(MB)"
    );
    for (label, cfg) in &variants {
        let mut sim = AvailabilitySim::build(SystemKind::D2, cfg, &trace, AVAIL_WARMUP_DAYS);
        let stored: u64 = sim.cluster.total_load_bytes().iter().sum();
        let report = sim.run(&trace, &tasks, &failures);
        println!(
            "{label:>24}  {:>14.2e}  {:>12}  {:>10.1}",
            report.task_unavailability(),
            report.failed_tasks,
            stored as f64 / 1e6
        );
    }

    let mut g = c.benchmark_group("ablation_redundancy");
    g.sample_size(10);
    let quick_cfg = ClusterConfig {
        redundancy: Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 }),
        ..base
    };
    g.bench_function("erasure_availability_run", |bencher| {
        bencher.iter(|| {
            let mut sim = AvailabilitySim::build(SystemKind::D2, &quick_cfg, &trace, 0.02);
            sim.run(&trace, &tasks, &failures)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
