//! Figure 10: speedup of D2 over the traditional DHT.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, REPORT_SCALE};
use d2_core::SystemKind;
use d2_experiments::fig10;
use d2_experiments::perf_suite::{self, SuiteConfig};

fn bench(c: &mut Criterion) {
    let trace = harvard(REPORT_SCALE);
    let cfg = SuiteConfig {
        sizes: REPORT_SCALE.perf_sizes(),
        kbps: vec![1500, 384],
        measure_groups: 150,
        seed: 7,
        warmup_days: REPORT_SCALE.warmup_days(),
        systems: vec![SystemKind::D2, SystemKind::Traditional],
        ..SuiteConfig::default()
    };
    let suite = perf_suite::run(&trace, &cfg);
    println!(
        "\n{}",
        fig10::from_suite(&suite, SystemKind::Traditional).render()
    );

    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let small = SuiteConfig {
        sizes: vec![16],
        kbps: vec![1500],
        measure_groups: 40,
        warmup_days: 0.02,
        systems: vec![SystemKind::D2, SystemKind::Traditional],
        ..SuiteConfig::default()
    };
    g.bench_function("speedup_sweep", |bencher| {
        bencher.iter(|| {
            let s = perf_suite::run(&trace, &small);
            fig10::from_suite(&s, SystemKind::Traditional)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
