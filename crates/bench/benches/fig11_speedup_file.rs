//! Figure 11: speedup of D2 over the traditional-file DHT.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, REPORT_SCALE};
use d2_core::SystemKind;
use d2_experiments::fig11;
use d2_experiments::perf_suite::{self, SuiteConfig};

fn bench(c: &mut Criterion) {
    let trace = harvard(REPORT_SCALE);
    let cfg = SuiteConfig {
        sizes: REPORT_SCALE.perf_sizes(),
        kbps: vec![1500, 384],
        measure_groups: 150,
        seed: 7,
        warmup_days: REPORT_SCALE.warmup_days(),
        systems: vec![SystemKind::D2, SystemKind::TraditionalFile],
        ..SuiteConfig::default()
    };
    let suite = perf_suite::run(&trace, &cfg);
    println!("\n{}", fig11::from_suite(&suite).render());

    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let small = SuiteConfig {
        sizes: vec![16],
        kbps: vec![1500],
        measure_groups: 40,
        warmup_days: 0.02,
        systems: vec![SystemKind::D2, SystemKind::TraditionalFile],
        ..SuiteConfig::default()
    };
    g.bench_function("speedup_vs_file_sweep", |bencher| {
        bencher.iter(|| fig11::from_suite(&perf_suite::run(&trace, &small)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
