//! Figure 12: per-user speedup breakdown at the largest configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, REPORT_SCALE};
use d2_core::SystemKind;
use d2_experiments::fig12;
use d2_experiments::perf_suite::{self, SuiteConfig};

fn bench(c: &mut Criterion) {
    let trace = harvard(REPORT_SCALE);
    let largest = *REPORT_SCALE.perf_sizes().last().unwrap();
    let cfg = SuiteConfig {
        sizes: vec![largest],
        kbps: vec![1500],
        measure_groups: 200,
        seed: 7,
        warmup_days: REPORT_SCALE.warmup_days(),
        systems: vec![SystemKind::D2, SystemKind::Traditional],
        ..SuiteConfig::default()
    };
    let suite = perf_suite::run(&trace, &cfg);
    println!("\n{}", fig12::from_suite(&suite, largest, 1500).render());

    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("per_user_extraction", |bencher| {
        bencher.iter(|| fig12::from_suite(&suite, largest, 1500))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
