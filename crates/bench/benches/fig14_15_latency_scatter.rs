//! Figures 14/15: access-group latency scatter vs both baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, REPORT_SCALE};
use d2_experiments::fig14_15;
use d2_experiments::perf_suite::{self, SuiteConfig};

fn bench(c: &mut Criterion) {
    let trace = harvard(REPORT_SCALE);
    let largest = *REPORT_SCALE.perf_sizes().last().unwrap();
    let cfg = SuiteConfig {
        sizes: vec![largest],
        kbps: vec![1500],
        measure_groups: 200,
        seed: 7,
        warmup_days: REPORT_SCALE.warmup_days(),
        ..SuiteConfig::default()
    };
    let suite = perf_suite::run(&trace, &cfg);
    println!("\n{}", fig14_15::from_suite(&suite, largest, 1500).render());

    let mut g = c.benchmark_group("fig14_15");
    g.sample_size(10);
    g.bench_function("scatter_extraction", |bencher| {
        bencher.iter(|| fig14_15::from_suite(&suite, largest, 1500))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
