//! Figure 16: load imbalance over time on the Harvard workload.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, REPORT_SCALE};
use d2_experiments::balance_sim::BalanceSystem;
use d2_experiments::fig16_17::{self, ALL_SYSTEMS};
use d2_sim::SimTime;

fn bench(c: &mut Criterion) {
    let trace = harvard(REPORT_SCALE);
    let cfg = REPORT_SCALE.cluster(7);
    let warmup = SimTime::from_secs_f64(REPORT_SCALE.warmup_days() * 86_400.0 * 2.0);
    let fig = fig16_17::fig16(&trace, &cfg, &ALL_SYSTEMS, warmup);
    println!("\n{}", fig.render());
    for sys in ALL_SYSTEMS {
        if let Some(tail) = fig.tail_mean(sys, 0.3) {
            println!("tail imbalance {:>18}: {tail:.3}", sys.label());
        }
    }

    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("harvard_balance_run", |bencher| {
        bencher
            .iter(|| fig16_17::fig16(&trace, &cfg, &[BalanceSystem::D2], SimTime::from_secs(3600)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
