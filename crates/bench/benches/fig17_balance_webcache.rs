//! Figure 17: load imbalance over time on the Webcache workload.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{web, REPORT_SCALE};
use d2_experiments::balance_sim::BalanceSystem;
use d2_experiments::fig16_17::{self, ALL_SYSTEMS};
use d2_sim::SimTime;

fn bench(c: &mut Criterion) {
    let trace = web(REPORT_SCALE);
    let cfg = REPORT_SCALE.cluster(7);
    let fig = fig16_17::fig17(&trace, &cfg, &ALL_SYSTEMS, SimTime::from_secs(3600));
    println!("\n{}", fig.render());
    for sys in ALL_SYSTEMS {
        if let Some(tail) = fig.tail_mean(sys, 0.3) {
            println!("tail imbalance {:>18}: {tail:.3}", sys.label());
        }
    }

    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    g.bench_function("webcache_balance_run", |bencher| {
        bencher
            .iter(|| fig16_17::fig17(&trace, &cfg, &[BalanceSystem::D2], SimTime::from_secs(3600)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
