//! Figure 3: locality analysis across the three workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, hp, web, REPORT_SCALE};
use d2_experiments::fig3;

fn bench(c: &mut Criterion) {
    let h = harvard(REPORT_SCALE);
    let b = hp();
    let w = web(REPORT_SCALE);
    // Paper: 250 MB per node; scaled to 2 MiB so the quick traces still
    // span hundreds of nodes.
    let fig = fig3::run(&h, &b, &w, 2 << 20);
    println!("\n{}", fig.render());

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("locality_analysis", |bencher| {
        bencher.iter(|| fig3::run(&h, &b, &w, 2 << 20))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
