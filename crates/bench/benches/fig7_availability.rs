//! Figure 7: task unavailability per system and inter-arrival threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{availability_fixture, AVAIL_WARMUP_DAYS};
use d2_experiments::fig7;
use d2_sim::SimTime;

fn bench(c: &mut Criterion) {
    let (trace, cfg, model) = availability_fixture();
    let inters = [
        SimTime::from_secs(5),
        SimTime::from_secs(60),
        SimTime::from_secs(300),
    ];
    let fig = fig7::run(&trace, &cfg, &model, &inters, 3, AVAIL_WARMUP_DAYS, 100);
    println!("\n{}", fig.render());

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("availability_trial", |bencher| {
        bencher.iter(|| fig7::run(&trace, &cfg, &model, &inters[..1], 1, 0.02, 100))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
