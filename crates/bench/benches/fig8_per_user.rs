//! Figure 8: ranked per-user unavailability (inter = 5 s).

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{availability_fixture, AVAIL_WARMUP_DAYS};
use d2_experiments::fig8;

fn bench(c: &mut Criterion) {
    let (trace, cfg, model) = availability_fixture();
    let fig = fig8::run(&trace, &cfg, &model, AVAIL_WARMUP_DAYS, 101);
    println!("\n{}", fig.render());
    for s in &fig.series {
        println!(
            "{:>18}: {} of {} users affected",
            s.system.label(),
            s.affected(),
            s.ranked.len()
        );
    }

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("per_user_availability", |bencher| {
        bencher.iter(|| fig8::run(&trace, &cfg, &model, 0.02, 101))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
