//! Figure 9: DHT lookup messages per node vs system size.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, REPORT_SCALE};
use d2_experiments::fig9;
use d2_experiments::perf_suite::{self, SuiteConfig};

fn bench(c: &mut Criterion) {
    let trace = harvard(REPORT_SCALE);
    let cfg = SuiteConfig {
        sizes: REPORT_SCALE.perf_sizes(),
        kbps: vec![1500],
        measure_groups: 150,
        seed: 7,
        warmup_days: REPORT_SCALE.warmup_days(),
        ..SuiteConfig::default()
    };
    let suite = perf_suite::run(&trace, &cfg);
    println!("\n{}", fig9::from_suite(&suite).render());

    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let small = SuiteConfig {
        sizes: vec![16],
        kbps: vec![1500],
        measure_groups: 40,
        warmup_days: 0.02,
        ..SuiteConfig::default()
    };
    g.bench_function("lookup_traffic_sweep", |bencher| {
        bencher.iter(|| fig9::from_suite(&perf_suite::run(&trace, &small)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
