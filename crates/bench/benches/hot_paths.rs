//! Micro-benchmarks for the simulators' innermost per-access paths: the
//! holder lookup (`SimCluster::holders_of`, now returning an inline
//! small-vector instead of a heap `Vec`) and the replica-group ring walk
//! (`Ring::replica_group_into` reusing a caller buffer vs the allocating
//! `Ring::replica_group`). Both run once per simulated block access, so
//! per-call allocations here dominated the sweep profiles.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use d2_core::{ClusterConfig, SimCluster, SystemKind};
use d2_sim::SimTime;
use d2_types::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let cfg = ClusterConfig {
        nodes: 64,
        replicas: 4,
        seed: 7,
        ..ClusterConfig::default()
    };
    let mut cluster = SimCluster::new(SystemKind::D2, &cfg);
    let mut rng = StdRng::seed_from_u64(9);
    let keys: Vec<Key> = (0..4096).map(|_| Key::random(&mut rng)).collect();
    for &key in &keys {
        cluster.put_block(key, 8 << 10, SimTime::ZERO);
    }

    let mut g = c.benchmark_group("hot_paths");
    g.bench_function("holders_of_inline", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cluster.holders_of(&keys[i]).len())
        })
    });
    g.bench_function("replica_group_into_reused_buffer", |b| {
        let mut out = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            cluster
                .ring
                .replica_group_into(&keys[i], cfg.replicas, &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("replica_group_allocating", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cluster.ring.replica_group(&keys[i], cfg.replicas).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
