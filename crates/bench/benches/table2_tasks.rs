//! Table 2: mean blocks/files/nodes per task.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, REPORT_SCALE};
use d2_experiments::table2;
use d2_sim::SimTime;

fn bench(c: &mut Criterion) {
    let trace = harvard(REPORT_SCALE);
    let cfg = REPORT_SCALE.cluster(7);
    let inters = [
        SimTime::from_secs(1),
        SimTime::from_secs(5),
        SimTime::from_secs(15),
        SimTime::from_secs(60),
    ];
    let table = table2::run(&trace, &cfg, &inters, REPORT_SCALE.warmup_days());
    println!("\n{}", table.render());

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("task_profile", |bencher| {
        bencher.iter(|| table2::run(&trace, &cfg, &inters[..1], 0.0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
