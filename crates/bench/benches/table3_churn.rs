//! Table 3: daily write/remove churn ratios for Harvard and Webcache.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, web, REPORT_SCALE};
use d2_experiments::table3;

fn bench(c: &mut Criterion) {
    let h = harvard(REPORT_SCALE);
    let w = web(REPORT_SCALE);
    let table = table3::run(&h, &w);
    println!("\n{}", table.render());

    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("churn_ratios", |bencher| {
        bencher.iter(|| table3::run(&h, &w))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
