//! Table 4: write traffic vs load-balancing traffic per day.

use criterion::{criterion_group, criterion_main, Criterion};
use d2_bench::{harvard, web, REPORT_SCALE};
use d2_experiments::table4;
use d2_sim::SimTime;

fn bench(c: &mut Criterion) {
    let h = harvard(REPORT_SCALE);
    let w = web(REPORT_SCALE);
    let cfg = REPORT_SCALE.cluster(7);
    let warmup = SimTime::from_secs_f64(REPORT_SCALE.warmup_days() * 86_400.0 * 2.0);
    let table = table4::run(&h, &w, &cfg, warmup);
    println!("\n{}", table.render());

    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("migration_accounting", |bencher| {
        bencher.iter(|| table4::run(&h, &w, &cfg, SimTime::from_secs(3600)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
