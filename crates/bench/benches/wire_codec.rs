//! Micro-benchmark: the d2-wire frame codec on the hot inter-node path.
//!
//! Every live-deployment message crosses encode/decode once per hop, so
//! codec throughput bounds cluster message rates. Three representative
//! shapes: small fixed-size ring maintenance traffic (`FindOwner`), a
//! pointer-heavy variable-size reply (`OwnerIs` with a successor list),
//! and an 8 KiB block put (payload-dominated).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use d2_types::{Key, KeyRange};
use d2_wire::codec::{decode, encode, encode_into, Request, WireMsg};
use d2_wire::{PeerInfo, RingMsg};

fn peer(i: u64) -> PeerInfo {
    PeerInfo {
        id: Key::from_u64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        addr: i as usize,
    }
}

fn samples() -> Vec<(&'static str, WireMsg)> {
    vec![
        (
            "find_owner",
            WireMsg::Ring(RingMsg::FindOwner {
                target: Key::from_fraction(0.61),
                origin: 7,
                req_id: 42,
                hops: 3,
            }),
        ),
        (
            "owner_is_4succ",
            WireMsg::Ring(RingMsg::OwnerIs {
                req_id: 42,
                owner: peer(1),
                range: KeyRange::new(Key::from_fraction(0.1), Key::from_fraction(0.2)),
                successors: (2..6).map(peer).collect(),
                hops: 5,
            }),
        ),
        (
            "put_8k",
            WireMsg::Request {
                req_id: 99,
                from: 11,
                body: Request::Put {
                    key: Key::from_fraction(0.33),
                    fanout: 2,
                    stored: 0,
                    data: vec![0xAB; 8 * 1024],
                },
            },
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    for (name, msg) in samples() {
        let frame = encode(&msg);
        g.bench_function(&format!("encode_{name}"), |b| {
            b.iter(|| black_box(encode(black_box(&msg))).len())
        });
        // The zero-copy path: encode into a reused scratch buffer, as
        // the TCP transport's per-peer send path does — same bytes, no
        // per-frame allocation.
        g.bench_function(&format!("encode_into_{name}"), |b| {
            let mut buf = Vec::with_capacity(frame.len());
            b.iter(|| {
                buf.clear();
                black_box(encode_into(&mut buf, black_box(&msg)))
            })
        });
        g.bench_function(&format!("decode_{name}"), |b| {
            b.iter(|| black_box(decode(black_box(&frame)).unwrap()))
        });
        g.bench_function(&format!("round_trip_{name}"), |b| {
            b.iter(|| black_box(decode(&encode(black_box(&msg))).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
