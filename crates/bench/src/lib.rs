//! Shared fixtures for the per-figure/table benchmarks.
//!
//! Every bench target regenerates one artifact of the paper's evaluation:
//! it *prints* the reproduced table/series once (so `cargo bench` output
//! doubles as the experiment log recorded in EXPERIMENTS.md) and then
//! times a representative kernel at quick scale with Criterion.

use d2_experiments::Scale;
use d2_workload::{HarvardTrace, HpConfig, HpTrace, WebTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The scale used for the printed (reported) experiment output.
pub const REPORT_SCALE: Scale = Scale::Quick;

/// Deterministic Harvard trace for the reported output.
pub fn harvard(scale: Scale) -> HarvardTrace {
    HarvardTrace::generate(&scale.harvard(), &mut StdRng::seed_from_u64(42))
}

/// Deterministic HP trace.
pub fn hp() -> HpTrace {
    HpTrace::generate(
        &HpConfig {
            apps: 8,
            days: 1.0,
            disk_blocks: 600_000,
            ..HpConfig::default()
        },
        &mut StdRng::seed_from_u64(42),
    )
}

/// Deterministic Web trace.
pub fn web(scale: Scale) -> WebTrace {
    WebTrace::generate(&scale.web(), &mut StdRng::seed_from_u64(42))
}

/// The failure model used by the availability benches.
///
/// The *calibrated* PlanetLab-like defaults (P(3-replica group ever down)
/// ≈ 0.02 over a week, DESIGN.md §3) produce almost no task failures at
/// quick scale — statistically faithful but an uninformative figure. The
/// benches therefore use a proportionally harsher model (shorter MTTF,
/// more correlated events) so Figure 7/8's *separation between systems*
/// is visible in a 2-day, 32-node run; the ordering of systems is what
/// the paper's claim is about.
pub fn failure_model(days: f64) -> d2_sim::FailureModel {
    d2_sim::FailureModel {
        mttf_secs: 2.0 * 86_400.0,
        mttr_secs: 3.0 * 3_600.0,
        correlated_events: 3.0 * days.max(1.0),
        correlated_fraction: 0.25,
        correlated_mttr_secs: 2.0 * 3_600.0,
        duration_secs: days * 86_400.0,
    }
}

/// The availability testbed used by the Figure 7/8 and redundancy-
/// ablation benches: a slightly larger trace and cluster than the default
/// quick scale, plus the stress failure model, so the per-system
/// separation is statistically visible.
pub fn availability_fixture() -> (HarvardTrace, d2_core::ClusterConfig, d2_sim::FailureModel) {
    let hcfg = d2_workload::HarvardConfig {
        users: 12,
        days: 2.0,
        initial_bytes: 64 << 20,
        reads_per_user_hour: 60.0,
        ..d2_workload::HarvardConfig::default()
    };
    let trace = HarvardTrace::generate(&hcfg, &mut StdRng::seed_from_u64(42));
    let cfg = d2_core::ClusterConfig {
        nodes: 32,
        replicas: 3,
        seed: 7,
        ..d2_core::ClusterConfig::default()
    };
    let model = failure_model(hcfg.days);
    (trace, cfg, model)
}

/// Warm-up used by the availability benches (paper: 3 simulated days; one
/// is enough at this scale for positions and pointers to settle).
pub const AVAIL_WARMUP_DAYS: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            harvard(Scale::Quick).accesses.len(),
            harvard(Scale::Quick).accesses.len()
        );
        assert!(!hp().accesses.is_empty());
        assert!(!web(Scale::Quick).accesses.is_empty());
    }
}
