//! The availability simulator (paper Section 8).
//!
//! Replays a Harvard-like workload against a failure trace and scores
//! **task** availability: a task fails if any block it reads is
//! unavailable at the moment of the access (no live replica holds real,
//! arrived data and no live pointer leads to one). The simulator models
//! exactly what the paper's does — replica regeneration and migration
//! metered at 750 kbps per node, load balancing every 10 minutes, pointer
//! stabilization of 1 hour — while ignoring DHT routing transients
//! (Section 8.1 argues replica availability dominates).
//!
//! Timeline: the cluster is initialized with the trace-start file system
//! and balanced for a warm-up period (the paper uses 3 simulated days)
//! before the failure trace and workload begin.

use crate::cluster::SimCluster;
use crate::config::ClusterConfig;
use d2_ring::NodeIdx;
use d2_sim::{FailureTrace, SimTime};
use d2_types::{Key, SystemKind};
use d2_workload::{FileOp, HarvardTrace, Task};
use std::collections::{HashMap, HashSet};

/// Result of one availability run.
#[derive(Clone, Debug, Default)]
pub struct AvailabilityReport {
    /// Tasks evaluated.
    pub total_tasks: u64,
    /// Tasks with at least one unavailable block.
    pub failed_tasks: u64,
    /// Per-user `(total, failed)` task counts (Figure 8).
    pub per_user: HashMap<u32, (u64, u64)>,
    /// Blocks whose reads failed.
    pub failed_block_reads: u64,
    /// Total block reads attempted.
    pub total_block_reads: u64,
}

impl AvailabilityReport {
    /// Fraction of tasks that failed (Figure 7's y-axis).
    pub fn task_unavailability(&self) -> f64 {
        if self.total_tasks == 0 {
            0.0
        } else {
            self.failed_tasks as f64 / self.total_tasks as f64
        }
    }

    /// Per-user unavailability, ranked worst-first (Figure 8).
    pub fn ranked_user_unavailability(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .per_user
            .iter()
            .map(|(&u, &(total, failed))| (u, failed as f64 / total.max(1) as f64))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of users who experienced any failure.
    pub fn affected_users(&self) -> usize {
        self.per_user.values().filter(|(_, f)| *f > 0).count()
    }
}

/// Static per-task statistics for Table 2.
#[derive(Clone, Debug, Default)]
pub struct TaskProfile {
    /// Mean blocks accessed per task.
    pub mean_blocks: f64,
    /// Mean distinct files accessed per task.
    pub mean_files: f64,
    /// Mean distinct nodes accessed per task (primary replica of each
    /// block).
    pub mean_nodes: f64,
}

/// The availability simulation driver.
#[derive(Clone, Debug)]
pub struct AvailabilitySim {
    /// The cluster under test.
    pub cluster: SimCluster,
    /// When the warm-up ended (failure/workload time 0 maps here).
    pub epoch: SimTime,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Node failure/recovery (applied before reads at the same instant).
    Transition(usize, bool),
    /// Workload access (index into the trace).
    Access(usize),
    /// Balance round + pointer resolution.
    Maintain,
}

impl AvailabilitySim {
    /// Builds a cluster for `system`, inserts the trace's initial file
    /// system, and (for systems with active balancing) runs `warmup_days`
    /// of balance rounds so node positions stabilize (Section 8.1).
    pub fn build(
        system: SystemKind,
        cfg: &ClusterConfig,
        trace: &HarvardTrace,
        warmup_days: f64,
    ) -> AvailabilitySim {
        let mut cluster = SimCluster::new(system, cfg);
        // Initial data: all files alive at time 0.
        let mut blocks = Vec::new();
        for id in trace.namespace.live_at(SimTime::ZERO) {
            let f = trace.namespace.file(id);
            if f.created_at > SimTime::ZERO {
                continue;
            }
            for b in 0..=f.data_blocks() {
                let name = trace.namespace.block_name(id, b);
                let len = if b == 0 { 256 } else { block_len(f.size, b) };
                blocks.push((system.key_of(&name), len));
            }
        }
        cluster.preload(blocks);

        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs_f64(warmup_days * 86_400.0);
        while now < end {
            now += cfg.probe_interval;
            cluster.run_balance_round(now, false);
            cluster.resolve_stale_pointers(now);
        }
        cluster.now = now;
        AvailabilitySim {
            cluster,
            epoch: now,
        }
    }

    /// Replays the workload and failure trace, scoring task availability.
    ///
    /// `tasks` must have been derived from `trace.accesses` (indices line
    /// up).
    pub fn run(
        &mut self,
        trace: &HarvardTrace,
        tasks: &[Task],
        failures: &FailureTrace,
    ) -> AvailabilityReport {
        let epoch = self.epoch;
        let system = self.cluster.system;
        // Task membership of each access.
        let mut task_of_access: HashMap<usize, usize> = HashMap::new();
        for (t, task) in tasks.iter().enumerate() {
            for &i in &task.indices {
                task_of_access.insert(i, t);
            }
        }
        let mut task_failed = vec![false; tasks.len()];

        // Merge events.
        let mut events: Vec<(SimTime, Ev)> = Vec::new();
        for (t, node, up) in failures.transitions() {
            events.push((epoch + t, Ev::Transition(node, up)));
        }
        for (i, a) in trace.accesses.iter().enumerate() {
            events.push((epoch + a.at, Ev::Access(i)));
        }
        let horizon = epoch + failures.duration;
        let mut m = epoch;
        while m < horizon {
            m += self.cluster.cfg.probe_interval;
            events.push((m, Ev::Maintain));
        }
        events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut report = AvailabilityReport::default();
        let n = self.cluster.len();
        // Remember each node's ID so recoveries rejoin in place.
        let mut last_id: Vec<Option<Key>> = (0..n)
            .map(|i| self.cluster.ring.id_of(NodeIdx(i)))
            .collect();

        for (at, ev) in events {
            self.cluster.now = at;
            match ev {
                Ev::Transition(node, up) => {
                    let node = NodeIdx(node % n);
                    if up {
                        if let Some(id) = last_id[node.0] {
                            self.cluster.node_up_at(node, id, at);
                        }
                    } else {
                        if let Some(id) = self.cluster.ring.id_of(node) {
                            last_id[node.0] = Some(id);
                        }
                        self.cluster.node_down(node, at);
                    }
                }
                Ev::Maintain => {
                    // Deferred crash repairs fire once their detection
                    // timeout expires (no-op with the default oracle
                    // detector, where node_down repaired synchronously).
                    self.cluster.process_observed_failures(at);
                    // Lazy erasure repair drains its budgeted queue here
                    // (no-op under replication, which repairs eagerly).
                    self.cluster.run_repair_round(at);
                    self.cluster.run_balance_round(at, false);
                    self.cluster.resolve_stale_pointers(at);
                    // Periodic repair: in-flight copies that have since
                    // arrived can now restore under-replicated groups, and
                    // broken pointers re-point (O(pending), not O(blocks)).
                    self.cluster.resync_pending(at);
                }
                Ev::Access(i) => {
                    let a = &trace.accesses[i];
                    match a.op {
                        FileOp::Create | FileOp::Write => {
                            let f = trace.namespace.file(a.file);
                            for b in 0..=f.data_blocks() {
                                let name = trace.namespace.block_name(a.file, b);
                                let len = if b == 0 { 256 } else { block_len(f.size, b) };
                                self.cluster.put_block(system.key_of(&name), len, at);
                            }
                        }
                        FileOp::Delete => {
                            let f = trace.namespace.file(a.file);
                            for b in 0..=f.data_blocks() {
                                let name = trace.namespace.block_name(a.file, b);
                                self.cluster.remove_block(&system.key_of(&name), at);
                            }
                        }
                        FileOp::Read => {
                            let mut ok = true;
                            for name in trace.namespace.blocks_of_access(a) {
                                report.total_block_reads += 1;
                                if !self.cluster.is_available(&system.key_of(&name), at) {
                                    report.failed_block_reads += 1;
                                    ok = false;
                                }
                            }
                            if !ok {
                                if let Some(&t) = task_of_access.get(&i) {
                                    task_failed[t] = true;
                                }
                            }
                        }
                    }
                }
            }
        }

        for (t, task) in tasks.iter().enumerate() {
            report.total_tasks += 1;
            let entry = report.per_user.entry(task.user).or_insert((0, 0));
            entry.0 += 1;
            if task_failed[t] {
                report.failed_tasks += 1;
                entry.1 += 1;
            }
        }
        report
    }

    /// Computes Table 2's static profile: mean blocks, files, and nodes
    /// per task given the *current* (warmed-up) placement.
    pub fn task_profile(&self, trace: &HarvardTrace, tasks: &[Task]) -> TaskProfile {
        let system = self.cluster.system;
        let mut sum_blocks = 0u64;
        let mut sum_files = 0u64;
        let mut sum_nodes = 0u64;
        let mut counted = 0u64;
        for task in tasks {
            let mut files = HashSet::new();
            let mut nodes = HashSet::new();
            let mut blocks = 0u64;
            for &i in &task.indices {
                let a = &trace.accesses[i];
                if a.op != FileOp::Read {
                    continue;
                }
                files.insert(a.file);
                for name in trace.namespace.blocks_of_access(a) {
                    blocks += 1;
                    let key = system.key_of(&name);
                    if let Some(owner) = self.cluster.ring.owner_of(&key) {
                        nodes.insert(owner);
                    }
                }
            }
            if blocks == 0 {
                continue;
            }
            counted += 1;
            sum_blocks += blocks;
            sum_files += files.len() as u64;
            sum_nodes += nodes.len() as u64;
        }
        let n = counted.max(1) as f64;
        TaskProfile {
            mean_blocks: sum_blocks as f64 / n,
            mean_files: sum_files as f64 / n,
            mean_nodes: sum_nodes as f64 / n,
        }
    }
}

/// Length of data block `b` (1-based) of a file of `size` bytes.
fn block_len(size: u64, b: u64) -> u32 {
    let bs = d2_types::BLOCK_SIZE as u64;
    let full = size / bs;
    if b <= full {
        bs as u32
    } else {
        (size % bs).max(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2_sim::FailureModel;
    use d2_workload::{split_tasks, HarvardConfig};
    use rand::SeedableRng;

    fn tiny_trace() -> HarvardTrace {
        let cfg = HarvardConfig {
            users: 6,
            days: 1.0,
            initial_bytes: 24 << 20,
            reads_per_user_hour: 40.0,
            ..HarvardConfig::default()
        };
        HarvardTrace::generate(&cfg, &mut rand::rngs::StdRng::seed_from_u64(11))
    }

    fn tiny_cluster_cfg() -> ClusterConfig {
        ClusterConfig {
            nodes: 24,
            replicas: 3,
            seed: 5,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn no_failures_no_unavailability() {
        let trace = tiny_trace();
        let tasks = split_tasks(
            &trace.accesses,
            SimTime::from_secs(5),
            SimTime::from_secs(300),
        );
        let mut sim = AvailabilitySim::build(SystemKind::D2, &tiny_cluster_cfg(), &trace, 0.25);
        let failures = FailureTrace::none(24, SimTime::from_secs(86_400));
        let report = sim.run(&trace, &tasks, &failures);
        assert!(report.total_tasks > 0);
        assert_eq!(report.failed_tasks, 0, "no failures => no task failures");
        assert_eq!(report.task_unavailability(), 0.0);
    }

    #[test]
    fn d2_beats_traditional_under_failures() {
        let trace = tiny_trace();
        let tasks = split_tasks(
            &trace.accesses,
            SimTime::from_secs(5),
            SimTime::from_secs(300),
        );
        let model = FailureModel {
            // Brutal failure model so the tiny test shows separation.
            mttf_secs: 0.5 * 86_400.0,
            mttr_secs: 3.0 * 3_600.0,
            correlated_events: 3.0,
            correlated_fraction: 0.25,
            correlated_mttr_secs: 2.0 * 3_600.0,
            duration_secs: 86_400.0,
        };
        let failures =
            FailureTrace::generate(24, &model, &mut rand::rngs::StdRng::seed_from_u64(2));

        let mut d2 = AvailabilitySim::build(SystemKind::D2, &tiny_cluster_cfg(), &trace, 0.25);
        let rep_d2 = d2.run(&trace, &tasks, &failures);
        let mut trad =
            AvailabilitySim::build(SystemKind::Traditional, &tiny_cluster_cfg(), &trace, 0.25);
        let rep_trad = trad.run(&trace, &tasks, &failures);

        assert!(
            rep_d2.task_unavailability() <= rep_trad.task_unavailability(),
            "d2 {} should not exceed traditional {}",
            rep_d2.task_unavailability(),
            rep_trad.task_unavailability()
        );
    }

    #[test]
    fn task_profile_shows_locality_gap() {
        let trace = tiny_trace();
        let tasks = split_tasks(
            &trace.accesses,
            SimTime::from_secs(15),
            SimTime::from_secs(300),
        );
        let d2 = AvailabilitySim::build(SystemKind::D2, &tiny_cluster_cfg(), &trace, 0.25);
        let trad =
            AvailabilitySim::build(SystemKind::Traditional, &tiny_cluster_cfg(), &trace, 0.0);
        let p_d2 = d2.task_profile(&trace, &tasks);
        let p_trad = trad.task_profile(&trace, &tasks);
        assert!(p_d2.mean_blocks > 0.0);
        // Same workload => same block/file counts.
        assert!((p_d2.mean_blocks - p_trad.mean_blocks).abs() < 1e-9);
        assert!((p_d2.mean_files - p_trad.mean_files).abs() < 1e-9);
        // D2 contacts strictly fewer nodes (Table 2's key claim).
        assert!(
            p_d2.mean_nodes < p_trad.mean_nodes,
            "d2 {} vs traditional {}",
            p_d2.mean_nodes,
            p_trad.mean_nodes
        );
    }

    #[test]
    fn per_user_accounting_sums_to_totals() {
        let trace = tiny_trace();
        let tasks = split_tasks(
            &trace.accesses,
            SimTime::from_secs(5),
            SimTime::from_secs(300),
        );
        let mut sim = AvailabilitySim::build(SystemKind::D2, &tiny_cluster_cfg(), &trace, 0.1);
        let failures = FailureTrace::generate(
            24,
            &FailureModel {
                duration_secs: 86_400.0,
                ..FailureModel::default()
            },
            &mut rand::rngs::StdRng::seed_from_u64(3),
        );
        let report = sim.run(&trace, &tasks, &failures);
        let total: u64 = report.per_user.values().map(|(t, _)| t).sum();
        let failed: u64 = report.per_user.values().map(|(_, f)| f).sum();
        assert_eq!(total, report.total_tasks);
        assert_eq!(failed, report.failed_tasks);
        let ranked = report.ranked_user_unavailability();
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn block_len_math() {
        assert_eq!(block_len(8192, 1), 8192);
        assert_eq!(block_len(10_000, 1), 8192);
        assert_eq!(block_len(10_000, 2), 10_000 - 8192);
        assert_eq!(block_len(100, 1), 100);
    }
}
