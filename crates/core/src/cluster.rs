//! A whole simulated DHT system under one roof.
//!
//! [`SimCluster`] combines the ring, one [`NodeStore`] per node, the
//! router, and explicit replica maintenance into the object the paper's
//! simulators manipulate. It enforces the placement invariant — every
//! block lives on the `r` live successors of its key — across writes,
//! removals, node failures/recoveries, and load-balance moves, charging
//! migration bytes (against the 750 kbps per-node budget of Section 8.1)
//! whenever repairing the invariant requires copying data, and using
//! **block pointers** (Section 6) to defer copies caused by load
//! balancing.
//!
//! The same object doubles as a [`BlockIo`] backend, so a full `d2-fs`
//! volume can run on top of a simulated cluster (see the facade crate's
//! quickstart).

use crate::config::ClusterConfig;
use d2_fs::{BlockIo, Fs, FsConfig, VolumeReader};
use d2_obs::{MigrationKind, SharedSink, TraceEvent};
use d2_ring::balance::{self, BalanceOp, LoadView};
use d2_ring::{NodeIdx, Ring};
use d2_sim::net::LinkState;
use d2_sim::{normalized_std_dev, SimTime};
use d2_store::{NodeStore, Payload};
use d2_types::{BlockName, D2Error, InlineVec, Key, Result, SystemKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Traffic and event counters for a cluster's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Bytes written by users (each block counted once per write, not per
    /// replica — matching the paper's per-node write-traffic accounting).
    pub write_bytes: u64,
    /// Bytes migrated to maintain load balance and replication.
    pub migration_bytes: u64,
    /// Bytes of blocks scheduled for removal.
    pub removed_bytes: u64,
    /// Load-balance ID changes performed.
    pub balance_moves: u64,
    /// Block pointers installed instead of immediate copies.
    pub pointers_installed: u64,
    /// Pointers later resolved into real copies.
    pub pointers_resolved: u64,
    /// Blocks regenerated after failures.
    pub regenerated_blocks: u64,
    /// Writes diverted away from full nodes via pointers (Section 6).
    pub diverted_writes: u64,
    /// Crash repairs deferred behind the failure-detection delay.
    pub deferred_repairs: u64,
    /// Deferred repairs whose detection timeout has since fired.
    pub observed_failures: u64,
    /// Bytes spent regenerating erasure fragments from the lazy repair
    /// queue (a subset of `migration_bytes`).
    pub repair_bytes: u64,
    /// Repair bytes deferred because a node's repair budget was empty
    /// (the same key may be counted again on a later throttled round).
    pub repair_throttled_bytes: u64,
    /// Repairs skipped because enough fragments survived (lazy repair's
    /// whole point: a loss above the threshold `m` costs nothing).
    pub repairs_skipped_lazy: u64,
}

/// Why a replica-group repair is running — decides whether the balance
/// mover may defer its copies with pointers, and how transfers are
/// accounted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SyncCtx {
    /// Repair after a load-balance move; `mover` may use pointers.
    Balance {
        /// The node whose ID changed.
        mover: NodeIdx,
    },
    /// Ordinary replica maintenance (failures, recoveries, periodic).
    Repair,
}

/// A simulated cluster running one of the three systems.
#[derive(Clone, Debug)]
pub struct SimCluster {
    /// Which system this cluster runs.
    pub system: SystemKind,
    /// Configuration in effect.
    pub cfg: ClusterConfig,
    /// Ring membership (only *live* nodes are in the ring).
    pub ring: Ring,
    /// Per-node block stores (indexed by `NodeIdx.0`; contents persist
    /// across downtime, as disks do).
    pub stores: Vec<NodeStore>,
    /// Whether each node is currently up.
    pub node_up: Vec<bool>,
    /// Per-node migration/regeneration links (750 kbps by default).
    migration_links: Vec<LinkState>,
    /// Which nodes hold an entry (data or pointer) for each key.
    index: HashMap<Key, Vec<u32>>,
    /// Block sizes (logical, independent of holders).
    sizes: HashMap<Key, u32>,
    /// Lifetime counters.
    pub stats: ClusterStats,
    /// Deterministic randomness for probes and placement.
    pub rng: StdRng,
    /// Current virtual time (advanced by drivers).
    pub now: SimTime,
    /// Hashed twin key per block under hybrid placement (Section 11).
    twins: HashMap<Key, Key>,
    /// The set of twin keys (so repairs use the safeguard group size).
    twin_set: HashSet<Key>,
    /// In-flight migration/regeneration transfers: `(dst, key)` →
    /// `(src, completion)`. A transfer is cancelled (and the destination
    /// copy dropped) if its source dies before completion — without this,
    /// simultaneous whole-group failures would never lose data.
    inflight: HashMap<(usize, Key), (usize, SimTime)>,
    /// Crash repairs waiting out the failure-detection delay: `(when the
    /// survivors notice, keys the dead node held)`. Empty whenever
    /// `cfg.failure_detection` is zero (synchronous repair).
    pending_repairs: Vec<(SimTime, Vec<Key>)>,
    /// Lazy erasure-repair queue: keys whose surviving fragment count
    /// dropped below the repair threshold `m`, waiting for budget.
    /// Ordered (BTreeSet) so draining is deterministic. Always empty
    /// under replication, which repairs eagerly.
    repair_queue: std::collections::BTreeSet<Key>,
    /// Per-node repair token buckets (bytes), refilled at
    /// `cfg.repair_budget_bps` by [`SimCluster::run_repair_round`].
    repair_tokens: Vec<u64>,
    /// When the repair buckets were last refilled.
    last_repair_refill: SimTime,
    volumes: HashMap<String, Fs>,
    /// Trace sink for migration/repair/balance events (null by default).
    obs: SharedSink,
}

impl SimCluster {
    /// Builds a cluster of `cfg.nodes` nodes at uniformly random ring
    /// positions (consistent hashing — D2's balancer moves them later).
    pub fn new(system: SystemKind, cfg: &ClusterConfig) -> SimCluster {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ring = Ring::new();
        for _ in 0..cfg.nodes {
            let idx = ring.add_offline_node();
            loop {
                let id = Key::random(&mut rng);
                if ring.add_node_at(idx, id) {
                    break;
                }
            }
        }
        SimCluster {
            system,
            cfg: *cfg,
            stores: vec![NodeStore::new(); ring.capacity()],
            node_up: vec![true; ring.capacity()],
            migration_links: vec![LinkState::new_kbps(cfg.migration_kbps); ring.capacity()],
            index: HashMap::new(),
            sizes: HashMap::new(),
            stats: ClusterStats::default(),
            rng,
            now: SimTime::ZERO,
            twins: HashMap::new(),
            twin_set: HashSet::new(),
            inflight: HashMap::new(),
            pending_repairs: Vec::new(),
            repair_queue: std::collections::BTreeSet::new(),
            repair_tokens: vec![0; ring.capacity()],
            last_repair_refill: SimTime::ZERO,
            ring,
            volumes: HashMap::new(),
            obs: SharedSink::null(),
        }
    }

    /// Attaches a trace sink: balance moves, migration transfers, and
    /// pointer resolutions are recorded into it from now on. Pass a clone
    /// of a [`SharedSink`] to share one buffer with other components.
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.obs = sink;
    }

    /// The cluster's trace sink (null unless attached).
    pub fn trace_sink(&self) -> &SharedSink {
        &self.obs
    }

    /// Number of nodes (live or not).
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Number of distinct blocks tracked.
    pub fn block_count(&self) -> usize {
        self.sizes.len()
    }

    // ---- low-level bookkeeping (keeps index and stores in sync) ----------

    fn store_put(&mut self, node: NodeIdx, key: Key, payload: Payload, at: SimTime) {
        let holders = self.index.entry(key).or_default();
        if !holders.contains(&(node.0 as u32)) {
            holders.push(node.0 as u32);
        }
        self.stores[node.0].put(key, payload, at);
    }

    fn store_remove(&mut self, node: NodeIdx, key: &Key) {
        if let Some(holders) = self.index.get_mut(key) {
            holders.retain(|&h| h != node.0 as u32);
            if holders.is_empty() {
                self.index.remove(key);
            }
        }
        self.stores[node.0].remove_now(key);
    }

    /// The nodes holding an entry (data or pointer) for `key`. Called
    /// once per block access in the simulators' innermost loops, so the
    /// list is returned inline (replica groups are ≤ 8 nodes in every
    /// configuration; larger holder sets spill to the heap safely).
    pub fn holders_of(&self, key: &Key) -> InlineVec<NodeIdx, 8> {
        self.index
            .get(key)
            .map(|v| v.iter().map(|&h| NodeIdx(h as usize)).collect())
            .unwrap_or_default()
    }

    /// A live node holding *real data* for `key`, arrived by `now`.
    fn live_data_holder(&self, key: &Key, now: SimTime) -> Option<NodeIdx> {
        self.holders_of(key).into_iter().find(|&n| {
            self.node_up[n.0]
                && self.stores[n.0]
                    .get(key)
                    .map(|b| !b.payload.is_pointer() && b.stored_at <= now)
                    .unwrap_or(false)
        })
    }

    // ---- redundancy helpers -------------------------------------------------

    /// Bytes each group member stores for a block of `len` bytes: the full
    /// block under replication, `len/k` under k-of-n erasure coding.
    fn stored_len(&self, len: u32) -> u32 {
        let policy = self.cfg.redundancy_policy();
        if policy.is_erasure() {
            (policy.stored_len(len as u64) as u32).max(1)
        } else {
            len
        }
    }

    /// Reachable copies required to read a block (1 replica, or k erasure
    /// fragments).
    fn min_live(&self) -> usize {
        self.cfg.redundancy_policy().min_fragments()
    }

    /// Consecutive successors a block occupies: `r` copies, or `n`
    /// erasure fragments.
    fn group_size(&self) -> usize {
        self.cfg.redundancy_policy().group_size()
    }

    /// The payload group member `position` stores for a `frag`-byte
    /// share: a fragment (carrying its code-word index) under erasure
    /// coding, a plain size placeholder under replication.
    fn member_payload(&self, position: usize, frag: u32) -> Payload {
        if self.cfg.redundancy_policy().is_erasure() {
            Payload::Fragment {
                index: position as u8,
                generation: 0,
                len: frag,
            }
        } else {
            Payload::Size(frag)
        }
    }

    /// The hashed twin key for hybrid replica placement.
    fn twin_key(key: &Key) -> Key {
        let h1 = d2_types::sha256(key.as_bytes());
        let mut buf = [0u8; 33];
        buf[..32].copy_from_slice(h1.as_bytes());
        buf[32] = 0x77;
        let h2 = d2_types::sha256(&buf);
        let mut b = [0u8; 64];
        b[..32].copy_from_slice(h1.as_bytes());
        b[32..].copy_from_slice(h2.as_bytes());
        Key::from_bytes(b)
    }

    // ---- block operations --------------------------------------------------

    /// Writes a block of `len` bytes: stored on the `r` live successors of
    /// `key` (fragments under erasure coding), plus hashed-twin safeguard
    /// replicas when hybrid placement is on. Counts `len` toward user
    /// write traffic once.
    pub fn put_block(&mut self, key: Key, len: u32, now: SimTime) {
        self.stats.write_bytes += len as u64;
        self.sizes.insert(key, len);
        let frag = self.stored_len(len);
        // Drop any stale copies from previous versions at other nodes.
        for old in self.holders_of(&key) {
            self.store_remove(old, &key);
        }
        let group = self.ring.replica_group(&key, self.group_size());
        for (pos, node) in group.into_iter().enumerate() {
            let payload = self.member_payload(pos, frag);
            self.put_or_divert(node, key, payload, now);
        }
        if self.cfg.hybrid_hash_replicas > 0 {
            let twin = Self::twin_key(&key);
            self.twins.insert(key, twin);
            self.twin_set.insert(twin);
            self.sizes.insert(twin, len);
            for old in self.holders_of(&twin) {
                self.store_remove(old, &twin);
            }
            for node in self
                .ring
                .replica_group(&twin, self.cfg.hybrid_hash_replicas)
            {
                self.store_put(node, twin, Payload::Size(frag), now);
            }
        }
    }

    /// Writes a block with real contents (FS-backed clusters).
    pub fn put_block_data(&mut self, key: Key, data: Vec<u8>, now: SimTime) {
        let len = data.len() as u32;
        self.stats.write_bytes += len as u64;
        self.sizes.insert(key, len);
        for old in self.holders_of(&key) {
            self.store_remove(old, &key);
        }
        for node in self.ring.replica_group(&key, self.group_size()) {
            self.store_put(node, key, Payload::Data(data.clone()), now);
        }
    }

    /// Stores a replica at `node`, or — if that would overflow its
    /// capacity — diverts the bytes to the nearest successor with space,
    /// leaving a pointer on the full node (Section 6 / PAST). The full
    /// node sheds load at its next balance move, so the indirection is
    /// temporary.
    fn put_or_divert(&mut self, node: NodeIdx, key: Key, payload: Payload, now: SimTime) {
        let frag = payload.len();
        let Some(cap) = self.cfg.node_capacity_bytes else {
            self.store_put(node, key, payload, now);
            return;
        };
        let fits = |s: &Self, n: NodeIdx| s.stores[n.0].data_bytes() + frag as u64 <= cap;
        if fits(self, node) {
            self.store_put(node, key, payload, now);
            return;
        }
        // Walk successors for a node with space (skipping existing
        // holders); give up after one lap and store over-capacity (better
        // full than lost).
        let mut candidate = self.ring.successor(node);
        for _ in 0..self.ring.len() {
            let Some(c) = candidate else { break };
            if c == node {
                break;
            }
            if !self.stores[c.0].contains(&key) && fits(self, c) {
                self.store_put(c, key, payload, now);
                self.store_put(
                    node,
                    key,
                    Payload::Pointer {
                        holder: c.0,
                        since: now,
                        len: frag,
                    },
                    now,
                );
                self.stats.diverted_writes += 1;
                return;
            }
            candidate = self.ring.successor(c);
        }
        self.store_put(node, key, payload, now);
    }

    /// Removes a block (and its hybrid twin) from every holder after the
    /// removal delay. (The simulation applies it immediately to the index
    /// but respects the delay inside each store for stale readers.)
    pub fn remove_block(&mut self, key: &Key, now: SimTime) {
        if let Some(len) = self.sizes.remove(key) {
            self.stats.removed_bytes += len as u64;
        }
        for node in self.holders_of(key) {
            self.stores[node.0].remove_after(key, now, self.cfg.remove_delay);
        }
        // After the delay the blocks are gone; drop them from the index now
        // (availability checks for removed blocks are not meaningful).
        for node in self.holders_of(key) {
            self.store_remove(node, key);
        }
        if let Some(twin) = self.twins.remove(key) {
            self.twin_set.remove(&twin);
            self.sizes.remove(&twin);
            for node in self.holders_of(&twin) {
                self.store_remove(node, &twin);
            }
        }
    }

    /// Reachable copies of `key` at `now`: live nodes with arrived
    /// non-pointer data, plus live pointers leading to such data.
    fn reachable_copies(&self, key: &Key, now: SimTime) -> usize {
        self.holders_of(key)
            .into_iter()
            .filter(|&n| {
                if !self.node_up[n.0] {
                    return false;
                }
                match self.stores[n.0].get(key).map(|b| (&b.payload, b.stored_at)) {
                    Some((Payload::Pointer { holder, .. }, _)) => {
                        let h = NodeIdx(*holder);
                        self.node_up[h.0]
                            && self.stores[h.0]
                                .get(key)
                                .map(|b| !b.payload.is_pointer() && b.stored_at <= now)
                                .unwrap_or(false)
                    }
                    Some((_, at)) => at <= now,
                    None => false,
                }
            })
            .count()
    }

    /// Whether `key` can be read at `now`: at least one replica (or `k`
    /// erasure fragments) reachable, or — under hybrid placement — its
    /// hashed twin is.
    pub fn is_available(&self, key: &Key, now: SimTime) -> bool {
        if self.reachable_copies(key, now) >= self.min_live() {
            return true;
        }
        match self.twins.get(key) {
            Some(twin) => self.reachable_copies(twin, now) >= self.min_live(),
            None => false,
        }
    }

    /// Bulk-loads an initial data set without counting user write traffic
    /// (the paper initializes each simulation by inserting the trace-start
    /// file system, then lets positions stabilize).
    pub fn preload<I: IntoIterator<Item = (Key, u32)>>(&mut self, blocks: I) {
        for (key, len) in blocks {
            self.sizes.insert(key, len);
            let frag = self.stored_len(len);
            let group = self.ring.replica_group(&key, self.group_size());
            for (pos, node) in group.into_iter().enumerate() {
                let payload = self.member_payload(pos, frag);
                self.store_put(node, key, payload, SimTime::ZERO);
            }
            if self.cfg.hybrid_hash_replicas > 0 {
                let twin = Self::twin_key(&key);
                self.twins.insert(key, twin);
                self.twin_set.insert(twin);
                self.sizes.insert(twin, len);
                for node in self
                    .ring
                    .replica_group(&twin, self.cfg.hybrid_hash_replicas)
                {
                    self.store_put(node, twin, Payload::Size(frag), SimTime::ZERO);
                }
            }
        }
    }

    // ---- load, balance ------------------------------------------------------

    /// Primary load (blocks in own range) of each *live* node.
    pub fn primary_loads(&self) -> Vec<u64> {
        self.ring
            .nodes()
            .into_iter()
            .map(|n| {
                self.ring
                    .range_of(n)
                    .map(|r| self.stores[n.0].count_in(&r))
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Total storage load (all blocks held, bytes) of each live node.
    pub fn total_load_bytes(&self) -> Vec<u64> {
        self.ring
            .nodes()
            .into_iter()
            .map(|n| self.stores[n.0].bytes())
            .collect()
    }

    /// Total storage load in blocks of each live node.
    pub fn total_load_blocks(&self) -> Vec<u64> {
        self.ring
            .nodes()
            .into_iter()
            .map(|n| self.stores[n.0].len() as u64)
            .collect()
    }

    /// Normalized standard deviation of total per-node byte load
    /// (Figures 16–17's metric).
    pub fn imbalance(&self) -> f64 {
        normalized_std_dev(&self.total_load_bytes())
    }

    /// One load-balancing round (every live node probes once). Only has an
    /// effect for systems with active balancing unless `force` is set
    /// (Traditional+Merc runs a traditional DHT *with* the balancer).
    pub fn run_balance_round(&mut self, now: SimTime, force: bool) -> usize {
        if !force && !self.system.balances_actively() {
            return 0;
        }
        use rand::seq::SliceRandom;
        let mut nodes = self.ring.nodes();
        nodes.shuffle(&mut self.rng);
        let mut moves = 0;
        for prober in nodes {
            if !self.ring.contains(prober) {
                continue;
            }
            let Some(target) = self.ring.random_node(&mut self.rng) else {
                continue;
            };
            let view = Loads {
                ring: &self.ring,
                stores: &self.stores,
            };
            let Some(op) = balance::probe(&self.ring, &view, prober, target, &self.cfg.balance)
            else {
                continue;
            };
            if !balance::apply_to_ring(&mut self.ring, &op) {
                continue;
            }
            self.obs.record_with(|| TraceEvent::BalanceMove {
                t_us: now.as_micros(),
                mover: op.mover().0,
                heavy: op.heavy().0,
            });
            self.apply_balance_data(&op, now);
            moves += 1;
        }
        self.stats.balance_moves += moves as u64;
        moves
    }

    /// Applies the data movement implied by a balance op: the mover takes
    /// over `(pred(heavy), new_id]` via pointers (or copies), and the
    /// blocks it abandoned are re-replicated by their new groups.
    fn apply_balance_data(&mut self, op: &BalanceOp, now: SimTime) {
        let mover = op.mover();
        // Keys whose replica groups may have changed: everything the mover
        // held, plus everything held near its new position.
        let mut affected: HashSet<Key> = self.stores[mover.0]
            .keys_in(&d2_types::KeyRange::full())
            .into_iter()
            .collect();
        let heavy = op.heavy();
        for k in self.stores[heavy.0].keys_in(&d2_types::KeyRange::full()) {
            affected.insert(k);
        }
        // Neighborhood of the old position: its old successor now owns the
        // abandoned range; those blocks are already on the successors, but
        // the (r+1)-th node becomes a new group member.
        self.sync_keys(affected, now, SyncCtx::Balance { mover });
    }

    /// The payload to replicate from `source`: real bytes when the source
    /// holds them (FS-backed clusters), a size placeholder otherwise.
    fn copy_payload(&self, source: NodeIdx, key: &Key, len: u32) -> Payload {
        match self.stores[source.0].get(key).map(|b| &b.payload) {
            Some(Payload::Data(d)) => Payload::Data(d.clone()),
            _ => Payload::Size(len),
        }
    }

    /// Whether `node` currently stores real (non-pointer) data for `key`.
    fn has_real_data(&self, node: NodeIdx, key: &Key) -> bool {
        self.stores[node.0]
            .get(key)
            .map(|b| !b.payload.is_pointer())
            .unwrap_or(false)
    }

    /// Recomputes replica groups for `keys` and repairs them: missing
    /// members fetch — except the balance *mover*, which installs pointers
    /// when they are enabled (Section 6: pointers defer only the mover's
    /// copies; ordinary replica maintenance transfers immediately) — then
    /// ex-members release their copies, except ex-members that real
    /// pointers still reference, which keep the data until the pointers
    /// resolve (the paper's "D will ultimately retrieve the actual blocks
    /// from A and delete the pointers").
    fn sync_keys<I: IntoIterator<Item = Key>>(&mut self, keys: I, now: SimTime, ctx: SyncCtx) {
        // Callers collect affected keys in hash sets/maps, whose iteration
        // order varies run to run. Transfers queue on per-node migration
        // links, so the processing order decides each copy's completion
        // time: sort so the whole simulation (and any attached trace) is a
        // pure function of the seed.
        let mut keys: Vec<Key> = keys.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let Some(&len) = self.sizes.get(&key) else {
                continue;
            };
            // Twin (safeguard) blocks use the smaller hybrid group.
            let is_twin = self.twin_set.contains(&key);
            let group_size = if is_twin {
                self.cfg.hybrid_hash_replicas
            } else {
                self.group_size()
            };
            // Per-member bytes: a fragment under erasure coding.
            let frag = self.stored_len(len);
            let group = self.ring.replica_group(&key, group_size);
            let holders = self.holders_of(&key);
            // A source must be live with an *arrived* real copy — an
            // in-flight regeneration transfer cannot seed further copies,
            // which is exactly why simultaneous whole-group failures lose
            // data until a member recovers (prefer sources in the group).
            let live_sources: Vec<NodeIdx> = holders
                .iter()
                .copied()
                .filter(|h| {
                    self.node_up[h.0]
                        && self.stores[h.0]
                            .get(&key)
                            .map(|b| !b.payload.is_pointer() && b.stored_at <= now)
                            .unwrap_or(false)
                })
                .collect();
            let source = live_sources
                .iter()
                .copied()
                .max_by_key(|h| group.contains(h));
            let Some(source) = source else {
                // No reachable copy right now: the block is unavailable
                // until a holder returns (or an in-flight copy arrives and
                // a later resync repairs the group).
                continue;
            };
            // Erasure regeneration decodes from k fragments: with fewer
            // survivors there is nothing to regenerate *from* — leave the
            // remnants alone until a holder returns.
            if !is_twin
                && self.cfg.redundancy_policy().is_erasure()
                && live_sources.len() < self.min_live()
            {
                continue;
            }
            // 0) Repair broken pointers: a live member whose pointer
            // target died (or dropped the block) re-points at a live
            // holder right away — waiting for the stabilization time
            // would leave the block dark for up to an hour.
            for &member in &group {
                if !self.node_up[member.0] {
                    continue;
                }
                if let Some(Payload::Pointer { holder, since, .. }) =
                    self.stores[member.0].get(&key).map(|b| b.payload.clone())
                {
                    let target_ok =
                        self.node_up[holder] && self.has_real_data(NodeIdx(holder), &key);
                    if !target_ok && source.0 != holder {
                        self.store_put(
                            member,
                            key,
                            Payload::Pointer {
                                holder: source.0,
                                since,
                                len: frag,
                            },
                            now,
                        );
                    }
                }
            }
            // 1) Add missing group members.
            for (pos, &member) in group.iter().enumerate() {
                if self.stores[member.0].contains(&key) || !self.node_up[member.0] {
                    continue;
                }
                let is_mover = matches!(ctx, SyncCtx::Balance { mover } if mover == member);
                if is_mover && self.cfg.use_pointers {
                    self.store_put(
                        member,
                        key,
                        Payload::Pointer {
                            holder: source.0,
                            since: now,
                            len: frag,
                        },
                        now,
                    );
                    self.stats.pointers_installed += 1;
                } else {
                    // Balance migration ships the member's copy (a single
                    // fragment under erasure); failure regeneration of an
                    // erasure fragment must *reconstruct* from k fragments,
                    // costing a full block's worth of reads.
                    let balancing = matches!(ctx, SyncCtx::Balance { .. });
                    let wire = if balancing { frag } else { len };
                    let done = self.migration_links[member.0].transmit(now, wire as u64);
                    self.stats.migration_bytes += wire as u64;
                    self.obs.record_with(|| TraceEvent::Migration {
                        t_us: now.as_micros(),
                        kind: if balancing {
                            MigrationKind::Balance
                        } else {
                            MigrationKind::Repair
                        },
                        src: source.0,
                        dst: member.0,
                        key: key.to_u64_lossy(),
                        bytes: wire as u64,
                    });
                    if !balancing {
                        self.stats.regenerated_blocks += 1;
                    }
                    let payload = if !is_twin && self.cfg.redundancy_policy().is_erasure() {
                        // A regenerated fragment takes the member's slot in
                        // the code word, same generation as the survivors.
                        let generation = self.stores[source.0]
                            .get(&key)
                            .map(|b| match b.payload {
                                Payload::Fragment { generation, .. } => generation,
                                _ => 0,
                            })
                            .unwrap_or(0);
                        Payload::Fragment {
                            index: pos as u8,
                            generation,
                            len: frag,
                        }
                    } else {
                        self.copy_payload(source, &key, frag)
                    };
                    self.store_put(member, key, payload, done);
                    if done > now {
                        self.inflight.insert((member.0, key), (source.0, done));
                    }
                }
            }
            // 2a) Ex-members holding mere pointers release immediately.
            for &h in &holders {
                if !group.contains(&h) && !self.has_real_data(h, &key) {
                    self.store_remove(h, &key);
                }
            }
            // 2b) Ex-members with data release unless a surviving pointer
            // still targets them.
            let referenced: Vec<usize> = self
                .holders_of(&key)
                .into_iter()
                .filter_map(|h| match self.stores[h.0].get(&key).map(|b| &b.payload) {
                    Some(Payload::Pointer { holder, .. }) => Some(*holder),
                    _ => None,
                })
                .collect();
            for h in holders {
                if !group.contains(&h)
                    && self.stores[h.0].contains(&key)
                    && !referenced.contains(&h.0)
                {
                    self.store_remove(h, &key);
                }
            }
        }
    }

    /// Re-checks the replication invariant for every tracked block —
    /// the periodic repair pass DHT storage layers run. Used by the
    /// availability simulator's maintenance tick so that transfers which
    /// were in flight (and thus unusable as sources) get propagated once
    /// they arrive.
    pub fn resync_all(&mut self, now: SimTime) {
        let keys: Vec<Key> = self.sizes.keys().copied().collect();
        self.sync_keys(keys, now, SyncCtx::Repair);
    }

    /// The cheap periodic repair pass: re-checks only the keys that can
    /// actually need work — those with (recently) in-flight transfers and
    /// those held via pointers — in O(pending + pointers) rather than
    /// O(all blocks). [`SimCluster::resync_all`] remains for full audits.
    pub fn resync_pending(&mut self, now: SimTime) {
        let mut keys: HashSet<Key> = self.inflight.keys().map(|&(_, k)| k).collect();
        // Drop records of transfers that have completed.
        self.inflight.retain(|_, &mut (_, done)| done > now);
        for node in 0..self.stores.len() {
            if self.node_up[node] {
                keys.extend(self.stores[node].pointer_keys());
            }
        }
        self.sync_keys(keys, now, SyncCtx::Repair);
    }

    /// Resolves pointers older than the pointer stabilization time: the
    /// pointing node fetches the real block (bandwidth-metered) and drops
    /// the pointer. This is when deferred migration traffic is actually
    /// paid (Section 6).
    pub fn resolve_stale_pointers(&mut self, now: SimTime) -> usize {
        let cutoff = now.saturating_sub(self.cfg.pointer_stabilization);
        let mut resolved = 0;
        for node in 0..self.stores.len() {
            if !self.node_up[node] {
                continue;
            }
            for (key, holder, len) in self.stores[node].stale_pointers(cutoff) {
                // The holder must still have real data (it may itself be a
                // pointer if chains formed; follow one level per round).
                let src = NodeIdx(holder);
                let has_data = self.stores[src.0]
                    .get(&key)
                    .map(|b| !b.payload.is_pointer())
                    .unwrap_or(false);
                if !self.node_up[src.0] || !has_data {
                    // Retarget to any live data holder.
                    if let Some(alt) = self.live_data_holder(&key, now) {
                        let since = cutoff; // keep it due
                        self.store_put(
                            NodeIdx(node),
                            key,
                            Payload::Pointer {
                                holder: alt.0,
                                since,
                                len,
                            },
                            now,
                        );
                    }
                    continue;
                }
                let done = self.migration_links[node].transmit(now, len as u64);
                self.stats.migration_bytes += len as u64;
                self.stats.pointers_resolved += 1;
                self.obs.record_with(|| TraceEvent::Migration {
                    t_us: now.as_micros(),
                    kind: MigrationKind::PointerResolve,
                    src: src.0,
                    dst: node,
                    key: key.to_u64_lossy(),
                    bytes: len as u64,
                });
                let payload = self.copy_payload(src, &key, len);
                self.store_put(NodeIdx(node), key, payload, done);
                if done > now {
                    self.inflight.insert((node, key), (src.0, done));
                }
                resolved += 1;
                // If the source only kept the block to serve this pointer,
                // it can release it now.
                let group_size = if self.twin_set.contains(&key) {
                    self.cfg.hybrid_hash_replicas
                } else {
                    self.group_size()
                };
                let group = self.ring.replica_group(&key, group_size);
                let still_referenced = self.holders_of(&key).into_iter().any(|h| {
                    matches!(
                        self.stores[h.0].get(&key).map(|b| &b.payload),
                        Some(Payload::Pointer { holder, .. }) if *holder == src.0
                    )
                });
                if !group.contains(&src) && !still_referenced {
                    self.store_remove(src, &key);
                }
            }
        }
        resolved
    }

    // ---- failures -----------------------------------------------------------

    /// Takes a node down: it leaves the ring; transfers it was sourcing
    /// are cancelled; the shrunken replica groups regenerate their missing
    /// member (bandwidth-metered).
    pub fn node_down(&mut self, node: NodeIdx, now: SimTime) {
        if !self.node_up[node.0] {
            return;
        }
        self.node_up[node.0] = false;
        self.ring.remove_node(node);
        // Cancel incomplete transfers sourced by the dead node, and prune
        // completed records.
        let cancelled: Vec<(usize, Key)> = self
            .inflight
            .iter()
            .filter(|(_, &(src, done))| src == node.0 && done > now)
            .map(|(&k, _)| k)
            .collect();
        self.inflight
            .retain(|_, &mut (src, done)| done > now && src != node.0);
        for (dst, key) in cancelled {
            self.store_remove(NodeIdx(dst), &key);
        }
        if self.ring.is_empty() {
            return;
        }
        // Blocks the downed node held need a replacement replica. With an
        // oracle detector (the default) the survivors repair immediately;
        // with a detection delay the keys sit exposed until the timeout
        // fires (drained by `process_observed_failures`).
        let keys: Vec<Key> = self.stores[node.0].keys_in(&d2_types::KeyRange::full());
        if self.cfg.failure_detection == SimTime::ZERO {
            if self.cfg.redundancy_policy().is_erasure() {
                // Lazy repair: triage into the budgeted queue instead of
                // regenerating at the crash instant.
                self.enqueue_repairs(keys, now);
            } else {
                self.sync_keys(keys, now, SyncCtx::Repair);
            }
        } else {
            self.stats.deferred_repairs += 1;
            self.pending_repairs
                .push((now.saturating_add(self.cfg.failure_detection), keys));
        }
    }

    /// Drains deferred crash repairs whose detection timeout has expired:
    /// the survivors have now *noticed* the death and regenerate the
    /// missing replicas. Returns the number of crashes processed. A no-op
    /// unless [`ClusterConfig::failure_detection`] is positive.
    pub fn process_observed_failures(&mut self, now: SimTime) -> usize {
        let mut due = Vec::new();
        self.pending_repairs.retain_mut(|(at, keys)| {
            if *at <= now {
                due.push(std::mem::take(keys));
                false
            } else {
                true
            }
        });
        let n = due.len();
        for keys in due {
            self.stats.observed_failures += 1;
            if !self.ring.is_empty() {
                if self.cfg.redundancy_policy().is_erasure() {
                    self.enqueue_repairs(keys, now);
                } else {
                    self.sync_keys(keys, now, SyncCtx::Repair);
                }
            }
        }
        n
    }

    /// Crash repairs still waiting on failure detection.
    pub fn pending_repair_count(&self) -> usize {
        self.pending_repairs.len()
    }

    /// Keys queued for lazy erasure repair (below the threshold `m`,
    /// waiting on budget or a usable source).
    pub fn repair_queue_len(&self) -> usize {
        self.repair_queue.len()
    }

    /// Triage for lazy erasure repair: a key whose surviving fragment
    /// count is still at or above the threshold `m` costs nothing (the
    /// skip *is* the saving); one below `m` joins the budgeted queue.
    fn enqueue_repairs(&mut self, keys: Vec<Key>, now: SimTime) {
        let m = self.cfg.effective_repair_threshold();
        for key in keys {
            if !self.sizes.contains_key(&key) || self.repair_queue.contains(&key) {
                continue;
            }
            if self.reachable_copies(&key, now) >= m {
                self.stats.repairs_skipped_lazy += 1;
            } else {
                self.repair_queue.insert(key);
            }
        }
    }

    /// One pass of budgeted lazy erasure repair: refills each node's
    /// token bucket at [`ClusterConfig::repair_budget_bps`] (a zero
    /// budget is unlimited), then drains the queue in key order.
    /// Regenerating a block's missing fragments costs a full block of
    /// gather reads per fragment (the erasure-coding tax the paper's
    /// Section 3 alludes to), charged to the group owner's bucket; keys
    /// that would overdraw it stay queued and are counted as throttled.
    /// Returns the number of blocks repaired. A no-op under replication.
    pub fn run_repair_round(&mut self, now: SimTime) -> usize {
        let bps = self.cfg.repair_budget_bps;
        let dt_us = now.saturating_sub(self.last_repair_refill).as_micros();
        self.last_repair_refill = now;
        if bps > 0 {
            let add = bps.saturating_mul(dt_us) / 1_000_000;
            // Unused budget carries over up to one hour's worth: enough to
            // absorb a burst after a quiet window without unbounding the
            // long-run rate.
            let cap = bps.saturating_mul(3600);
            for t in &mut self.repair_tokens {
                *t = (*t + add).min(cap);
            }
        }
        if self.repair_queue.is_empty() {
            return 0;
        }
        let m = self.cfg.effective_repair_threshold();
        let keys: Vec<Key> = self.repair_queue.iter().copied().collect();
        let mut repaired = 0;
        for key in keys {
            let Some(&len) = self.sizes.get(&key) else {
                self.repair_queue.remove(&key);
                continue;
            };
            let survivors = self.reachable_copies(&key, now);
            if survivors >= m {
                // Recovered on its own (a holder returned, or an earlier
                // transfer arrived): nothing to regenerate after all.
                self.repair_queue.remove(&key);
                self.stats.repairs_skipped_lazy += 1;
                continue;
            }
            if survivors < self.min_live() {
                // Not reconstructable right now; keep it queued in case a
                // holder comes back.
                continue;
            }
            let group = self.ring.replica_group(&key, self.group_size());
            let missing = group
                .iter()
                .filter(|&&mem| self.node_up[mem.0] && !self.stores[mem.0].contains(&key))
                .count() as u64;
            if missing == 0 {
                self.repair_queue.remove(&key);
                continue;
            }
            let Some(&owner) = group.first() else {
                continue;
            };
            // Each regenerated fragment reads k fragments (~ one block).
            let cost = (len as u64).saturating_mul(missing);
            if bps > 0 && self.repair_tokens[owner.0] < cost {
                self.stats.repair_throttled_bytes += cost;
                continue;
            }
            let before = self.stats.migration_bytes;
            self.sync_keys([key], now, SyncCtx::Repair);
            let spent = self.stats.migration_bytes - before;
            self.stats.repair_bytes += spent;
            if bps > 0 {
                self.repair_tokens[owner.0] = self.repair_tokens[owner.0].saturating_sub(spent);
            }
            self.repair_queue.remove(&key);
            repaired += 1;
        }
        repaired
    }

    /// Brings a node back at ring position `id` (or its previous one):
    /// groups shift back; over-replicated copies are dropped and the
    /// returned node fetches what it now owes.
    pub fn node_up_at(&mut self, node: NodeIdx, id: Key, now: SimTime) {
        if self.node_up[node.0] {
            return;
        }
        self.node_up[node.0] = true;
        if !self.ring.add_node_at(node, id) {
            // Position taken (balancer moved someone there meanwhile);
            // rejoin right behind it.
            let mut candidate = id;
            loop {
                candidate = candidate.wrapping_sub(&Key::from_u64(1));
                if self.ring.add_node_at(node, candidate) {
                    break;
                }
            }
        }
        // Repair: the node's stale contents plus its new neighborhood.
        let mut keys: HashSet<Key> = self.stores[node.0]
            .keys_in(&d2_types::KeyRange::full())
            .into_iter()
            .collect();
        if let Some(range) = self.ring.range_of(node) {
            for n in self.ring.replica_group(range.end(), self.group_size() + 1) {
                for k in self.stores[n.0].keys_in(&d2_types::KeyRange::full()) {
                    keys.insert(k);
                }
            }
        }
        self.sync_keys(keys, now, SyncCtx::Repair);
    }

    // ---- FS facade ------------------------------------------------------------

    /// Creates a volume whose blocks live on this cluster.
    pub fn create_volume(&mut self, name: &str) {
        let fs = Fs::new(name, name.as_bytes(), FsConfig::new(self.system));
        self.volumes.insert(name.to_string(), fs);
    }

    /// Writes a file into a volume (buffered by the FS write-back cache).
    pub fn write_file(&mut self, volume: &str, path: &str, data: &[u8]) {
        let mut fs = self.volumes.remove(volume).expect("volume exists");
        let now = self.now;
        fs.write(self, path, data.to_vec(), now).expect("write");
        self.volumes.insert(volume.to_string(), fs);
    }

    /// Flushes every volume's write-back cache to the cluster.
    pub fn flush(&mut self) {
        let names: Vec<String> = self.volumes.keys().cloned().collect();
        for name in names {
            let mut fs = self.volumes.remove(&name).expect("volume exists");
            let now = self.now;
            fs.flush(self, now).expect("flush");
            self.volumes.insert(name, fs);
        }
    }

    /// Reads a file back through the verifying reader path (fetching real
    /// blocks from the cluster's stores).
    pub fn read_file(&mut self, volume: &str, path: &str) -> Result<Vec<u8>> {
        let reader = VolumeReader::new(volume, volume.as_bytes(), self.system);
        let now = self.now;
        reader.read_file(self, path, now)
    }
}

impl BlockIo for SimCluster {
    fn put(&mut self, name: &BlockName, data: Vec<u8>, now: SimTime) -> Result<()> {
        let key = self.system.key_of(name);
        self.put_block_data(key, data, now);
        Ok(())
    }

    fn get(&mut self, key: &Key, now: SimTime) -> Result<Vec<u8>> {
        let holder = self
            .live_data_holder(key, now)
            .ok_or(D2Error::Unavailable(*key))?;
        match self.stores[holder.0].get(key).map(|b| &b.payload) {
            Some(Payload::Data(d)) => Ok(d.clone()),
            Some(Payload::Size(_)) => Err(D2Error::InvalidOperation(
                "block stored without contents (simulation-grade put)".into(),
            )),
            _ => Err(D2Error::NotFound(*key)),
        }
    }

    fn remove(&mut self, key: &Key, now: SimTime, _delay: SimTime) -> Result<()> {
        self.remove_block(key, now);
        Ok(())
    }
}

/// Borrowed view implementing the balancer's [`LoadView`].
struct Loads<'a> {
    ring: &'a Ring,
    stores: &'a [NodeStore],
}

impl LoadView for Loads<'_> {
    fn primary_load(&self, node: NodeIdx) -> u64 {
        self.ring
            .range_of(node)
            .map(|r| self.stores[node.0].count_in(&r))
            .unwrap_or(0)
    }

    fn split_key(&self, node: NodeIdx) -> Option<Key> {
        let range = self.ring.range_of(node)?;
        self.stores[node.0].split_key_in(&range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2_ec::RedundancyPolicy;

    fn cluster(n: usize, system: SystemKind) -> SimCluster {
        let cfg = ClusterConfig {
            nodes: n,
            replicas: 3,
            seed: 42,
            ..ClusterConfig::default()
        };
        SimCluster::new(system, &cfg)
    }

    fn skewed_keys(count: usize) -> Vec<(Key, u32)> {
        // Blocks packed into 2% of the key space.
        (0..count)
            .map(|i| {
                (
                    Key::from_fraction(0.3 + 0.02 * i as f64 / count as f64),
                    8192u32,
                )
            })
            .collect()
    }

    #[test]
    fn trace_sink_sees_repair_and_balance_events() {
        let mut c = cluster(16, SystemKind::D2);
        let sink = d2_obs::SharedSink::memory(0);
        c.set_trace_sink(sink.clone());
        for (key, len) in skewed_keys(60) {
            c.put_block(key, len, SimTime::ZERO);
        }
        // A failure forces regeneration (Repair migrations).
        let key = Key::from_fraction(0.31);
        let victim = c.holders_of(&key)[0];
        c.node_down(victim, SimTime::from_secs(10));
        // Balance rounds move nodes (BalanceMove + Balance migrations /
        // pointers, depending on config).
        let moves = c.run_balance_round(SimTime::from_secs(20), false);
        let events = sink.drain();
        let repairs = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Migration {
                        kind: MigrationKind::Repair,
                        ..
                    }
                )
            })
            .count();
        let balance_moves = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BalanceMove { .. }))
            .count();
        assert!(repairs > 0, "node failure must record repair migrations");
        assert_eq!(balance_moves, moves, "one BalanceMove event per ID change");
        for e in &events {
            if let TraceEvent::Migration {
                src, dst, bytes, ..
            } = e
            {
                assert_ne!(src, dst);
                assert!(*bytes > 0);
            }
        }
    }

    #[test]
    fn failure_detection_defers_repair_until_the_timeout_fires() {
        let cfg = ClusterConfig {
            nodes: 16,
            replicas: 3,
            seed: 42,
            failure_detection: SimTime::from_secs(120),
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        for (key, len) in skewed_keys(40) {
            c.put_block(key, len, SimTime::ZERO);
        }
        let key = Key::from_fraction(0.31);
        let victim = c.holders_of(&key)[0];
        c.node_down(victim, SimTime::from_secs(10));
        // The survivors have not noticed yet: nothing regenerated.
        assert_eq!(c.stats.regenerated_blocks, 0);
        assert_eq!(c.stats.deferred_repairs, 1);
        assert_eq!(c.pending_repair_count(), 1);
        // Still nothing before the detection timeout (10 s + 120 s).
        assert_eq!(c.process_observed_failures(SimTime::from_secs(100)), 0);
        assert_eq!(c.stats.regenerated_blocks, 0);
        // After the timeout the deferred repair runs and the replica
        // groups are restored.
        assert_eq!(c.process_observed_failures(SimTime::from_secs(131)), 1);
        assert_eq!(c.stats.observed_failures, 1);
        assert_eq!(c.pending_repair_count(), 0);
        assert!(c.stats.regenerated_blocks > 0);
        assert!(!c.holders_of(&key).contains(&victim));
        assert_eq!(c.holders_of(&key).len(), cfg.replicas);
    }

    #[test]
    fn zero_failure_detection_repairs_synchronously() {
        let mut c = cluster(16, SystemKind::D2);
        for (key, len) in skewed_keys(40) {
            c.put_block(key, len, SimTime::ZERO);
        }
        let key = Key::from_fraction(0.31);
        let victim = c.holders_of(&key)[0];
        c.node_down(victim, SimTime::from_secs(10));
        assert_eq!(c.stats.deferred_repairs, 0);
        assert_eq!(c.pending_repair_count(), 0);
        assert!(c.stats.regenerated_blocks > 0, "oracle detector: immediate");
        assert_eq!(c.process_observed_failures(SimTime::from_secs(9999)), 0);
    }

    #[test]
    fn pointer_resolution_records_migration_events() {
        let cfg = ClusterConfig {
            nodes: 16,
            replicas: 3,
            seed: 42,
            use_pointers: true,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        let sink = d2_obs::SharedSink::memory(0);
        c.set_trace_sink(sink.clone());
        for (key, len) in skewed_keys(80) {
            c.put_block(key, len, SimTime::ZERO);
        }
        for round in 0..6 {
            c.run_balance_round(SimTime::from_secs(60 * round), false);
        }
        let long_after = SimTime::from_secs(60 * 6) + cfg.pointer_stabilization;
        let resolved = c.resolve_stale_pointers(long_after + SimTime::from_secs(1));
        let resolutions = sink
            .drain()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Migration {
                        kind: MigrationKind::PointerResolve,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(resolutions, resolved, "one event per resolved pointer");
    }

    #[test]
    fn put_places_r_replicas() {
        let mut c = cluster(16, SystemKind::D2);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let holders = c.holders_of(&key);
        assert_eq!(holders.len(), 3);
        assert_eq!(holders[0], c.ring.owner_of(&key).unwrap());
        assert!(c.is_available(&key, SimTime::ZERO));
        assert_eq!(c.stats.write_bytes, 8192);
    }

    #[test]
    fn remove_block_clears_holders() {
        let mut c = cluster(8, SystemKind::D2);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 100, SimTime::ZERO);
        c.remove_block(&key, SimTime::ZERO);
        assert!(c.holders_of(&key).is_empty());
        assert!(!c.is_available(&key, SimTime::from_secs(60)));
        assert_eq!(c.stats.removed_bytes, 100);
    }

    #[test]
    fn failure_of_whole_group_makes_block_unavailable() {
        let mut c = cluster(8, SystemKind::D2);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let group = c.holders_of(&key);
        // Take the whole group down "simultaneously" (no regeneration can
        // help: take them down in one instant).
        for &n in &group {
            c.node_down(n, SimTime::from_secs(10));
        }
        // Regeneration targets were computed after each departure, but the
        // source nodes died too: if no live holder remains, unavailable.
        let avail = c.is_available(&key, SimTime::from_secs(10));
        // With bandwidth-metered regeneration, the first departure copies
        // to a new member — by the second/third departure the new copy may
        // still save the block. Verify consistency with live_data_holder.
        assert_eq!(
            avail,
            c.live_data_holder(&key, SimTime::from_secs(10)).is_some()
        );
    }

    #[test]
    fn failure_then_regeneration_restores_replicas() {
        let mut c = cluster(12, SystemKind::D2);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let first = c.holders_of(&key)[0];
        c.node_down(first, SimTime::from_secs(10));
        // A new member was added to the group (transfer may complete later).
        let holders = c.holders_of(&key);
        assert_eq!(
            holders.len(),
            3,
            "regeneration should restore r copies: {holders:?}"
        );
        assert!(!holders.contains(&first));
        assert!(c.stats.migration_bytes >= 8192);
        // Block remains available throughout (survivors still hold it).
        assert!(c.is_available(&key, SimTime::from_secs(10)));
    }

    #[test]
    fn node_return_reclaims_its_range() {
        let mut c = cluster(10, SystemKind::D2);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let owner = c.ring.owner_of(&key).unwrap();
        let id = c.ring.id_of(owner).unwrap();
        c.node_down(owner, SimTime::from_secs(10));
        assert_ne!(c.ring.owner_of(&key), Some(owner));
        c.node_up_at(owner, id, SimTime::from_secs(100));
        assert_eq!(c.ring.owner_of(&key), Some(owner));
        // The returned node holds the block again (it never lost the data).
        assert!(c.stores[owner.0].contains(&key));
        // And the over-replicated fourth copy was dropped.
        assert_eq!(c.holders_of(&key).len(), 3);
    }

    #[test]
    fn balance_converges_on_skewed_data() {
        let mut c = cluster(24, SystemKind::D2);
        c.preload(skewed_keys(600));
        let before = normalized_std_dev(&c.primary_loads());
        let mut now = SimTime::ZERO;
        for _ in 0..30 {
            now += c.cfg.probe_interval;
            c.run_balance_round(now, false);
        }
        let after = normalized_std_dev(&c.primary_loads());
        assert!(
            after < before / 2.0,
            "imbalance should drop substantially: before={before:.2} after={after:.2}"
        );
        assert!(c.stats.balance_moves > 0);
    }

    #[test]
    fn traditional_does_not_balance() {
        let mut c = cluster(24, SystemKind::Traditional);
        c.preload(skewed_keys(200));
        assert_eq!(c.run_balance_round(SimTime::from_secs(600), false), 0);
        // But force (Traditional+Merc) does, within a few rounds.
        let mut moved = 0;
        for i in 0..5 {
            moved += c.run_balance_round(SimTime::from_secs(1200 + 600 * i), true);
        }
        assert!(moved > 0);
    }

    #[test]
    fn pointers_defer_migration_bytes() {
        let mut c = cluster(24, SystemKind::D2);
        c.preload(skewed_keys(400));
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += c.cfg.probe_interval;
            c.run_balance_round(now, false);
        }
        assert!(
            c.stats.pointers_installed > 0,
            "balancing should install pointers"
        );
        let migrated_before = c.stats.migration_bytes;
        // After the stabilization time, pointers resolve and bytes move.
        now += c.cfg.pointer_stabilization + SimTime::from_secs(1);
        let resolved = c.resolve_stale_pointers(now);
        assert!(resolved > 0);
        assert!(c.stats.migration_bytes > migrated_before);
    }

    #[test]
    fn no_pointer_mode_migrates_immediately() {
        let cfg = ClusterConfig {
            nodes: 24,
            replicas: 3,
            seed: 7,
            use_pointers: false,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        c.preload(skewed_keys(400));
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += c.cfg.probe_interval;
            c.run_balance_round(now, false);
        }
        assert_eq!(c.stats.pointers_installed, 0);
        assert!(c.stats.migration_bytes > 0);
    }

    #[test]
    fn replication_invariant_after_balancing() {
        let mut c = cluster(16, SystemKind::D2);
        c.preload(skewed_keys(300));
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            now += c.cfg.probe_interval;
            c.run_balance_round(now, false);
            c.resolve_stale_pointers(now);
        }
        // Every block: its whole replica group holds it (data or pointer);
        // any extra holder must be the target of a live pointer (data kept
        // until resolution).
        let keys: Vec<Key> = c.sizes.keys().copied().collect();
        for key in keys {
            let group = c.ring.replica_group(&key, c.cfg.replicas);
            let holders = c.holders_of(&key);
            for g in &group {
                assert!(holders.contains(g), "group member {g} missing block {key}");
            }
            let referenced: Vec<usize> = holders
                .iter()
                .filter_map(|h| match c.stores[h.0].get(&key).map(|b| &b.payload) {
                    Some(Payload::Pointer { holder, .. }) => Some(*holder),
                    _ => None,
                })
                .collect();
            for h in &holders {
                assert!(
                    group.contains(h) || referenced.contains(&h.0),
                    "stray holder {h} for {key}"
                );
            }
        }
    }

    #[test]
    fn erasure_requires_k_live_fragments() {
        let cfg = ClusterConfig {
            nodes: 12,
            redundancy: Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 }),
            seed: 8,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        // 4 fragments of 4096 each, carrying their code-word index.
        let holders = c.holders_of(&key);
        assert_eq!(holders.len(), 4);
        for (pos, h) in holders.iter().enumerate() {
            let payload = &c.stores[h.0].get(&key).unwrap().payload;
            assert_eq!(payload.len(), 4096);
            assert!(
                matches!(payload, Payload::Fragment { index, .. } if *index == pos as u8),
                "holder {pos} must store its code-word slot"
            );
        }
        assert!(c.is_available(&key, SimTime::ZERO));
        // Kill fragments one at a time at the same instant (suppress
        // regeneration effects by checking immediately after each kill on
        // a clone without repair).
        for (dead, &h) in holders.iter().enumerate() {
            let mut clone = c.clone();
            // Remove fragments directly: take this holder and `dead` more.
            for &other in holders.iter().take(dead) {
                clone.store_remove(other, &key);
            }
            clone.store_remove(h, &key);
            let remaining = 4 - (dead + 1);
            assert_eq!(
                clone.is_available(&key, SimTime::ZERO),
                remaining >= 2,
                "with {remaining} fragments availability must be {}",
                remaining >= 2
            );
        }
    }

    #[test]
    fn erasure_stores_fewer_bytes_than_replication() {
        let mut rep = cluster(12, SystemKind::D2);
        let cfg = ClusterConfig {
            nodes: 12,
            redundancy: Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 }),
            seed: 42,
            ..ClusterConfig::default()
        };
        let mut ec = SimCluster::new(SystemKind::D2, &cfg);
        for (k, len) in skewed_keys(50) {
            rep.put_block(k, len, SimTime::ZERO);
            ec.put_block(k, len, SimTime::ZERO);
        }
        let rep_bytes: u64 = rep.total_load_bytes().iter().sum();
        let ec_bytes: u64 = ec.total_load_bytes().iter().sum();
        // Replication r=3 stores 3x; erasure 2-of-4 stores 2x.
        assert_eq!(rep_bytes, 3 * 50 * 8192);
        assert_eq!(ec_bytes, 4 * 50 * 4096);
        assert!(ec_bytes < rep_bytes);
    }

    #[test]
    fn lazy_repair_skips_losses_above_threshold() {
        // ec(2,4) has default repair threshold m = 3: losing one of four
        // fragments costs nothing; losing a second queues a repair.
        let cfg = ClusterConfig {
            nodes: 12,
            redundancy: Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 }),
            seed: 8,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let holders = c.holders_of(&key);
        let t1 = SimTime::from_secs(10);
        c.node_down(holders[0], t1);
        assert_eq!(c.repair_queue_len(), 0, "3 survivors >= m: no repair");
        assert_eq!(c.stats.repairs_skipped_lazy, 1);
        assert_eq!(c.stats.repair_bytes, 0);
        assert!(c.is_available(&key, t1));

        let t2 = SimTime::from_secs(20);
        c.node_down(holders[1], t2);
        assert_eq!(c.repair_queue_len(), 1, "2 survivors < m: queued");
        assert!(c.is_available(&key, t2), "still decodable from k = 2");

        let t3 = SimTime::from_secs(30);
        let repaired = c.run_repair_round(t3);
        assert_eq!(repaired, 1);
        assert_eq!(c.repair_queue_len(), 0);
        assert!(c.stats.repair_bytes > 0);
        // Regeneration restored the full group on the shifted successors.
        let t4 = SimTime::from_secs(4_000);
        assert_eq!(c.reachable_copies(&key, t4), 4);
    }

    #[test]
    fn repair_budget_throttles_then_releases() {
        let cfg = ClusterConfig {
            nodes: 12,
            redundancy: Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 }),
            repair_budget_bps: 10,
            seed: 8,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let holders = c.holders_of(&key);
        c.node_down(holders[0], SimTime::from_secs(1));
        c.node_down(holders[1], SimTime::from_secs(2));
        assert_eq!(c.repair_queue_len(), 1);

        // Two missing 4096-byte fragments cost a full 8192-byte gather
        // each; at 10 B/s the bucket holds ~100 bytes after 10 s.
        assert_eq!(c.run_repair_round(SimTime::from_secs(10)), 0);
        assert_eq!(c.repair_queue_len(), 1, "budget empty: still queued");
        assert!(c.stats.repair_throttled_bytes >= 16_384);
        assert_eq!(c.stats.repair_bytes, 0);

        // After an hour the bucket has accrued enough for both fragments.
        let late = SimTime::from_secs(3_600);
        assert_eq!(c.run_repair_round(late), 1);
        assert_eq!(c.repair_queue_len(), 0);
        assert_eq!(c.stats.repair_bytes, 16_384);
        // Spend never exceeds what the budget accrued over the window.
        assert!(c.stats.repair_bytes <= 10 * 3_600);
    }

    #[test]
    fn unreconstructable_keys_wait_in_queue_for_a_returning_holder() {
        let cfg = ClusterConfig {
            nodes: 12,
            redundancy: Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 }),
            seed: 8,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let holders = c.holders_of(&key);
        let ids: Vec<Key> = holders.iter().map(|&h| c.ring.id_of(h).unwrap()).collect();
        for (i, &h) in holders.iter().enumerate().take(3) {
            c.node_down(h, SimTime::from_secs(1 + i as u64));
        }
        // One fragment left: below k, the repair round must not drop the
        // key (and must not fabricate data).
        let t = SimTime::from_secs(100);
        assert!(!c.is_available(&key, t));
        assert_eq!(c.run_repair_round(t), 0);
        assert_eq!(c.repair_queue_len(), 1);
        // A holder returns: now k fragments are reachable and the queued
        // repair can regenerate the rest.
        c.node_up_at(holders[0], ids[0], SimTime::from_secs(200));
        let t2 = SimTime::from_secs(300);
        assert!(c.run_repair_round(t2) <= 1);
        let t3 = SimTime::from_secs(4_000);
        assert!(c.is_available(&key, t3));
        assert!(c.reachable_copies(&key, t3) >= 3);
    }

    #[test]
    fn hybrid_twin_saves_block_when_locality_group_dies() {
        let cfg = ClusterConfig {
            nodes: 16,
            replicas: 3,
            hybrid_hash_replicas: 1,
            seed: 11,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        let key = Key::from_fraction(0.5);
        c.put_block(key, 8192, SimTime::ZERO);
        let locality_holders = c.holders_of(&key);
        assert_eq!(locality_holders.len(), 3);
        // Wipe the locality group's copies outright (as if the whole
        // replica group were lost at one instant, regeneration and all).
        for h in locality_holders {
            c.store_remove(h, &key);
        }
        // The safeguard replica at the hashed twin still serves the block.
        assert!(
            c.is_available(&key, SimTime::ZERO),
            "hybrid safeguard replica must keep the block readable"
        );
        // Removing the block clears the twin too.
        c.remove_block(&key, SimTime::ZERO);
        assert!(!c.is_available(&key, SimTime::from_secs(60)));
    }

    #[test]
    fn hybrid_twins_survive_balancing() {
        let cfg = ClusterConfig {
            nodes: 16,
            replicas: 3,
            hybrid_hash_replicas: 2,
            seed: 13,
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        c.preload(skewed_keys(200));
        let mut now = SimTime::ZERO;
        for _ in 0..15 {
            now += c.cfg.probe_interval;
            c.run_balance_round(now, false);
            c.resolve_stale_pointers(now);
        }
        // Every preloaded block is still available and its twin group has
        // the configured size.
        for (k, _) in skewed_keys(200) {
            assert!(c.is_available(&k, SimTime(u64::MAX)), "block {k} lost");
        }
    }

    #[test]
    fn full_nodes_divert_writes_via_pointers() {
        let cfg = ClusterConfig {
            nodes: 10,
            replicas: 2,
            seed: 17,
            // Small capacity: 12 blocks per node (cluster-wide capacity
            // of 120 copies comfortably exceeds the 80 copies written, so
            // diversion — not the give-up path — handles the hot corner).
            node_capacity_bytes: Some(12 * 8192),
            ..ClusterConfig::default()
        };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        // Cram 40 clustered blocks into one corner of the ring: the owner
        // fills up fast and must divert.
        for (k, len) in skewed_keys(40) {
            c.put_block(k, len, SimTime::ZERO);
        }
        assert!(
            c.stats.diverted_writes > 0,
            "tiny capacity must force diversion"
        );
        // Everything is still readable (pointer chains reach the data).
        for (k, _) in skewed_keys(40) {
            assert!(
                c.is_available(&k, SimTime::ZERO),
                "diverted block {k} unreachable"
            );
        }
        // No node (except possibly via the final give-up path) wildly
        // exceeds its capacity.
        for n in c.ring.nodes() {
            assert!(
                c.stores[n.0].data_bytes() <= 12 * 8192,
                "node {n} exceeded its capacity: {}",
                c.stores[n.0].data_bytes()
            );
        }
        // After balancing, the crowded range is split and diversion
        // pressure falls (the paper: the full node "will eventually shed
        // some load when it performs load balancing").
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            now += c.cfg.probe_interval;
            c.run_balance_round(now, false);
            c.resolve_stale_pointers(now);
        }
        let max = c
            .ring
            .nodes()
            .iter()
            .map(|n| c.stores[n.0].len())
            .max()
            .unwrap();
        assert!(
            max <= 40,
            "balancing should spread the crowded corner: max={max}"
        );
    }

    #[test]
    fn fs_volume_on_cluster_roundtrip() {
        for system in [
            SystemKind::D2,
            SystemKind::Traditional,
            SystemKind::TraditionalFile,
        ] {
            let mut c = cluster(8, system);
            c.create_volume("home");
            c.write_file("home", "/docs/notes.txt", b"defragmented!");
            c.write_file("home", "/docs/big.bin", &vec![7u8; 30_000]);
            c.flush();
            assert_eq!(
                c.read_file("home", "/docs/notes.txt").unwrap(),
                b"defragmented!"
            );
            assert_eq!(
                c.read_file("home", "/docs/big.bin").unwrap(),
                vec![7u8; 30_000]
            );
        }
    }

    #[test]
    fn fs_read_survives_node_failures() {
        let mut c = cluster(10, SystemKind::D2);
        c.create_volume("v");
        c.write_file("v", "/f", &vec![3u8; 20_000]);
        c.flush();
        // Kill one node: replicas keep the file readable.
        let victim = c.ring.nodes()[0];
        c.node_down(victim, SimTime::from_secs(10));
        assert_eq!(c.read_file("v", "/f").unwrap(), vec![3u8; 20_000]);
    }
}
