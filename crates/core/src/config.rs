//! Cluster configuration with the paper's defaults.

use d2_ec::RedundancyPolicy;
use d2_ring::BalanceConfig;
use d2_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Configuration shared by every cluster simulation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Replicas per block (paper: 3 in the availability runs, 4 in the
    /// performance runs).
    pub replicas: usize,
    /// RNG seed (node placement, balance probes).
    pub seed: u64,
    /// Load-balancing probe interval (paper: 10 minutes).
    pub probe_interval: SimTime,
    /// Pointer stabilization time (paper: 1 hour).
    pub pointer_stabilization: SimTime,
    /// Per-node bandwidth budget for migration / regeneration traffic
    /// (paper: 750 kbps).
    pub migration_kbps: u64,
    /// Lookup-cache entry TTL (paper: 1.25 hours).
    pub cache_ttl: SimTime,
    /// Delayed-removal window (paper: 30 s).
    pub remove_delay: SimTime,
    /// Karger–Ruhl threshold configuration (paper: t = 4).
    pub balance: BalanceConfig,
    /// Successor-list length for routing tables.
    pub successors: usize,
    /// Whether the load balancer uses block pointers to defer migration
    /// (Section 6). Disable for the ablation in Table 4's discussion.
    pub use_pointers: bool,
    /// Redundancy backend (paper Section 3's replication-vs-coding
    /// trade-off). `None` (default) is whole-block replication at
    /// [`ClusterConfig::replicas`]; `Some(policy)` selects the policy
    /// explicitly — `ErasureCode { k, n }` stores `n` fragments of
    /// `len/k` bytes on `n` consecutive successors and reconstructs a
    /// block from any `k` of them.
    pub redundancy: Option<RedundancyPolicy>,
    /// Lazy-repair threshold `m` (erasure mode only): a block's fragments
    /// are regenerated only once the survivor count drops *below* `m`,
    /// with `k <= m < n`. `None` (default) uses
    /// [`RedundancyPolicy::default_repair_threshold`] — halfway between
    /// "still decodable" and "fully redundant".
    pub repair_threshold: Option<usize>,
    /// Repair-budget rate limit in bytes/sec per node for lazy erasure
    /// repair traffic (gather + regenerated fragments). `0` (default)
    /// means unlimited — repair is still lazy but never throttled.
    pub repair_budget_bps: u64,
    /// Hybrid replica placement (the paper's Section 11 future work):
    /// additionally store this many safeguard replicas at a *hashed* twin
    /// key, combining locality-preserving and consistent-hashing
    /// placement. 0 (default) disables it.
    pub hybrid_hash_replicas: usize,
    /// Per-node storage capacity in bytes. When a write would overflow a
    /// replica, the block is *diverted*: the full node keeps a pointer and
    /// the data lands on the nearest successor with space — "as in PAST,
    /// pointers can be used to divert blocks from full nodes to those with
    /// space" (Section 6). `None` (default) means unlimited.
    pub node_capacity_bytes: Option<u64>,
    /// Failure-detection delay: how long after a crash the survivors
    /// *notice* and start replica repair. `SimTime::ZERO` (default)
    /// repairs synchronously at the crash instant — the oracle-detector
    /// assumption the availability runs of Section 8 make. A positive
    /// value defers repair by that much, modelling the timeout-based
    /// detection the churn experiment exercises.
    pub failure_detection: SimTime,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 64,
            replicas: 3,
            seed: 1,
            probe_interval: SimTime::from_secs(600),
            pointer_stabilization: SimTime::from_secs(3600),
            migration_kbps: 750,
            cache_ttl: SimTime::from_secs(4500),
            remove_delay: SimTime::from_secs(30),
            balance: BalanceConfig::default(),
            successors: 4,
            use_pointers: true,
            redundancy: None,
            repair_threshold: None,
            repair_budget_bps: 0,
            hybrid_hash_replicas: 0,
            node_capacity_bytes: None,
            failure_detection: SimTime::ZERO,
        }
    }
}

impl ClusterConfig {
    /// The effective redundancy policy: `redundancy` if set, else
    /// whole-block replication at [`ClusterConfig::replicas`].
    pub fn redundancy_policy(&self) -> RedundancyPolicy {
        self.redundancy
            .unwrap_or(RedundancyPolicy::Replicate { r: self.replicas })
    }

    /// The effective lazy-repair threshold `m` for the policy: the
    /// explicit [`ClusterConfig::repair_threshold`] clamped to
    /// `[k, n - 1]`, else the policy default. Replication repairs any
    /// missing member (`m = r`).
    pub fn effective_repair_threshold(&self) -> usize {
        let policy = self.redundancy_policy();
        match self.repair_threshold {
            Some(m) => m.clamp(
                policy.min_fragments(),
                policy.group_size().saturating_sub(1).max(1),
            ),
            None => policy.default_repair_threshold(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ClusterConfig::default();
        assert_eq!(c.probe_interval, SimTime::from_secs(600));
        assert_eq!(c.pointer_stabilization, SimTime::from_secs(3600));
        assert_eq!(c.migration_kbps, 750);
        assert_eq!(c.cache_ttl, SimTime::from_secs(4500));
        assert_eq!(c.remove_delay, SimTime::from_secs(30));
        assert!((c.balance.threshold - 4.0).abs() < 1e-9);
        assert!(c.use_pointers);
        assert_eq!(c.failure_detection, SimTime::ZERO);
    }
}
