//! D2 node/cluster composition and the simulation drivers behind the
//! paper's three evaluations.
//!
//! - [`cluster`] — [`cluster::SimCluster`]: a whole DHT system (ring +
//!   per-node stores + router + replication) under one of the three
//!   [`d2_types::SystemKind`]s, with explicit replica maintenance,
//!   block-pointer-aware load balancing, and bandwidth-metered migration.
//! - [`avail`] — the availability simulator of Section 8: replays a
//!   workload against a failure trace and scores *task* success.
//! - [`perf`] — the performance simulator of Section 9: replays access
//!   groups over the latency/TCP network model, counting lookup messages,
//!   cache miss rates, and access-group completion times.
//! - [`config`] — shared knobs with the paper's defaults (3–4 replicas,
//!   10-minute probe interval, 1-hour pointer stabilization, 750 kbps
//!   migration budget, 1.25 h lookup-cache TTL).

pub mod avail;
pub mod cluster;
pub mod config;
pub mod perf;

pub use avail::{AvailabilityReport, AvailabilitySim, TaskProfile};
pub use cluster::{ClusterStats, SimCluster};
pub use config::ClusterConfig;
pub use d2_ec::RedundancyPolicy;
pub use d2_types::SystemKind;
pub use perf::{Parallelism, PerfConfig, PerfReport, PerfSim};
