//! The end-to-end performance simulator (paper Section 9).
//!
//! Reproduces the Emulab methodology in simulation: nodes connected by a
//! measured-latency-like topology (mean RTT ≈ 90 ms), per-node access
//! links of 1500 or 384 kbps, pre-established TCP connections with
//! per-flow slow-start restart, a 15-transfer client concurrency cap, and
//! range-based lookup caches warmed from the trace before each measured
//! segment.
//!
//! Each **access group** (unit of user-perceived latency) is replayed in
//! one of two modes: `Seq` — every block fetch depends on the previous
//! one; `Para` — all fetches are independent, subject to the client cap.
//! The real system sits between these extremes (Section 9.1).

use crate::cluster::SimCluster;
use crate::config::ClusterConfig;
use d2_obs::{CacheResult, Histogram, SharedSink, TraceEvent};
use d2_ring::routing::Router;
use d2_ring::NodeIdx;
use d2_sim::net::{LinkState, TcpConn, Topology};
use d2_sim::SimTime;
use d2_store::{CacheOutcome, LookupCache};
use d2_types::{Key, SystemKind, BLOCK_SIZE};
use d2_workload::{FileOp, HarvardTrace, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Whether a group's fetches are issued sequentially or in parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// All accesses in a group are dependent (issued one at a time).
    Seq,
    /// No accesses are dependent (all issued at once, client cap applies).
    Para,
}

/// Performance-model knobs.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Per-node access link rate in kbps (paper: 1500 or 384).
    pub access_kbps: u64,
    /// Target mean pairwise RTT in ms (paper: ≈ 90).
    pub mean_rtt_ms: f64,
    /// Maximum simultaneous transfers per client (paper: 15).
    pub max_parallel: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            access_kbps: 1500,
            mean_rtt_ms: 90.0,
            max_parallel: 15,
        }
    }
}

/// Measurements from one replayed segment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Routed-lookup messages sent (forwards + replies), system-wide.
    pub lookup_messages: u64,
    /// Routed lookups performed.
    pub routed_lookups: u64,
    /// Lookup-cache hits (fresh).
    pub cache_hits: u64,
    /// Lookup-cache misses.
    pub cache_misses: u64,
    /// Cache hits that turned out stale (wasted RTT, then routed).
    pub stale_hits: u64,
    /// Completion time of each measured access group, aligned with the
    /// `groups_measure` argument.
    pub group_latencies: Vec<f64>,
    /// User owning each measured group (same alignment).
    pub group_users: Vec<u32>,
    /// Number of nodes in the system.
    pub nodes: usize,
    /// Distribution of routed-lookup hop counts.
    pub hop_hist: Histogram,
    /// Distribution of routed-lookup latencies (µs, hops + reply).
    pub lookup_latency_us: Histogram,
    /// Distribution of per-block fetch latencies (µs, lookup + transfer).
    pub fetch_latency_us: Histogram,
    /// Distribution of measured group completion times (µs; groups with
    /// no reads are excluded).
    pub group_latency_us: Histogram,
}

impl PerfReport {
    /// Mean per-user lookup-cache miss rate (Figure 13).
    pub fn cache_miss_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }

    /// Lookup messages per node (Figure 9's y-axis).
    pub fn lookup_messages_per_node(&self) -> f64 {
        self.lookup_messages as f64 / self.nodes.max(1) as f64
    }
}

/// The performance simulation driver.
#[derive(Clone, Debug)]
pub struct PerfSim {
    /// Cluster with warmed-up placement.
    pub cluster: SimCluster,
    topo: Topology,
    router: Router,
    server_links: Vec<LinkState>,
    conns: HashMap<(u32, usize), TcpConn>,
    caches: HashMap<u32, LookupCache>,
    client_node: HashMap<u32, usize>,
    /// Latency (and per-hop split, when tracing) of the most recent routed
    /// lookup per (user, key), consumed by the fetch that triggered it.
    lookup_lat: HashMap<(u32, Key), (SimTime, Vec<u64>)>,
    cfg: PerfConfig,
    rng: StdRng,
    /// Trace sink for fetch/route/cache-probe events (null by default).
    obs: SharedSink,
    // Reusable scratch buffers: fetches run once per block access across
    // warmup + measurement, so per-call allocations here dominate the
    // suite's heap traffic. Taken with `mem::take` around each use.
    group_buf: Vec<NodeIdx>,
    path_buf: Vec<NodeIdx>,
    keys_buf: Vec<(Key, u32)>,
    seen_buf: HashSet<Key>,
}

impl PerfSim {
    /// Builds the performance testbed: preload the file system, stabilize
    /// positions (for balancing systems), build routing tables and the
    /// network topology, and pin each user to a random client node.
    pub fn build(
        system: SystemKind,
        cluster_cfg: &ClusterConfig,
        perf_cfg: &PerfConfig,
        trace: &HarvardTrace,
        warmup_days: f64,
    ) -> PerfSim {
        let sim = crate::avail::AvailabilitySim::build(system, cluster_cfg, trace, warmup_days);
        let cluster = sim.cluster;
        let mut rng = StdRng::seed_from_u64(cluster_cfg.seed ^ 0x9e37_79b9);
        let topo = Topology::sample(cluster.len(), perf_cfg.mean_rtt_ms, &mut rng);
        let router = Router::build(&cluster.ring, cluster_cfg.successors);
        let server_links = vec![LinkState::new_kbps(perf_cfg.access_kbps); cluster.len()];
        let mut client_node = HashMap::new();
        for a in &trace.accesses {
            client_node
                .entry(a.user)
                .or_insert_with(|| rng.random_range(0..cluster.len()));
        }
        PerfSim {
            cluster,
            topo,
            router,
            server_links,
            conns: HashMap::new(),
            caches: HashMap::new(),
            client_node,
            lookup_lat: HashMap::new(),
            cfg: *perf_cfg,
            rng,
            obs: SharedSink::null(),
            group_buf: Vec::new(),
            path_buf: Vec::new(),
            keys_buf: Vec::new(),
            seen_buf: HashSet::new(),
        }
    }

    /// Attaches a trace sink to the driver and its cluster: per-fetch
    /// [`TraceEvent::Fetch`], per-lookup [`TraceEvent::Route`], cache
    /// probes, and access-group spans are recorded into it. Cloned sinks
    /// share one buffer, so one sink can observe a whole experiment.
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.cluster.set_trace_sink(sink.clone());
        self.obs = sink;
    }

    /// Re-provisions every access link at `kbps` (for the 1500 vs 384
    /// sweep of Figure 10) and resets connection state.
    pub fn set_access_kbps(&mut self, kbps: u64) {
        self.cfg.access_kbps = kbps;
        self.server_links = vec![LinkState::new_kbps(kbps); self.cluster.len()];
        self.conns.clear();
    }

    /// The keys fetched by a group (inode + data blocks of each read,
    /// deduplicated — the 30 s buffer cache absorbs repeats), written
    /// into `out` so drivers reuse one buffer across groups.
    fn group_keys_into(&mut self, trace: &HarvardTrace, group: &Task, out: &mut Vec<(Key, u32)>) {
        out.clear();
        self.seen_buf.clear();
        let system = self.cluster.system;
        for &i in &group.indices {
            let a = &trace.accesses[i];
            if a.op != FileOp::Read {
                continue;
            }
            for name in trace.namespace.blocks_of_access(a) {
                let key = system.key_of(&name);
                if self.seen_buf.insert(key) {
                    let len = if name.block_no == 0 {
                        256
                    } else {
                        BLOCK_SIZE as u32
                    };
                    out.push((key, len));
                }
            }
        }
    }

    /// Warms users' lookup caches by replaying `groups` without timing:
    /// every fetched key installs the owner's range, timestamped at the
    /// access time so the 1.25 h TTL applies across the timeline.
    pub fn warm_caches(&mut self, trace: &HarvardTrace, groups: &[Task]) {
        let mut keys = std::mem::take(&mut self.keys_buf);
        for group in groups {
            self.group_keys_into(trace, group, &mut keys);
            let ttl = self.cluster.cfg.cache_ttl;
            for &(key, _) in &keys {
                let cache = self
                    .caches
                    .entry(group.user)
                    .or_insert_with(|| LookupCache::new(ttl));
                if cache.peek(&key, group.start).is_none() {
                    if let Some(owner) = self.cluster.ring.owner_of(&key) {
                        if let Some(range) = self.cluster.ring.range_of(owner) {
                            cache.insert(range, owner.0, group.start);
                        }
                    }
                }
            }
        }
        self.keys_buf = keys;
        for cache in self.caches.values_mut() {
            cache.reset_stats();
        }
    }

    /// Replays `groups` in `mode`, measuring completion times and lookup
    /// traffic.
    pub fn run(&mut self, trace: &HarvardTrace, groups: &[Task], mode: Parallelism) -> PerfReport {
        let mut report = PerfReport {
            nodes: self.cluster.ring.len(),
            ..Default::default()
        };
        let mut keys = std::mem::take(&mut self.keys_buf);
        for group in groups {
            self.group_keys_into(trace, group, &mut keys);
            if keys.is_empty() {
                report.group_latencies.push(0.0);
                report.group_users.push(group.user);
                continue;
            }
            let latency = match mode {
                Parallelism::Seq => self.run_seq(group, &keys, &mut report),
                Parallelism::Para => self.run_para(group, &keys, &mut report),
            };
            let dur_us = SimTime::from_secs_f64(latency).as_micros();
            report.group_latency_us.record(dur_us);
            self.obs.record_with(|| TraceEvent::Span {
                t_us: group.start.as_micros(),
                name: "access_group".to_string(),
                user: group.user,
                dur_us,
                items: keys.len() as u32,
            });
            report.group_latencies.push(latency);
            report.group_users.push(group.user);
        }
        self.keys_buf = keys;
        report
    }

    fn run_seq(&mut self, group: &Task, keys: &[(Key, u32)], report: &mut PerfReport) -> f64 {
        let mut t = group.start;
        for &(key, len) in keys {
            let d = self.fetch_one(group.user, key, len, t, report);
            t += d;
        }
        (t - group.start).as_secs_f64()
    }

    fn run_para(&mut self, group: &Task, keys: &[(Key, u32)], report: &mut PerfReport) -> f64 {
        // List scheduling over `max_parallel` client slots.
        let mut slots = vec![group.start; self.cfg.max_parallel.max(1)];
        let mut done = group.start;
        for &(key, len) in keys {
            // Earliest-free slot.
            let (si, &start) = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, &s)| s)
                .expect("nonempty");
            let d = self.fetch_one(group.user, key, len, start, report);
            let finish = start + d;
            slots[si] = finish;
            if finish > done {
                done = finish;
            }
        }
        (done - group.start).as_secs_f64()
    }

    /// One block fetch: lookup (cache or routed) then TCP transfer from a
    /// random replica. Returns the elapsed time.
    fn fetch_one(
        &mut self,
        user: u32,
        key: Key,
        len: u32,
        now: SimTime,
        report: &mut PerfReport,
    ) -> SimTime {
        let client = *self.client_node.get(&user).unwrap_or(&0);
        let ttl = self.cluster.cfg.cache_ttl;
        let cache = self
            .caches
            .entry(user)
            .or_insert_with(|| LookupCache::new(ttl));

        let mut lookup_delay = SimTime::ZERO;
        let mut result = CacheResult::Miss;
        let owner = match cache.probe_traced(&key, now, user, &self.obs) {
            CacheOutcome::Hit { node } => {
                let cached = NodeIdx(node);
                let fresh = self
                    .cluster
                    .ring
                    .range_of(cached)
                    .map(|r| r.contains(&key))
                    .unwrap_or(false);
                if fresh {
                    report.cache_hits += 1;
                    result = CacheResult::Hit;
                    cached
                } else {
                    // Stale: wasted round trip to the cached node, then a
                    // routed lookup.
                    report.stale_hits += 1;
                    result = CacheResult::Stale;
                    cache.invalidate_node(node);
                    lookup_delay += self.topo.rtt(client, node % self.topo.len());
                    self.routed_lookup(user, client, key, now, report)
                }
            }
            CacheOutcome::Miss => self.routed_lookup(user, client, key, now, report),
        };
        // Recompute delay for routed lookups (they already added latency
        // into `self.last_lookup_delay` — returned via struct field-free
        // design: recompute here).
        let owner_addr = owner.0 % self.topo.len();
        // Choose a replica uniformly (the paper notes D2 selects replicas
        // randomly). The group goes into a reusable buffer — this runs
        // once per block access.
        let mut group = std::mem::take(&mut self.group_buf);
        self.cluster
            .ring
            .replica_group_into(&key, self.cluster.cfg.replicas, &mut group);
        let server = if group.is_empty() {
            owner
        } else {
            group[self.rng.random_range(0..group.len())]
        };
        self.group_buf = group;
        let _ = owner_addr;
        let server_addr = server.0 % self.topo.len();
        let rtt = self.topo.rtt(client, server_addr);
        // Queueing on the server's access link.
        let backlog = self.server_links[server_addr].backlog(now);
        self.server_links[server_addr].transmit(now, len as u64);
        // TCP transfer with slow-start restart semantics.
        let conn = self.conns.entry((user, server_addr)).or_default();
        let transfer = conn.fetch(now + backlog, len as u64, rtt, self.cfg.access_kbps * 1000);
        let (pending, hop_us) = self.pending_lookup_latency(user, key);
        let total = lookup_delay + pending + backlog + transfer;
        report.fetch_latency_us.record(total.as_micros());
        self.obs.record_with(|| TraceEvent::Fetch {
            t_us: now.as_micros(),
            user,
            key: key.to_u64_lossy(),
            result,
            lookup_us: (lookup_delay + pending).as_micros(),
            hop_us,
            transfer_us: (backlog + transfer).as_micros(),
            total_us: total.as_micros(),
            server: server.0,
            len,
        });
        total
    }

    /// Routed lookup: counts messages, installs the cache entry, and
    /// stashes the lookup latency for `pending_lookup_latency`.
    fn routed_lookup(
        &mut self,
        user: u32,
        client: usize,
        key: Key,
        now: SimTime,
        report: &mut PerfReport,
    ) -> NodeIdx {
        report.cache_misses += 1;
        let from = self.nearest_ring_node(client);
        // The hop path goes into a reusable buffer ([`Router::lookup`]
        // would allocate one per lookup); the Route event's owned copy is
        // only built when a sink is attached.
        let mut path = std::mem::take(&mut self.path_buf);
        let (owner, hops, messages) = self
            .router
            .lookup_into(&self.cluster.ring, from, &key, &mut path)
            .expect("ring nonempty");
        self.obs.record_with(|| TraceEvent::Route {
            t_us: now.as_micros(),
            user,
            key: key.to_u64_lossy(),
            from: from.0,
            owner: owner.0,
            hops,
            messages,
            path: path.iter().map(|n| n.0).collect(),
        });
        report.routed_lookups += 1;
        report.lookup_messages += messages as u64;
        report.hop_hist.record(hops as u64);
        // Lookup latency: hop path one-way latencies plus the reply. The
        // per-hop split is only materialized when a sink is attached.
        let trace_hops = self.obs.enabled();
        let mut hop_us: Vec<u64> = Vec::new();
        let mut lat = SimTime::ZERO;
        let mut prev = client;
        for hop in &path {
            let addr = hop.0 % self.topo.len();
            let one_way = self.topo.one_way(prev, addr);
            if trace_hops {
                hop_us.push(one_way.as_micros());
            }
            lat += one_way;
            prev = addr;
        }
        self.path_buf = path;
        let reply = self.topo.one_way(prev, client);
        if trace_hops {
            hop_us.push(reply.as_micros());
        }
        lat += reply;
        report.lookup_latency_us.record(lat.as_micros());
        let ttl = self.cluster.cfg.cache_ttl;
        let cache = self
            .caches
            .entry(user)
            .or_insert_with(|| LookupCache::new(ttl));
        if let Some(range) = self.cluster.ring.range_of(owner) {
            cache.insert(range, owner.0, now);
        }
        self.lookup_lat.insert((user, key), (lat, hop_us));
        owner
    }

    fn pending_lookup_latency(&mut self, user: u32, key: Key) -> (SimTime, Vec<u64>) {
        self.lookup_lat
            .remove(&(user, key))
            .unwrap_or((SimTime::ZERO, Vec::new()))
    }

    /// The ring node co-located with (or closest to) a client address.
    fn nearest_ring_node(&self, client: usize) -> NodeIdx {
        if self.cluster.ring.contains(NodeIdx(client)) {
            return NodeIdx(client);
        }
        self.cluster.ring.first_node().expect("ring nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2_workload::{split_access_groups, HarvardConfig};

    fn trace() -> HarvardTrace {
        let cfg = HarvardConfig {
            users: 6,
            days: 0.5,
            initial_bytes: 24 << 20,
            reads_per_user_hour: 60.0,
            ..HarvardConfig::default()
        };
        HarvardTrace::generate(&cfg, &mut StdRng::seed_from_u64(21))
    }

    fn build(system: SystemKind, nodes: usize) -> PerfSim {
        let ccfg = ClusterConfig {
            nodes,
            replicas: 4,
            seed: 3,
            ..ClusterConfig::default()
        };
        PerfSim::build(system, &ccfg, &PerfConfig::default(), &trace(), 0.1)
    }

    #[test]
    fn d2_has_lower_miss_rate_and_fewer_messages() {
        let t = trace();
        let groups = split_access_groups(&t.accesses, SimTime::from_secs(1));
        let (warm, measure) = groups.split_at(groups.len() / 2);

        let mut d2 = build(SystemKind::D2, 32);
        d2.warm_caches(&t, warm);
        let rep_d2 = d2.run(&t, measure, Parallelism::Seq);

        let mut trad = build(SystemKind::Traditional, 32);
        trad.warm_caches(&t, warm);
        let rep_trad = trad.run(&t, measure, Parallelism::Seq);

        assert!(
            rep_d2.cache_miss_rate() < rep_trad.cache_miss_rate(),
            "d2 miss {} vs traditional {}",
            rep_d2.cache_miss_rate(),
            rep_trad.cache_miss_rate()
        );
        assert!(
            rep_d2.lookup_messages < rep_trad.lookup_messages,
            "d2 msgs {} vs traditional {}",
            rep_d2.lookup_messages,
            rep_trad.lookup_messages
        );
    }

    #[test]
    fn seq_latency_dominates_para() {
        let t = trace();
        let groups = split_access_groups(&t.accesses, SimTime::from_secs(1));
        let measure = &groups[..groups.len().min(100)];
        let mut a = build(SystemKind::D2, 16);
        let seq = a.run(&t, measure, Parallelism::Seq);
        let mut b = build(SystemKind::D2, 16);
        let para = b.run(&t, measure, Parallelism::Para);
        let seq_total: f64 = seq.group_latencies.iter().sum();
        let para_total: f64 = para.group_latencies.iter().sum();
        assert!(
            para_total <= seq_total + 1e-9,
            "para {para_total} must not exceed seq {seq_total}"
        );
    }

    #[test]
    fn latencies_are_positive_and_aligned() {
        let t = trace();
        let groups = split_access_groups(&t.accesses, SimTime::from_secs(1));
        let measure = &groups[..groups.len().min(50)];
        let mut sim = build(SystemKind::D2, 16);
        let rep = sim.run(&t, measure, Parallelism::Seq);
        assert_eq!(rep.group_latencies.len(), measure.len());
        assert_eq!(rep.group_users.len(), measure.len());
        for (g, lat) in measure.iter().zip(&rep.group_latencies) {
            let has_reads = g.indices.iter().any(|&i| t.accesses[i].op == FileOp::Read);
            if has_reads {
                assert!(*lat > 0.0, "group with reads must take time");
            }
        }
    }

    #[test]
    fn tracing_records_fetches_and_matches_untraced_run() {
        let t = trace();
        let groups = split_access_groups(&t.accesses, SimTime::from_secs(1));
        let measure = &groups[..groups.len().min(40)];

        let mut plain = build(SystemKind::D2, 16);
        let rep_plain = plain.run(&t, measure, Parallelism::Seq);

        let mut traced = build(SystemKind::D2, 16);
        let sink = SharedSink::memory(0);
        traced.set_trace_sink(sink.clone());
        let rep_traced = traced.run(&t, measure, Parallelism::Seq);

        // Tracing must not perturb the simulation.
        assert_eq!(rep_plain.group_latencies, rep_traced.group_latencies);
        assert_eq!(rep_plain.lookup_messages, rep_traced.lookup_messages);

        let events = sink.drain();
        let fetches = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Fetch { .. }))
            .count() as u64;
        let routes = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Route { .. }))
            .count() as u64;
        let spans = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Span { .. }))
            .count();
        assert_eq!(
            fetches,
            rep_traced.cache_hits + rep_traced.cache_misses + rep_traced.stale_hits
        );
        assert_eq!(routes, rep_traced.routed_lookups);
        assert!(spans > 0, "each non-empty group records a span");
        // Histograms cover every fetch and every routed lookup.
        assert_eq!(rep_traced.fetch_latency_us.count(), fetches);
        assert_eq!(rep_traced.hop_hist.count(), routes);
        // Fetch events carry consistent latency splits.
        for e in &events {
            if let TraceEvent::Fetch {
                lookup_us,
                transfer_us,
                total_us,
                ..
            } = e
            {
                assert_eq!(lookup_us + transfer_us, *total_us);
            }
        }
    }

    #[test]
    fn warm_cache_reduces_lookups() {
        let t = trace();
        let groups = split_access_groups(&t.accesses, SimTime::from_secs(1));
        let measure = &groups[..groups.len().min(80)];

        let mut cold = build(SystemKind::D2, 16);
        let rep_cold = cold.run(&t, measure, Parallelism::Seq);

        let mut warm = build(SystemKind::D2, 16);
        warm.warm_caches(&t, measure);
        let rep_warm = warm.run(&t, measure, Parallelism::Seq);

        assert!(rep_warm.cache_miss_rate() < rep_cold.cache_miss_rate());
        assert!(rep_warm.lookup_messages <= rep_cold.lookup_messages);
    }
}
