//! Property test: the replication invariant survives arbitrary
//! interleavings of writes, removals, failures, recoveries, balance
//! rounds, and pointer resolution.
//!
//! Invariants checked after every step:
//! 1. every live tracked block is held by every *live* member of its
//!    replica group (as data or pointer);
//! 2. no node holds a block it has no reason to hold (not in group, not
//!    a referenced pointer target);
//! 3. any block with at least one live real copy is reported available;
//! 4. total bytes accounting never goes negative / inconsistent.

use d2_core::{ClusterConfig, SimCluster, SystemKind};
use d2_ring::NodeIdx;
use d2_sim::SimTime;
use d2_store::Payload;
use d2_types::Key;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    Put(u16),
    Remove(u16),
    NodeDown(u8),
    NodeUp(u8),
    Balance,
    ResolvePointers,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<u16>().prop_map(Step::Put),
        2 => any::<u16>().prop_map(Step::Remove),
        1 => any::<u8>().prop_map(Step::NodeDown),
        2 => any::<u8>().prop_map(Step::NodeUp),
        2 => Just(Step::Balance),
        1 => Just(Step::ResolvePointers),
    ]
}

fn key_of(k: u16) -> Key {
    // Clustered keys (the D2 regime): all blocks inside 3% of the ring.
    Key::from_fraction(0.4 + 0.03 * (k as f64 / u16::MAX as f64))
}

fn check_invariants(c: &SimCluster, tracked: &[(Key, bool)], now: SimTime) {
    for &(key, live) in tracked {
        if !live {
            continue;
        }
        let group = c.ring.replica_group(&key, c.cfg.replicas);
        // (1) every live group member holds the block — provided a live,
        // *arrived* source existed for the repair pass to copy from (a
        // cancelled in-flight transfer may legitimately leave a gap until
        // a copy arrives or a holder recovers).
        let repairable = (0..c.len()).map(NodeIdx).any(|n| {
            c.node_up[n.0]
                && c.stores[n.0]
                    .get(&key)
                    .map(|b| !b.payload.is_pointer() && b.stored_at <= c.now)
                    .unwrap_or(false)
        });
        for member in &group {
            if c.node_up[member.0] && repairable {
                assert!(
                    c.stores[member.0].contains(&key),
                    "live group member {member} missing {key}"
                );
            }
        }
        // (2) stray holders must be pointer targets or down nodes
        // (down nodes keep data on disk).
        let holders: Vec<NodeIdx> = (0..c.len())
            .map(NodeIdx)
            .filter(|n| c.stores[n.0].contains(&key))
            .collect();
        let referenced: Vec<usize> = holders
            .iter()
            .filter_map(|h| match c.stores[h.0].get(&key).map(|b| &b.payload) {
                Some(Payload::Pointer { holder, .. }) => Some(*holder),
                _ => None,
            })
            .collect();
        // Stray holders are only possible while the key is unrepairable
        // (no live arrived source — e.g. the stray's own copy is still in
        // flight), since a repair pass releases them.
        for h in &holders {
            assert!(
                group.contains(h) || referenced.contains(&h.0) || !c.node_up[h.0] || !repairable,
                "stray live holder {h} for {key}"
            );
        }
        // (3) availability is consistent with physical copies.
        let has_live_copy = holders.iter().any(|h| {
            c.node_up[h.0]
                && matches!(
                    c.stores[h.0].get(&key).map(|b| (&b.payload, b.stored_at)),
                    Some((Payload::Data(_) | Payload::Size(_), at)) if at <= now
                )
        });
        if has_live_copy {
            assert!(
                c.is_available(&key, now),
                "live copy exists but unavailable: {key}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn replication_invariant_under_chaos(steps in prop::collection::vec(arb_step(), 1..60)) {
        let cfg = ClusterConfig { nodes: 12, replicas: 3, seed: 77, ..Default::default() };
        let mut c = SimCluster::new(SystemKind::D2, &cfg);
        let n = c.len();
        let mut tracked: Vec<(Key, bool)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut last_ids: Vec<Key> =
            (0..n).map(|i| c.ring.id_of(NodeIdx(i)).unwrap()).collect();

        for step in steps {
            now += SimTime::from_secs(120);
            c.now = now;
            match step {
                Step::Put(k) => {
                    let key = key_of(k);
                    // Only write when the owner chain has a live node.
                    if !c.ring.is_empty() {
                        c.put_block(key, 8192, now);
                        if let Some(e) = tracked.iter_mut().find(|(t, _)| *t == key) {
                            e.1 = true;
                        } else {
                            tracked.push((key, true));
                        }
                    }
                }
                Step::Remove(k) => {
                    let key = key_of(k);
                    c.remove_block(&key, now);
                    if let Some(e) = tracked.iter_mut().find(|(t, _)| *t == key) {
                        e.1 = false;
                    }
                }
                Step::NodeDown(i) => {
                    let node = NodeIdx(i as usize % n);
                    // Keep a live majority so data never fully vanishes.
                    let live = c.node_up.iter().filter(|&&u| u).count();
                    if live > n / 2 {
                        if let Some(id) = c.ring.id_of(node) {
                            last_ids[node.0] = id;
                        }
                        c.node_down(node, now);
                    }
                }
                Step::NodeUp(i) => {
                    let node = NodeIdx(i as usize % n);
                    if !c.node_up[node.0] {
                        c.node_up_at(node, last_ids[node.0], now);
                    }
                }
                Step::Balance => {
                    c.run_balance_round(now, false);
                }
                Step::ResolvePointers => {
                    now += c.cfg.pointer_stabilization;
                    c.now = now;
                    c.resolve_stale_pointers(now);
                }
            }
            // Periodic repair pass (the availability simulator runs this
            // every maintenance tick).
            c.resync_all(now);
            // Far-future availability check time: in-flight regeneration
            // transfers count as arrived.
            check_invariants(&c, &tracked, SimTime(u64::MAX));
        }
    }
}
