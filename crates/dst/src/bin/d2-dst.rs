//! Command-line front-end for the deterministic simulation harness.
//!
//! ```text
//! d2-dst sweep  [--world W] [--seeds N] [--seed0 S] [--nodes N]
//!               [--replicas R] [--ec K/N] [--repair-budget BPS]
//!               [--puts P] [--jobs J] [--bug-head-only]
//!               [--bug-ack-on-send] [--bug-no-anchor] [--json PATH] [-v]
//! d2-dst replay --seed S [--world W] [--nodes N] [--replicas R]
//!               [--ec K/N] [--repair-budget BPS] [--puts P]
//!               [--bug-head-only] [--bug-ack-on-send] [--bug-no-anchor]
//!               [--trace PATH] [-v]
//! ```
//!
//! `--world` picks the adversarial regime: `classic` (crash / restart /
//! single-node isolation — the default), `partition` (multi-node
//! netsplits plus one-way silent link cuts), `gray` (slow-and-lossy
//! nodes with no crash signal), `wan` (a King-style per-pair latency
//! matrix, ≈ 90 ms mean RTT), `skew` (per-node clock offset and drift),
//! or `mixed` (per-seed choice among all of them).
//!
//! `--ec K/N` runs every node in erasure-coded fragment mode (any `K`
//! of `N` fragments reconstruct a block) instead of whole-block
//! replication; `--repair-budget` caps each node's lazy-repair traffic
//! in bytes of virtual time per second (`0` = unlimited).
//!
//! The `--bug-*` flags re-introduce known seeded bugs to validate that
//! the right regime catches them: `--bug-head-only` is PR 4's
//! successor-probing bug (classic worlds catch it),
//! `--bug-ack-on-send` acks puts on forward *send* instead of on
//! acknowledgment (only worlds with silent loss — partition cuts —
//! catch it), and `--bug-no-anchor` disables the seed-anchored ring
//! remerge (only multi-node netsplits catch it).
//!
//! `sweep` runs one deterministic world per seed and exits nonzero if
//! any fails; the first failing seed is shrunk to a minimal fault plan
//! and printed with the replay command that reproduces it. `replay`
//! runs a single seed and can export its full schedule trace as JSONL.
//!
//! See EXPERIMENTS.md ("Replaying a failing schedule") for a
//! walkthrough.

use d2_dst::{run_one, shrink, sweep, Overrides, RedundancyPolicy, Scenario, WorldRegime};
use d2_obs::trace::{to_jsonl, TraceEvent};
use d2_obs::{render_span_tree, SpanRecord};
use std::io::Write;

/// Runs a shrink pays for itself well below this many worlds.
const SHRINK_BUDGET: usize = 300;

fn usage() -> ! {
    eprintln!(
        "usage: d2-dst sweep  [--world classic|partition|gray|wan|skew|mixed]\n\
         \x20                  [--seeds N] [--seed0 S] [--nodes N] [--replicas R]\n\
         \x20                  [--ec K/N] [--repair-budget BPS] [--puts P] [--jobs J]\n\
         \x20                  [--bug-head-only] [--bug-ack-on-send] [--bug-no-anchor]\n\
         \x20                  [--json PATH] [-v]\n\
         \x20      d2-dst replay --seed S [--world W] [--nodes N] [--replicas R]\n\
         \x20                  [--ec K/N] [--repair-budget BPS] [--puts P]\n\
         \x20                  [--bug-head-only] [--bug-ack-on-send] [--bug-no-anchor]\n\
         \x20                  [--trace PATH] [-v]"
    );
    std::process::exit(2);
}

struct Args {
    scenario: Scenario,
    seeds: u64,
    seed0: u64,
    seed: Option<u64>,
    jobs: usize,
    json: Option<String>,
    trace: Option<String>,
    verbose: bool,
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} wants a number, got {s:?}");
        std::process::exit(2);
    })
}

/// Parses `--ec K/N` (e.g. `4/8`): K data fragments, N total, K < N.
fn parse_ec(s: &str) -> RedundancyPolicy {
    let parts: Vec<&str> = s.split('/').collect();
    if let [k, n] = parts[..] {
        if let (Ok(k), Ok(n)) = (k.parse::<usize>(), n.parse::<usize>()) {
            let policy = RedundancyPolicy::ErasureCode { k, n };
            if policy.validate().is_ok() {
                return policy;
            }
        }
    }
    eprintln!("--ec wants K/N with 1 <= K < N <= 255 (e.g. --ec 4/8), got {s:?}");
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Args {
    let mut out = Args {
        scenario: Scenario::default(),
        seeds: 64,
        seed0: 0,
        seed: None,
        jobs: std::thread::available_parallelism().map_or(4, |n| n.get()),
        json: None,
        trace: None,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--seeds" => out.seeds = parse_num(&val("--seeds"), "--seeds"),
            "--seed0" => out.seed0 = parse_num(&val("--seed0"), "--seed0"),
            "--seed" => out.seed = Some(parse_num(&val("--seed"), "--seed")),
            "--nodes" => out.scenario.nodes = parse_num(&val("--nodes"), "--nodes"),
            "--replicas" => out.scenario.replicas = parse_num(&val("--replicas"), "--replicas"),
            "--ec" => out.scenario.redundancy = Some(parse_ec(&val("--ec"))),
            "--repair-budget" => {
                out.scenario.repair_budget_bps =
                    parse_num(&val("--repair-budget"), "--repair-budget")
            }
            "--puts" => out.scenario.puts = parse_num(&val("--puts"), "--puts"),
            "--jobs" => out.jobs = parse_num(&val("--jobs"), "--jobs"),
            "--world" => {
                let w = val("--world");
                out.scenario.regime = WorldRegime::parse(&w).unwrap_or_else(|| {
                    eprintln!("--world wants classic|partition|gray|wan|skew|mixed, got {w:?}");
                    std::process::exit(2);
                });
            }
            "--bug-head-only" => out.scenario.probe_head_only = true,
            "--bug-ack-on-send" => out.scenario.ack_on_send = true,
            "--bug-no-anchor" => out.scenario.no_anchor = true,
            "--json" => out.json = Some(val("--json")),
            "--trace" => out.trace = Some(val("--trace")),
            "-v" | "--verbose" => out.verbose = true,
            _ => usage(),
        }
    }
    let group = match out.scenario.redundancy {
        Some(p) => p.group_size(),
        None => out.scenario.replicas as usize,
    };
    if out.scenario.nodes < 2 || group >= out.scenario.nodes {
        eprintln!("need nodes >= 2 and the redundancy group (replicas, or N with --ec) < nodes");
        std::process::exit(2);
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn cmd_sweep(args: Args) {
    let results = sweep(&args.scenario, args.seed0, args.seeds, args.jobs);
    let failed: Vec<_> = results.iter().filter(|r| !r.ok).collect();
    if args.verbose {
        for r in &results {
            let verdict = if r.ok { "ok" } else { "FAIL" };
            println!(
                "seed {:>6}  {:4}  end {:>6.2}s  acked {}/{} ({:>5.1}%)  lookups {:>4}  hops p50/p99 {}/{}  spans {:>4}  plan {}",
                r.seed,
                verdict,
                r.end_us as f64 / 1e6,
                r.acked_puts,
                r.puts,
                r.put_success_rate() * 100.0,
                r.lookups,
                r.hops_p50,
                r.hops_p99,
                r.spans,
                r.plan_len
            );
        }
    }
    println!(
        "swept seeds {}..{} in {} worlds: {} ok, {} failed",
        args.seed0,
        args.seed0 + args.seeds,
        args.scenario.regime.label(),
        results.len() - failed.len(),
        failed.len()
    );
    // Cluster-level success/hop summary across the sweep, in the shape
    // the paper's evaluation tables use (success rate, hop percentiles).
    let issued: u64 = results.iter().map(|r| r.puts as u64).sum();
    let acked: u64 = results.iter().map(|r| r.acked_puts as u64).sum();
    let lookups: u64 = results.iter().map(|r| r.lookups).sum();
    let worst_p99 = results.iter().map(|r| r.hops_p99).max().unwrap_or(0);
    if issued > 0 {
        println!(
            "workload: {acked}/{issued} puts fully acked ({:.1}%), {lookups} lookups, worst hop p99 {worst_p99}",
            acked as f64 / issued as f64 * 100.0
        );
    }

    let mut shrunk_lines: Vec<String> = Vec::new();
    let mut shrink_runs = 0usize;
    if let Some(first) = failed.first() {
        println!(
            "first failure: seed {} — {}",
            first.seed,
            first
                .violation
                .as_deref()
                .unwrap_or("(no violation recorded)")
        );
        let mut sc = args.scenario.clone();
        sc.seed = first.seed;
        if let Some(min) = shrink(&sc, SHRINK_BUDGET) {
            shrink_runs = min.runs;
            println!("minimized fault plan ({} runs spent shrinking):", min.runs);
            for entry in &min.plan {
                let line = entry.to_string();
                println!("  - {line}");
                shrunk_lines.push(line);
            }
            println!(
                "still fails with: {}",
                min.violation.as_deref().unwrap_or("(none)")
            );
        }
        let mut extras = String::new();
        if args.scenario.regime != WorldRegime::Classic {
            extras.push_str(&format!(" --world {}", args.scenario.regime.label()));
        }
        if let Some(RedundancyPolicy::ErasureCode { k, n }) = args.scenario.redundancy {
            extras.push_str(&format!(" --ec {k}/{n}"));
        }
        if args.scenario.probe_head_only {
            extras.push_str(" --bug-head-only");
        }
        if args.scenario.ack_on_send {
            extras.push_str(" --bug-ack-on-send");
        }
        if args.scenario.no_anchor {
            extras.push_str(" --bug-no-anchor");
        }
        println!(
            "replay: d2-dst replay --seed {} --nodes {} --replicas {} --puts {}{extras}",
            first.seed, sc.nodes, sc.replicas, sc.puts
        );
    }

    if let Some(path) = &args.json {
        let failed_seeds: Vec<String> = failed.iter().map(|r| r.seed.to_string()).collect();
        let plan: Vec<String> = shrunk_lines
            .iter()
            .map(|l| format!("\"{}\"", json_escape(l)))
            .collect();
        // Kong-style per-seed curve: success rate and hop percentiles
        // for every world in the sweep, so regimes can be compared
        // seed-by-seed (e.g. wan vs classic hop inflation).
        let detail: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "{{\"seed\":{},\"ok\":{},\"acked\":{},\"puts\":{},\"lookups\":{},\"hops_p50\":{},\"hops_p99\":{}}}",
                    r.seed, r.ok, r.acked_puts, r.puts, r.lookups, r.hops_p50, r.hops_p99
                )
            })
            .collect();
        let json = format!(
            "{{\"world\":\"{}\",\"seed0\":{},\"seeds\":{},\"ok\":{},\"failed\":[{}],\"shrink_runs\":{},\"shrunk_plan\":[{}],\"per_seed\":[{}]}}\n",
            args.scenario.regime.label(),
            args.seed0,
            args.seeds,
            results.len() - failed.len(),
            failed_seeds.join(","),
            shrink_runs,
            plan.join(","),
            detail.join(",")
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
        println!("summary written to {path}");
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}

fn cmd_replay(args: Args) {
    let Some(seed) = args.seed else { usage() };
    let mut sc = args.scenario.clone();
    sc.seed = seed;
    let out = run_one(&sc, &Overrides::default());
    println!(
        "seed {} ({} world): {} at {:.2}s — {} delivered, {} dropped, {} duplicated, {} delayed, {} ticks, {} acked puts",
        out.seed,
        sc.regime.label(),
        if out.ok { "ok" } else { "FAIL" },
        out.end_us as f64 / 1e6,
        out.stats.delivered,
        out.stats.dropped,
        out.stats.duplicated,
        out.stats.delayed,
        out.stats.ticks,
        out.stats.acked_puts
    );
    if out.stats.lost_partition > 0 || out.stats.lost_cut > 0 || out.stats.gray_dropped > 0 {
        println!(
            "silent losses: {} partitioned, {} one-way-cut, {} gray-dropped",
            out.stats.lost_partition, out.stats.lost_cut, out.stats.gray_dropped
        );
    }
    println!("fault plan ({} entries):", out.plan.len());
    for entry in &out.plan {
        println!("  - {entry}");
    }
    if let Some(v) = &out.violation {
        println!("violation: {v}");
    }
    // The survivors' flight recorders ride in the trace as WireSpan
    // events; reassemble them into the same causal trees `d2-node
    // trace` prints for a live cluster.
    let spans: Vec<SpanRecord> = out
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::WireSpan {
                t_us,
                trace_id,
                span_id,
                parent_span_id,
                hop,
                node,
                dur_us,
                ok,
                op,
                detail,
            } => Some(SpanRecord {
                trace_id: *trace_id,
                span_id: *span_id,
                parent_span_id: *parent_span_id,
                hop: *hop,
                node: *node,
                start_us: *t_us,
                dur_us: *dur_us,
                ok: *ok,
                op: op.clone(),
                detail: detail.clone(),
            }),
            _ => None,
        })
        .collect();
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    println!(
        "wire spans: {} across {} trace(s)",
        spans.len(),
        traces.len()
    );
    if args.verbose && !spans.is_empty() {
        print!("{}", render_span_tree(&spans));
    }
    if let Some(hops) = out.metrics.histogram("node.lookup_hops") {
        let s = hops.snapshot();
        println!(
            "lookup hops: {} lookups, p50 {}, p90 {}, p99 {}, max {}",
            s.count, s.p50, s.p90, s.p99, s.max
        );
    }
    if let Some(path) = &args.trace {
        let jsonl = to_jsonl(&out.trace);
        match std::fs::File::create(path).and_then(|mut f| f.write_all(jsonl.as_bytes())) {
            Ok(()) => println!("trace ({} events) written to {path}", out.trace.len()),
            Err(e) => {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !out.ok {
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    let args = parse_args(rest);
    match cmd.as_str() {
        "sweep" => cmd_sweep(args),
        "replay" => cmd_replay(args),
        _ => usage(),
    }
}
