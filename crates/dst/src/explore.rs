//! The schedule explorer: seeded sweeps and greedy fault-plan
//! shrinking.
//!
//! A sweep runs one deterministic world per seed (in parallel — each
//! world is fully self-contained, so threads do not perturb schedules)
//! and reports every failing seed. Shrinking then minimizes a failing
//! seed's fault plan by *neutralizing* one plan entry at a time —
//! forcing a faulted message to deliver cleanly, or un-scheduling a
//! crash/isolation — and re-running the world to check the failure
//! still reproduces. Because message fates are stateless hashes of
//! `(seed, seq)`, neutralizing one entry leaves all others intact, and
//! because every candidate removal is re-validated by a full run, the
//! final plan is sound even when removing an early fault shifts the
//! schedule downstream.

use crate::world::{NodeEvent, Overrides, PlanEntry, RunOutcome, Scenario, SimWorld};
use d2_ring::messages::Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Heal-window bisection stops once the window is pinned down to this
/// resolution — finer than this does not change what a human reads out
/// of the repro, and every probe costs a full world run.
const HEAL_TRIM_RESOLUTION_US: u64 = 250_000;

/// Runs one world to completion under `overrides`.
pub fn run_one(sc: &Scenario, overrides: &Overrides) -> RunOutcome {
    SimWorld::new(sc.clone(), overrides).run()
}

/// One seed's result in a sweep report (traces omitted to keep a
/// 1000-seed sweep's memory flat; replay the seed to regenerate them).
#[derive(Clone, Debug)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// Whether the world converged.
    pub ok: bool,
    /// The violation of a failing run.
    pub violation: Option<String>,
    /// Virtual end time.
    pub end_us: u64,
    /// Fully-acked client puts.
    pub acked_puts: u32,
    /// Client puts the scenario issued.
    pub puts: u32,
    /// Fault-plan length (node events + drawn message faults).
    pub plan_len: usize,
    /// Ring lookups completed across all surviving nodes.
    pub lookups: u64,
    /// Lookup hop-count percentiles from the merged cluster registry
    /// (`0` when no lookup completed).
    pub hops_p50: u64,
    /// See [`SeedResult::hops_p50`].
    pub hops_p99: u64,
    /// Wire spans collected from the survivors' flight recorders.
    pub spans: usize,
}

impl SeedResult {
    /// Fraction of issued puts that were fully acked (`r` replicas).
    pub fn put_success_rate(&self) -> f64 {
        if self.puts == 0 {
            1.0
        } else {
            self.acked_puts as f64 / self.puts as f64
        }
    }
}

/// Sweeps `count` seeds starting at `seed0`, running up to `jobs`
/// worlds concurrently. Results come back sorted by seed, so the
/// report is deterministic regardless of thread interleaving.
pub fn sweep(base: &Scenario, seed0: u64, count: u64, jobs: usize) -> Vec<SeedResult> {
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<SeedResult>> = Mutex::new(Vec::with_capacity(count as usize));
    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                let mut sc = base.clone();
                sc.seed = seed0 + i;
                let out = run_one(&sc, &Overrides::default());
                let hops = out.metrics.histogram("node.lookup_hops");
                let (lookups, hops_p50, hops_p99) = match hops {
                    Some(h) => {
                        let s = h.snapshot();
                        (s.count, s.p50, s.p99)
                    }
                    None => (0, 0, 0),
                };
                let spans = out
                    .trace
                    .iter()
                    .filter(|e| matches!(e, d2_obs::trace::TraceEvent::WireSpan { .. }))
                    .count();
                let summary = SeedResult {
                    seed: out.seed,
                    ok: out.ok,
                    violation: out.violation,
                    end_us: out.end_us,
                    acked_puts: out.stats.acked_puts,
                    puts: sc.puts as u32,
                    plan_len: out.plan.len(),
                    lookups,
                    hops_p50,
                    hops_p99,
                    spans,
                };
                results.lock().unwrap().push(summary);
            });
        }
    });
    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|r| r.seed);
    results
}

/// The minimized reproduction of one failing seed.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The neutralization set that, applied to the seed, still fails.
    pub overrides: Overrides,
    /// The minimized fault plan (everything still active in the final
    /// failing run).
    pub plan: Vec<PlanEntry>,
    /// The final failing run's violation.
    pub violation: Option<String>,
    /// Worlds executed while shrinking.
    pub runs: usize,
}

/// Minimizes the fault plan of a failing scenario. Returns `None` when
/// the scenario does not fail in the first place.
///
/// Node events (few, high-impact) are tried for removal one at a time.
/// Surviving netsplits then get their membership bisected (un-grouping
/// chunks of members) and every windowed event (isolation, partition,
/// cut, gray) gets its heal time binary-searched toward its start, so
/// the final repro names both *who* had to be split off and *how long*
/// the outage had to last. Drawn message faults can number in the
/// hundreds, so they are removed delta-debugging style: try
/// neutralizing a whole chunk (starting with *all* of them); if the
/// failure survives, adopt the removal, else split the chunk and
/// recurse. Every adoption is validated by a full re-run, so the final
/// plan is sound even though removing an early fault shifts every
/// later wire seq's meaning. Passes repeat until nothing more comes
/// out or `budget` runs are spent.
pub fn shrink(sc: &Scenario, budget: usize) -> Option<ShrinkResult> {
    let mut overrides = Overrides::default();
    let mut last = run_one(sc, &overrides);
    let mut runs = 1;
    if last.ok {
        return None;
    }
    loop {
        let mut removed = false;

        // Node events, one at a time.
        let node_idxs: Vec<usize> = last
            .plan
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Node { idx, .. } => Some(*idx),
                PlanEntry::Fault { .. } => None,
            })
            .collect();
        for idx in node_idxs {
            if runs >= budget {
                break;
            }
            let mut trial = overrides.clone();
            trial.skip_events.insert(idx);
            let out = run_one(sc, &trial);
            runs += 1;
            if !out.ok {
                overrides = trial;
                last = out;
                removed = true;
            }
        }

        // Partition membership, delta-debugging within each surviving
        // netsplit: un-grouping a member returns it to the majority, so
        // a chunk of members that turns out not to be load-bearing
        // leaves a smaller split behind. (A partition whose groups all
        // empty out is a no-op — pass 1 usually removes it outright on
        // the next loop.)
        let part_members: Vec<(usize, Vec<Addr>)> = last
            .plan
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Node {
                    idx,
                    event: NodeEvent::Partition { groups, .. },
                } => {
                    let members: Vec<Addr> = groups.iter().flatten().copied().collect();
                    (!members.is_empty()).then_some((*idx, members))
                }
                _ => None,
            })
            .collect();
        for (idx, members) in part_members {
            let mut stack: Vec<Vec<Addr>> = vec![members];
            while let Some(chunk) = stack.pop() {
                if runs >= budget {
                    break;
                }
                let mut trial = overrides.clone();
                trial.ungroup.extend(chunk.iter().map(|&a| (idx, a)));
                let out = run_one(sc, &trial);
                runs += 1;
                if !out.ok {
                    overrides = trial;
                    last = out;
                    removed = true;
                } else if chunk.len() > 1 {
                    let mid = chunk.len() / 2;
                    stack.push(chunk[mid..].to_vec());
                    stack.push(chunk[..mid].to_vec());
                }
            }
        }

        // Fault windows: binary-search each surviving windowed event's
        // heal time down toward its start, so the repro names the
        // shortest outage that still breaks the cluster. The plan
        // reports effective (already-trimmed) events, so each outer
        // pass resumes from the best window found so far.
        let windows: Vec<(usize, u64, u64)> = last
            .plan
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Node { idx, event } => event.heal_us().map(|h| (*idx, event.at_us(), h)),
                PlanEntry::Fault { .. } => None,
            })
            .collect();
        for (idx, at, heal) in windows {
            let (mut lo, mut hi) = (at, heal);
            while hi.saturating_sub(lo) > HEAL_TRIM_RESOLUTION_US && runs < budget {
                let mid = lo + (hi - lo) / 2;
                let mut trial = overrides.clone();
                trial.trim_heal.insert(idx, mid);
                let out = run_one(sc, &trial);
                runs += 1;
                if !out.ok {
                    overrides = trial;
                    last = out;
                    hi = mid;
                    removed = true;
                } else {
                    lo = mid;
                }
            }
        }

        // Message faults, chunk-wise. A stale seq (no longer drawn
        // after earlier removals shifted the schedule) is a harmless
        // no-op override, so chunks need not be re-derived mid-pass.
        let fault_seqs: Vec<u64> = last
            .plan
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Fault { seq, .. } => Some(*seq),
                PlanEntry::Node { .. } => None,
            })
            .collect();
        let mut stack: Vec<Vec<u64>> = if fault_seqs.is_empty() {
            Vec::new()
        } else {
            vec![fault_seqs]
        };
        while let Some(chunk) = stack.pop() {
            if runs >= budget {
                break;
            }
            let mut trial = overrides.clone();
            trial.force_deliver.extend(chunk.iter().copied());
            let out = run_one(sc, &trial);
            runs += 1;
            if !out.ok {
                overrides = trial;
                last = out;
                removed = true;
            } else if chunk.len() > 1 {
                // The chunk contains something load-bearing: bisect.
                let mid = chunk.len() / 2;
                stack.push(chunk[mid..].to_vec());
                stack.push(chunk[..mid].to_vec());
            }
        }

        if !removed || runs >= budget {
            break;
        }
    }
    Some(ShrinkResult {
        overrides,
        plan: last.plan,
        violation: last.violation,
        runs,
    })
}
