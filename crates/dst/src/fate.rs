//! Seeded randomness for the simulation: a splitmix64 stream RNG for
//! plan generation and a *stateless* per-message fate function.
//!
//! Message fates are hashed from `(seed, seq)` rather than drawn from a
//! stream so that the fate of message `seq` never depends on how much
//! randomness earlier code consumed — the same idiom as
//! `d2_sim::fault`. That is what makes schedule shrinking sound: forcing
//! one message to deliver cleanly leaves every other message's fate
//! untouched.

use std::collections::BTreeSet;

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform float in `[0, 1)`.
#[inline]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A splitmix64 sequential generator, used only for up-front plan
/// generation (crash times, victims, workload keys) where a stream is
/// the natural shape.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// A generator seeded with `seed` (salted so that streams derived
    /// from the same run seed for different purposes do not correlate).
    pub fn new(seed: u64) -> Self {
        SplitMix {
            state: mix(seed ^ 0xd2d2_d2d2_0000_0001),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        unit(self.next_u64())
    }

    /// Uniform integer in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform choice of an index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range(0, n as u64) as usize
    }
}

/// What the scheduler decides to do with one node-to-node message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FateKind {
    /// Deliver after the normal base delay plus jitter.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver twice (the duplicate lands later).
    Duplicate,
    /// Deliver after an extra multi-second delay (stale message).
    Delay,
    /// Silently discarded because an endpoint is gray (a per-node lossy
    /// profile from a [`crate::world::NodeEvent::Gray`] window), not by
    /// the global fate draw. Tracked as its own kind so shrunk plans
    /// say *why* the message vanished.
    GrayDrop,
}

impl FateKind {
    /// Stable lowercase label used in traces and fault plans.
    pub fn label(&self) -> &'static str {
        match self {
            FateKind::Deliver => "deliver",
            FateKind::Drop => "drop",
            FateKind::Duplicate => "duplicate",
            FateKind::Delay => "delay",
            FateKind::GrayDrop => "gray-drop",
        }
    }
}

/// The fate of one message: what happens plus its (jittered) timing.
#[derive(Clone, Copy, Debug)]
pub struct Fate {
    /// Deliver / drop / duplicate / delay.
    pub kind: FateKind,
    /// Jitter added to the base propagation delay, in virtual µs.
    pub jitter_us: u64,
    /// Extra delay of the duplicate copy (duplicates only).
    pub dup_extra_us: u64,
}

/// Message fault probabilities. All zero means a perfect network
/// (modulo crashes and partitions, which are plan events, not fates).
#[derive(Clone, Copy, Debug)]
pub struct FaultProbs {
    /// Probability a message is dropped.
    pub drop: f64,
    /// Probability a message is duplicated.
    pub duplicate: f64,
    /// Probability a message is delayed by seconds instead of
    /// milliseconds.
    pub delay: f64,
}

impl Default for FaultProbs {
    fn default() -> Self {
        FaultProbs {
            drop: 0.02,
            duplicate: 0.01,
            delay: 0.01,
        }
    }
}

/// The seeded fate oracle: a pure function of `(seed, seq)` with a set
/// of per-seq overrides that force clean delivery (the shrinker's
/// neutralization mechanism).
#[derive(Clone, Debug)]
pub struct FatePolicy {
    seed: u64,
    probs: FaultProbs,
    /// Faults stop being injected at this virtual time so every run has
    /// a heal phase in which the invariants must converge.
    pub fault_end_us: u64,
    /// Message seqs whose fate is forced to plain delivery (same jitter
    /// as the original draw, so neutralizing a fault perturbs timing as
    /// little as possible).
    pub force_deliver: BTreeSet<u64>,
}

/// Mean of the exponential per-message jitter (virtual µs). Large
/// relative to the 1 ms base delay, so reordering is the common case.
const JITTER_MEAN_US: f64 = 10_000.0;

impl FatePolicy {
    /// A policy for `seed` with the given fault probabilities, injecting
    /// faults only before `fault_end_us`.
    pub fn new(seed: u64, probs: FaultProbs, fault_end_us: u64) -> Self {
        FatePolicy {
            seed,
            probs,
            fault_end_us,
            force_deliver: BTreeSet::new(),
        }
    }

    /// The fate of message `seq` sent at virtual time `now_us`.
    pub fn fate(&self, seq: u64, now_us: u64) -> Fate {
        let h = mix(self.seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let jitter_us = exp_us(mix(h ^ 0x6a09_e667_f3bc_c908));
        let dup_extra_us = exp_us(mix(h ^ 0xbb67_ae85_84ca_a73b));
        let healed = now_us >= self.fault_end_us;
        let kind = if healed || self.force_deliver.contains(&seq) {
            FateKind::Deliver
        } else {
            let u = unit(h);
            let p = &self.probs;
            if u < p.drop {
                FateKind::Drop
            } else if u < p.drop + p.duplicate {
                FateKind::Duplicate
            } else if u < p.drop + p.duplicate + p.delay {
                FateKind::Delay
            } else {
                FateKind::Deliver
            }
        };
        Fate {
            kind,
            jitter_us,
            dup_extra_us,
        }
    }
}

/// Exponentially distributed jitter with mean [`JITTER_MEAN_US`],
/// derived from a hash so it is stateless like the fate itself.
fn exp_us(h: u64) -> u64 {
    // -ln(1-u) * mean; u < 1 so the log argument is positive.
    let u = unit(h);
    (-(1.0 - u).ln() * JITTER_MEAN_US) as u64
}

/// The gray-link modulation of message `seq`: `(dropped, extra_us)`.
///
/// A message touching a gray node (sender or receiver inside an active
/// [`crate::world::NodeEvent::Gray`] window) is dropped with
/// probability `drop_p`; a surviving one picks up exponential extra
/// latency with mean `mean_extra_us`. Like [`FatePolicy::fate`] this is
/// a pure hash of `(seed, seq)` — independent of the global fate draw
/// and of how many messages came before — so neutralizing one gray
/// drop (the shrinker's force-deliver set applies here too) leaves
/// every other message's gray treatment untouched. A forced delivery
/// keeps the extra latency: the link is still slow, it just stops
/// eating this message.
pub fn gray_fate(seed: u64, seq: u64, drop_p: f64, mean_extra_us: u64) -> (bool, u64) {
    let h = mix(seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6772_6179_6e6f_6465);
    let dropped = unit(h) < drop_p;
    let u = unit(mix(h ^ 0x3c6e_f372_fe94_f82b));
    let extra = (-(1.0 - u).ln() * mean_extra_us as f64) as u64;
    (dropped, extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_pure_functions_of_seed_and_seq() {
        let p = FatePolicy::new(42, FaultProbs::default(), u64::MAX);
        for seq in 0..1000 {
            let a = p.fate(seq, 0);
            let b = p.fate(seq, 0);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.jitter_us, b.jitter_us);
            assert_eq!(a.dup_extra_us, b.dup_extra_us);
        }
    }

    #[test]
    fn different_seeds_draw_different_fate_sequences() {
        let a = FatePolicy::new(1, FaultProbs::default(), u64::MAX);
        let b = FatePolicy::new(2, FaultProbs::default(), u64::MAX);
        let kinds = |p: &FatePolicy| (0..512).map(|s| p.fate(s, 0).kind).collect::<Vec<_>>();
        assert_ne!(kinds(&a), kinds(&b));
    }

    #[test]
    fn force_deliver_neutralizes_only_the_named_seq() {
        let base = FatePolicy::new(7, FaultProbs::default(), u64::MAX);
        let faulty: Vec<u64> = (0..4096)
            .filter(|&s| base.fate(s, 0).kind != FateKind::Deliver)
            .collect();
        assert!(!faulty.is_empty(), "seed 7 must draw some faults");
        let mut forced = base.clone();
        forced.force_deliver.insert(faulty[0]);
        assert_eq!(forced.fate(faulty[0], 0).kind, FateKind::Deliver);
        // Timing is preserved so the override perturbs the schedule
        // minimally.
        assert_eq!(
            forced.fate(faulty[0], 0).jitter_us,
            base.fate(faulty[0], 0).jitter_us
        );
        for &s in &faulty[1..] {
            assert_eq!(forced.fate(s, 0).kind, base.fate(s, 0).kind);
        }
    }

    #[test]
    fn faults_stop_after_fault_end() {
        let p = FatePolicy::new(3, FaultProbs::default(), 1_000_000);
        for seq in 0..4096 {
            assert_eq!(p.fate(seq, 1_000_000).kind, FateKind::Deliver);
        }
        assert!((0..4096).any(|s| p.fate(s, 0).kind != FateKind::Deliver));
    }

    #[test]
    fn fault_rates_roughly_match_probabilities() {
        let p = FatePolicy::new(99, FaultProbs::default(), u64::MAX);
        let n = 100_000;
        let drops = (0..n)
            .filter(|&s| p.fate(s, 0).kind == FateKind::Drop)
            .count();
        let frac = drops as f64 / n as f64;
        assert!((0.015..0.025).contains(&frac), "drop rate {frac}");
    }

    #[test]
    fn splitmix_range_stays_in_bounds() {
        let mut rng = SplitMix::new(5);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
