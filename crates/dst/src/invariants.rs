//! Safety and convergence invariants evaluated at heal-phase
//! checkpoints.
//!
//! The ring checks are the classic Chord correctness conditions Zave
//! formalized ("How to Make Chord Correct"): one ring, ordered
//! successor lists free of corpses, every live node on the cycle, and
//! predecessors consistent with the cycle. The storage checks encode
//! the redundancy contract on top. Replicated scenarios demand that
//! once the network heals, every *acked* put is readable from its
//! current owner and its replica count converges back to the
//! configured factor `r` on the owner-plus-successors chain.
//! Erasure-coded scenarios demand reconstructability instead: at least
//! `min(k, live)` distinct valid fragments of one write generation
//! survive on live nodes and decode back to the original bytes — full
//! group occupancy is deliberately *not* required, because lazy repair
//! leaves losses at or above the repair threshold alone.
//!
//! All checks are pure reads of protocol state — they see exactly what
//! the nodes believe, not a parallel model — and they are evaluated
//! only at quiescent points (after fault injection has ended), where a
//! correct protocol must have reached its fixed point. A failing run
//! reports the *last* violation, i.e. the condition that never became
//! true.

use crate::world::SimWorld;
use d2_net::RedundancyPolicy;
use d2_ring::messages::Addr;
use std::collections::BTreeMap;

/// Evaluates every invariant; the first violated one is the verdict.
pub fn check_all(w: &SimWorld) -> Result<(), String> {
    let live: Vec<Addr> = w.live_nodes().map(|(a, _)| a).collect();
    if live.len() < 2 {
        return Err(format!("only {} live nodes — scenario bug", live.len()));
    }
    check_joined(w)?;
    let order = check_one_ring(w, &live)?;
    check_successor_lists(w, &live)?;
    check_predecessors(w, &order)?;
    check_puts_acked(w)?;
    check_storage(w, &live)?;
    Ok(())
}

/// Every live node has joined (has at least one successor).
fn check_joined(w: &SimWorld) -> Result<(), String> {
    for (addr, rt) in w.live_nodes() {
        if !rt.protocol().is_joined() {
            return Err(format!("node {addr} is alive but not joined"));
        }
    }
    Ok(())
}

/// At most one ring, and it reaches every live node: following
/// `successor[0]` from the lowest live address must cycle through
/// exactly the live set. Returns the cycle order for the predecessor
/// check.
fn check_one_ring(w: &SimWorld, live: &[Addr]) -> Result<Vec<Addr>, String> {
    let heads: BTreeMap<Addr, Addr> = w
        .live_nodes()
        .map(|(a, rt)| (a, rt.protocol().successors()[0].addr))
        .collect();
    let start = live[0];
    let mut order = vec![start];
    let mut at = start;
    for _ in 0..live.len() {
        let next = *heads
            .get(&at)
            .ok_or_else(|| format!("node {at} on the cycle is not live"))?;
        if !heads.contains_key(&next) {
            return Err(format!("node {at}'s successor head {next} is dead"));
        }
        if next == start {
            if order.len() != live.len() {
                return Err(format!(
                    "ring cycle covers {} of {} live nodes (split ring)",
                    order.len(),
                    live.len()
                ));
            }
            return Ok(order);
        }
        if order.contains(&next) {
            return Err(format!(
                "successor cycle re-enters at node {next} without covering the ring"
            ));
        }
        order.push(next);
        at = next;
    }
    Err(format!(
        "successor chain from node {start} does not close into a ring"
    ))
}

/// Successor lists contain no corpses, never the node itself, and are
/// strictly ordered by clockwise distance (which also rules out
/// duplicates).
fn check_successor_lists(w: &SimWorld, live: &[Addr]) -> Result<(), String> {
    for (addr, rt) in w.live_nodes() {
        let p = rt.protocol();
        let me = p.me();
        let mut last_dist = None;
        for s in p.successors() {
            if s.addr == me.addr {
                return Err(format!("node {addr} lists itself as a successor"));
            }
            if !live.contains(&s.addr) {
                return Err(format!(
                    "node {addr} lists dead node {} as a successor",
                    s.addr
                ));
            }
            let d = me.id.distance_to(&s.id);
            if let Some(prev) = last_dist {
                if d <= prev {
                    return Err(format!(
                        "node {addr}'s successor list is not strictly ordered"
                    ));
                }
            }
            last_dist = Some(d);
        }
    }
    Ok(())
}

/// Every live node's predecessor pointer agrees with the ring cycle.
fn check_predecessors(w: &SimWorld, order: &[Addr]) -> Result<(), String> {
    let pred_of: BTreeMap<Addr, Addr> = order
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, order[(i + order.len() - 1) % order.len()]))
        .collect();
    for (addr, rt) in w.live_nodes() {
        let Some(p) = rt.protocol().predecessor() else {
            return Err(format!("node {addr} has no predecessor"));
        };
        let want = pred_of[&addr];
        if p.addr != want {
            return Err(format!(
                "node {addr}'s predecessor is {} but the ring order says {want}",
                p.addr
            ));
        }
    }
    Ok(())
}

/// Liveness of the workload: with faults over and the client still
/// retrying, every put must eventually be acked with all `r` copies.
fn check_puts_acked(w: &SimWorld) -> Result<(), String> {
    for (i, op) in w.client_ops().iter().enumerate() {
        if !op.acked() {
            return Err(format!("client put {i} still unacked"));
        }
    }
    Ok(())
}

/// Storage convergence dispatch: fragment reconstructability under an
/// erasure-coded scenario, replica-chain convergence otherwise.
fn check_storage(w: &SimWorld, live: &[Addr]) -> Result<(), String> {
    match w.redundancy() {
        Some(p) if p.is_erasure() => check_storage_ec(w, live, p),
        _ => check_storage_replicated(w, live),
    }
}

/// Reconstructability for every acked put under erasure coding: at
/// least `min(k, live)` distinct valid fragments of one write
/// generation survive on live nodes, and they decode back to the bytes
/// the client put. The floor is `k`, not the group size `n`: lazy
/// repair intentionally ignores losses at or above the repair
/// threshold, so full occupancy is a non-goal — what must never degrade
/// is the ability to reconstruct.
fn check_storage_ec(w: &SimWorld, live: &[Addr], policy: RedundancyPolicy) -> Result<(), String> {
    let k = policy.min_fragments();
    let codec = d2_ec::Codec::for_policy(policy).expect("dispatch picked an erasure policy");
    for (i, op) in w.client_ops().iter().enumerate() {
        if !op.acked() {
            continue;
        }
        let key = op.key();
        // Group the survivors by write generation: a put racing a
        // repair can strand a stale generation on some member, and the
        // codec refuses mixed-generation input. One generation has to
        // carry the key.
        let mut by_gen: BTreeMap<u64, Vec<d2_ec::Fragment>> = BTreeMap::new();
        for (_, rt) in w.live_nodes() {
            let Some(sf) = rt.fragments().get(&key) else {
                continue;
            };
            if sf.block_len as usize != op.data().len() || !sf.frag.verify() {
                continue;
            }
            let set = by_gen.entry(sf.frag.generation).or_default();
            if !set.iter().any(|f| f.index == sf.frag.index) {
                set.push(sf.frag.clone());
            }
        }
        // Prefer the fullest generation; ties go to the newest write.
        let best = by_gen.iter().max_by_key(|(gen, set)| (set.len(), **gen));
        let have = best.map_or(0, |(_, set)| set.len());
        let want = k.min(live.len());
        if have < want {
            return Err(format!(
                "acked put {i}: {have} of {want} distinct valid fragments survive"
            ));
        }
        if have >= k {
            let (_, set) = best.expect("have >= k > 0");
            let decoded = codec
                .decode(set, op.data().len())
                .map_err(|e| format!("acked put {i}: surviving fragments do not decode: {e}"))?;
            if decoded != op.data() {
                return Err(format!("acked put {i}: decoded bytes differ from the put"));
            }
        }
    }
    Ok(())
}

/// Storage convergence for every acked put under replication: the
/// current owner holds the block, at least `min(r, live)` live nodes
/// hold it, and the canonical chain — the owner plus its first `r - 1`
/// successors — is fully populated (the state replica repair must
/// restore after any healed churn).
fn check_storage_replicated(w: &SimWorld, live: &[Addr]) -> Result<(), String> {
    // Ring-ordered live ids, for ownership: the owner of `key` is the
    // first live node at or clockwise-after it.
    let mut ids: Vec<(d2_types::Key, Addr)> = w
        .live_nodes()
        .map(|(a, rt)| (rt.protocol().me().id, a))
        .collect();
    ids.sort();
    let owner_of =
        |key: &d2_types::Key| -> Addr { ids.iter().find(|(id, _)| id >= key).unwrap_or(&ids[0]).1 };
    let holders = |key: &d2_types::Key, data: &[u8]| -> Vec<Addr> {
        w.live_nodes()
            .filter(|(_, rt)| rt.blocks().get(key).map(Vec::as_slice) == Some(data))
            .map(|(a, _)| a)
            .collect()
    };
    let r = w.replicas() as usize;
    for (i, op) in w.client_ops().iter().enumerate() {
        if !op.acked() {
            continue;
        }
        let key = op.key();
        let owner = owner_of(&key);
        let have = holders(&key, op.data());
        if !have.contains(&owner) {
            return Err(format!(
                "acked put {i}: owner node {owner} does not hold the block (copies on {have:?})"
            ));
        }
        let want = r.min(live.len());
        if have.len() < want {
            return Err(format!(
                "acked put {i}: {} of {want} replicas present (on {have:?})",
                have.len()
            ));
        }
        // The canonical placement: owner + its first r-1 successors.
        let (_, owner_rt) = w
            .live_nodes()
            .find(|&(a, _)| a == owner)
            .expect("owner is live");
        for s in owner_rt.protocol().successors().iter().take(r - 1) {
            if !have.contains(&s.addr) {
                return Err(format!(
                    "acked put {i}: chain successor {} of owner {owner} lacks the block",
                    s.addr
                ));
            }
        }
    }
    Ok(())
}
