//! Deterministic simulation testing (DST) for the D2 node protocol.
//!
//! The live deployments in `d2-net` exercise the protocol with OS
//! threads, real sockets, and wall-clock timers — which means every bug
//! they find arrives with an unreproducible schedule attached. PR 4's
//! live-cluster debugging found three such bugs (a dead-tail successor
//! wedge, a lost join ack, a join livelock), each reproducible only by
//! luck. This crate closes that gap: it runs the *same*
//! [`d2_net::NodeRuntime`] — protocol state machine, block store,
//! replica repair, join retry — over a simulated transport
//! ([`world::SimTransport`]) and a virtual clock
//! ([`d2_net::SimClock`]), with a single event queue replacing every
//! thread and timer. One `u64` seed decides the entire schedule:
//! message fates (drop / duplicate / multi-second delay / reordering
//! jitter), node crashes and restarts, network isolations, and the
//! client workload. Same seed, same run, byte-identical trace.
//!
//! Worlds come in [`world::WorldRegime`]s that change *what kind* of
//! adversity the seed buys: `classic` (crash / restart / single-node
//! isolation), `partition` (multi-node netsplits plus one-way silent
//! link cuts), `gray` (nodes that get slow and lossy without a clean
//! crash signal), `wan` (a King-style per-pair latency matrix from
//! [`d2_sim::Topology`] replaces the flat 1 ms LAN), `skew` (per-node
//! clock offset and drift via [`d2_net::SkewClock`]), and `mixed`
//! (per-seed choice among the above). Every regime shares the same
//! invariants, replay determinism, and shrinker.
//!
//! On top of the world sit:
//!
//! - [`invariants`] — Zave-style ring invariants (one ring covering all
//!   live nodes, ordered corpse-free successor lists, cycle-consistent
//!   predecessors) plus storage invariants (replicated scenarios:
//!   every acked put readable from its owner, replica count converged
//!   back to `r` on the owner-plus-successors chain; erasure-coded
//!   scenarios: every acked put reconstructable from at least
//!   `min(k, live)` surviving fragments), evaluated at quiescent
//!   checkpoints after fault injection ends;
//! - [`explore`] — parallel seed sweeps ([`explore::sweep`]) and
//!   delta-debugging fault-plan minimization ([`explore::shrink`]) that
//!   turn "seed 7134 fails" into a handful of named faults;
//! - the `d2-dst` binary — `sweep` / `replay` front-ends for scripts
//!   and CI (see EXPERIMENTS.md for a walkthrough).
//!
//! The harness validates itself by re-introducing PR 4's head-only
//! successor-probing bug behind [`d2_ring::node::NodeConfig`]'s hidden
//! `probe_head_only` knob and asserting a sweep catches it and shrinks
//! the repro to a few crashes (see `tests/regressions.rs`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod explore;
pub mod fate;
pub mod invariants;
pub mod world;

pub use d2_net::RedundancyPolicy;
pub use explore::{run_one, shrink, sweep, SeedResult, ShrinkResult};
pub use fate::{gray_fate, Fate, FateKind, FatePolicy, FaultProbs, SplitMix};
pub use world::{
    generate_node_events, NodeEndState, NodeEvent, Overrides, PlanEntry, RunOutcome, RunStats,
    Scenario, SimTransport, SimWorld, WorldClock, WorldRegime,
};
