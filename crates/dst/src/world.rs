//! The simulated world: the *real* [`NodeRuntime`] over a virtual
//! network and a virtual clock.
//!
//! Nothing here is a model of the node — every node in the world is the
//! production `d2-net` runtime (protocol state machine, block store,
//! replica repair), driven one event at a time through
//! [`NodeRuntime::on_message`] / [`NodeRuntime::on_tick`] over a
//! [`SimTransport`] that implements the same [`Transport`] trait as TCP.
//! The world owns the only loop: a virtual-time event queue whose order
//! is a pure function of the scenario seed. There are no OS threads and
//! no sleeps, so a run is exactly reproducible — same seed, same
//! schedule, byte-identical trace.
//!
//! The seed decides everything the real world leaves to chance:
//!
//! - per-message fates (deliver / drop / duplicate / long-delay) and
//!   per-message latency jitter, via the stateless [`FatePolicy`];
//! - node crashes (with the store wiped — crash-stop with disk loss),
//!   optional restarts, and single-node network isolations, via the
//!   plan generator in [`generate_node_events`];
//! - the harder worlds a [`WorldRegime`] selects: multi-node netsplits
//!   and one-way link cuts ([`NodeEvent::Partition`] /
//!   [`NodeEvent::Cut`]), gray nodes whose traffic silently slows and
//!   leaks away ([`NodeEvent::Gray`]), King-style WAN latency from a
//!   seeded [`d2_sim::Topology`], and per-node clock offset/drift via
//!   [`d2_net::SkewClock`];
//! - the client workload's keys.
//!
//! Faults stop at `fault_end_us`; after that the run enters a heal
//! phase in which periodic checkpoints evaluate the ring and storage
//! invariants (see [`crate::invariants`]). Three consecutive clean
//! checkpoints end the run as a pass; a deadline without them ends it
//! as a failure carrying the last violation.

use crate::fate::{gray_fate, FateKind, FatePolicy, FaultProbs, SplitMix};
use crate::invariants;
use d2_net::runtime::TICK;
use d2_net::{Clock, NodeRuntime, RedundancyPolicy, SimClock, SkewClock};
use d2_obs::trace::TraceEvent;
use d2_obs::{Registry, SpanRecord, TraceCtx};
use d2_ring::messages::{Addr, RingMsg};
use d2_ring::node::NodeConfig;
use d2_sim::Topology;
use d2_types::Key;
use d2_wire::codec::{Request, Response, WireMsg};
use d2_wire::transport::{RecvError, Transport, TransportError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// One-way propagation delay before jitter, virtual µs.
const BASE_DELAY_US: u64 = 1_000;
/// Extra delay applied by [`FateKind::Delay`]: well past the join-retry
/// timer, so a delayed message is genuinely stale when it lands.
const LONG_DELAY_US: u64 = 2_000_000;
/// Spacing between node boots (a deliberate boot storm: every joiner
/// races every other through the same seed node).
const BOOT_SPACING_US: u64 = 50_000;
/// When the client workload starts, and spacing between puts.
const PUT_START_US: u64 = 2_000_000;
const PUT_SPACING_US: u64 = 150_000;
/// Client per-attempt timeout before it retries through another entry.
const OP_TIMEOUT_US: u64 = 600_000;
/// Backoff before re-trying a put whose chain acked fewer than `r`
/// copies (gives a truncated chain time to stop being truncated).
const DEGRADED_RETRY_US: u64 = 200_000;
/// Checkpoint cadence during the heal phase, and how many consecutive
/// clean checkpoints constitute convergence. One clean sample is not
/// enough: a wedged ring can oscillate (forget a corpse, re-adopt it
/// from a stale advertisement) and look clean at a single instant.
const CHECK_EVERY_US: u64 = 500_000;
const CONSECUTIVE_OK: u32 = 3;

/// Which family of adversarial worlds a scenario draws its faults
/// from. Every regime is seed-deterministic and shrinkable; they
/// differ in *what* the plan generator and the scheduler are allowed
/// to do to the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldRegime {
    /// PR 5's original worlds: crashes, restarts, and single-node
    /// symmetric isolation, over a uniform 1 ms LAN.
    Classic,
    /// Multi-node netsplits ([`NodeEvent::Partition`]) plus one-way
    /// link cuts ([`NodeEvent::Cut`]) that drop traffic *silently* —
    /// no send errors, so eviction-by-send-failure never triggers.
    Partition,
    /// Gray nodes ([`NodeEvent::Gray`]): per-node slow/lossy windows
    /// where everything touching the victim picks up extra latency and
    /// a stiff drop rate, with no clean crash signal.
    Gray,
    /// Classic faults over a King-style WAN latency matrix (seeded
    /// [`d2_sim::Topology`], ≈ 90 ms mean RTT) instead of the LAN.
    Wan,
    /// Classic faults with per-node clock offset and drift
    /// ([`d2_net::SkewClock`]), so timers fire unevenly across nodes.
    Skew,
    /// Any of the above, chosen per seed — the default deep-sweep
    /// regime once a change survives the focused ones.
    Mixed,
}

impl WorldRegime {
    /// All regimes, in documentation order.
    pub const ALL: [WorldRegime; 6] = [
        WorldRegime::Classic,
        WorldRegime::Partition,
        WorldRegime::Gray,
        WorldRegime::Wan,
        WorldRegime::Skew,
        WorldRegime::Mixed,
    ];

    /// Stable lowercase name (CLI value, JSON field, trace label).
    pub fn label(self) -> &'static str {
        match self {
            WorldRegime::Classic => "classic",
            WorldRegime::Partition => "partition",
            WorldRegime::Gray => "gray",
            WorldRegime::Wan => "wan",
            WorldRegime::Skew => "skew",
            WorldRegime::Mixed => "mixed",
        }
    }

    /// Parses a [`WorldRegime::label`] back into the regime.
    pub fn parse(s: &str) -> Option<WorldRegime> {
        WorldRegime::ALL.into_iter().find(|r| r.label() == s)
    }
}

/// Everything that parameterizes one deterministic run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The schedule seed: decides fates, node events, workload keys.
    pub seed: u64,
    /// Ring size. Node `i` sits at position `(i + 0.5) / nodes` and has
    /// transport address `i`; node 0 is the bootstrap/join seed and is
    /// never crashed or isolated (the well-known-address assumption).
    pub nodes: usize,
    /// Replication factor `r`. The generated plan keeps total crashes
    /// at or below `r - 1` — the protocol's failure assumption.
    pub replicas: u32,
    /// Client puts issued during the run.
    pub puts: usize,
    /// Message fault probabilities (active before `fault_end_us`).
    pub probs: FaultProbs,
    /// Virtual time at which all fault injection stops.
    pub fault_end_us: u64,
    /// Virtual deadline: no convergence by here fails the run.
    pub deadline_us: u64,
    /// Re-introduce PR 4's head-only successor-probing bug in every
    /// node, to validate that the explorer catches it.
    pub probe_head_only: bool,
    /// Explicit node-event script; `None` generates one from the seed.
    pub node_events: Option<Vec<NodeEvent>>,
    /// Targeted fault for regression scripts: silently drop the first
    /// `n` `JoinAck` messages put on the wire.
    pub drop_first_join_acks: u32,
    /// Redundancy backend override. `None` runs plain replication at
    /// factor [`Scenario::replicas`]; `Some(ErasureCode { k, n })` runs
    /// every node in fragment mode, where a put encodes into `n`
    /// fragments (any `k` reconstruct) and the generated crash budget
    /// becomes `n - k` instead of `replicas - 1`.
    pub redundancy: Option<RedundancyPolicy>,
    /// Lazy-repair trigger override (`None` = the policy default): a
    /// key regenerates only once its surviving fragments drop below
    /// this.
    pub repair_threshold: Option<usize>,
    /// Per-node repair budget in bytes of virtual time per second
    /// (`0` = unlimited).
    pub repair_budget_bps: u64,
    /// Which world family the plan generator and scheduler draw from.
    pub regime: WorldRegime,
    /// Probability a message touching an active gray node is silently
    /// dropped (gray/mixed regimes).
    pub gray_drop: f64,
    /// Mean extra one-way latency on messages touching an active gray
    /// node, virtual µs (the draw is exponential).
    pub gray_extra_delay_us: u64,
    /// Target mean pairwise RTT of the WAN topology, ms (wan/mixed
    /// regimes; the King data set's measured mean is ≈ 90 ms).
    pub wan_mean_rtt_ms: f64,
    /// Largest per-node clock offset, virtual µs (skew/mixed regimes).
    pub skew_max_offset_us: u64,
    /// Largest per-node drift magnitude, ppm (skew/mixed regimes).
    pub skew_max_drift_ppm: i64,
    /// Re-introduce the ack-on-send replication bug in every node
    /// (fire-and-forget chain forwarding), to validate that the
    /// asymmetric-partition worlds catch what crash/isolate worlds
    /// cannot: a durability lie that needs *silent* loss to matter.
    pub ack_on_send: bool,
    /// Disable seed-anchored anti-entropy (ring remerge after a healed
    /// netsplit) in every node — the partition regime's own seeded
    /// validation bug: without the anchor, a healed multi-node split
    /// leaves two stable rings forever.
    pub no_anchor: bool,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            seed: 0,
            nodes: 10,
            replicas: 3,
            puts: 8,
            probs: FaultProbs::default(),
            fault_end_us: 12_000_000,
            deadline_us: 72_000_000,
            probe_head_only: false,
            node_events: None,
            drop_first_join_acks: 0,
            redundancy: None,
            repair_threshold: None,
            repair_budget_bps: 0,
            regime: WorldRegime::Classic,
            gray_drop: 0.33,
            gray_extra_delay_us: 100_000,
            wan_mean_rtt_ms: 90.0,
            skew_max_offset_us: 1_000_000,
            skew_max_drift_ppm: 40_000,
            ack_on_send: false,
            no_anchor: false,
        }
    }
}

impl Scenario {
    /// A smaller, shorter world for debug-mode unit tests.
    pub fn small(seed: u64) -> Self {
        Scenario {
            seed,
            nodes: 6,
            puts: 4,
            fault_end_us: 6_000_000,
            deadline_us: 45_000_000,
            ..Scenario::default()
        }
    }

    /// The default-size world under `regime`.
    pub fn in_regime(seed: u64, regime: WorldRegime) -> Self {
        Scenario {
            seed,
            regime,
            ..Scenario::default()
        }
    }

    /// The default-size world with every node in erasure-coded fragment
    /// mode (`k` of `n`).
    pub fn ec(seed: u64, k: usize, n: usize) -> Self {
        Scenario {
            seed,
            redundancy: Some(RedundancyPolicy::ErasureCode { k, n }),
            ..Scenario::default()
        }
    }

    /// Distinct copies (replica mode) or fragments (EC mode) a put must
    /// land before the client counts it as fully acked.
    pub(crate) fn required_acks(&self) -> u32 {
        match self.redundancy {
            Some(p) => p.group_size() as u32,
            None => self.replicas,
        }
    }

    /// Concurrent crashes an acked put survives by construction —
    /// `r - 1` under replication, `n - k` under erasure coding. The
    /// generated fault plan never exceeds this.
    pub fn failure_budget(&self) -> usize {
        match self.redundancy {
            Some(p) => p.group_size() - p.min_fragments(),
            None => self.replicas.saturating_sub(1) as usize,
        }
    }
}

/// A scripted or generated node-level fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeEvent {
    /// Crash-stop `node` at `at_us` (store wiped); optionally restart
    /// it at `restart_us`, rejoining through node 0 with an empty store.
    Crash {
        /// The victim (never node 0).
        node: Addr,
        /// Crash instant.
        at_us: u64,
        /// Restart instant, or `None` for a permanent failure.
        restart_us: Option<u64>,
    },
    /// Cut `node` off from every other node (both directions) between
    /// `at_us` and `heal_us` — a flaky NIC, not a netsplit. The node
    /// keeps running and keeps its store. Sends across the boundary
    /// fail fast (TCP-style connection errors).
    Isolate {
        /// The victim (never node 0).
        node: Addr,
        /// Isolation start.
        at_us: u64,
        /// Isolation end.
        heal_us: u64,
    },
    /// A multi-node netsplit: every listed node moves into its group's
    /// partition (group `i` is `groups[i]`); unlisted nodes — always
    /// including node 0 in generated plans — stay together in the
    /// majority. Cross-group sends fail fast, like [`NodeEvent::Isolate`].
    /// At `heal_us` all listed nodes rejoin the majority; the full Zave
    /// invariant suite must then re-converge, which requires the
    /// runtime's seed-anchored remerge (plain Chord stabilization never
    /// rejoins two complete rings).
    Partition {
        /// The seceding groups; nodes not listed stay in the majority.
        groups: Vec<Vec<Addr>>,
        /// Split instant.
        at_us: u64,
        /// Heal instant.
        heal_us: u64,
    },
    /// A one-way link cut: messages `from → to` are *silently*
    /// discarded between `at_us` and `heal_us`. Unlike an isolation,
    /// the sender sees its send succeed — `to`'s replies simply never
    /// come back — so nothing evicts anything and every retry/timeout
    /// path runs against a half-dead link.
    Cut {
        /// The sending side of the dead direction.
        from: Addr,
        /// The receiving side (never gets the traffic).
        to: Addr,
        /// Cut start.
        at_us: u64,
        /// Cut end.
        heal_us: u64,
    },
    /// A gray window: between `at_us` and `heal_us`, every node-to-node
    /// message with `node` as sender or receiver gains exponential
    /// extra latency and is silently dropped with the scenario's
    /// `gray_drop` probability. No sends fail, nothing looks crashed —
    /// the node is just quietly bad, the way real hardware degrades.
    Gray {
        /// The victim (never node 0).
        node: Addr,
        /// Gray window start.
        at_us: u64,
        /// Gray window end.
        heal_us: u64,
    },
}

impl NodeEvent {
    /// When the event fires.
    pub fn at_us(&self) -> u64 {
        match *self {
            NodeEvent::Crash { at_us, .. }
            | NodeEvent::Isolate { at_us, .. }
            | NodeEvent::Partition { at_us, .. }
            | NodeEvent::Cut { at_us, .. }
            | NodeEvent::Gray { at_us, .. } => at_us,
        }
    }

    /// The end of the event's window, for windowed events (everything
    /// but a crash).
    pub fn heal_us(&self) -> Option<u64> {
        match *self {
            NodeEvent::Crash { .. } => None,
            NodeEvent::Isolate { heal_us, .. }
            | NodeEvent::Partition { heal_us, .. }
            | NodeEvent::Cut { heal_us, .. }
            | NodeEvent::Gray { heal_us, .. } => Some(heal_us),
        }
    }
}

/// One entry of a run's fault plan: everything non-deterministic that
/// actually happened, in a form the shrinker can neutralize one item at
/// a time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanEntry {
    /// A node event (indexed into the scenario's generated event list).
    Node {
        /// Index into the node-event list (the shrinker's handle).
        idx: usize,
        /// The event itself.
        event: NodeEvent,
    },
    /// A non-clean message fate that was actually drawn.
    Fault {
        /// The message's wire sequence number (the shrinker's handle).
        seq: u64,
        /// What happened to it.
        kind: FateKind,
        /// Message variant, for human-readable plans.
        what: &'static str,
    },
}

impl std::fmt::Display for PlanEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanEntry::Node {
                event:
                    NodeEvent::Crash {
                        node,
                        at_us,
                        restart_us,
                    },
                ..
            } => match restart_us {
                Some(r) => write!(
                    f,
                    "crash node {node} at {:.2}s, restart at {:.2}s",
                    *at_us as f64 / 1e6,
                    *r as f64 / 1e6
                ),
                None => write!(
                    f,
                    "crash node {node} at {:.2}s (permanent)",
                    *at_us as f64 / 1e6
                ),
            },
            PlanEntry::Node {
                event:
                    NodeEvent::Isolate {
                        node,
                        at_us,
                        heal_us,
                    },
                ..
            } => write!(
                f,
                "isolate node {node} at {:.2}s, heal at {:.2}s",
                *at_us as f64 / 1e6,
                *heal_us as f64 / 1e6
            ),
            PlanEntry::Node {
                event:
                    NodeEvent::Partition {
                        groups,
                        at_us,
                        heal_us,
                    },
                ..
            } => {
                let gs: Vec<String> = groups
                    .iter()
                    .map(|g| {
                        let ns: Vec<String> = g.iter().map(|n| n.to_string()).collect();
                        format!("{{{}}}", ns.join(","))
                    })
                    .collect();
                write!(
                    f,
                    "partition off {} at {:.2}s, heal at {:.2}s",
                    gs.join(" | "),
                    *at_us as f64 / 1e6,
                    *heal_us as f64 / 1e6
                )
            }
            PlanEntry::Node {
                event:
                    NodeEvent::Cut {
                        from,
                        to,
                        at_us,
                        heal_us,
                    },
                ..
            } => write!(
                f,
                "cut link {from}->{to} (one-way, silent) at {:.2}s, heal at {:.2}s",
                *at_us as f64 / 1e6,
                *heal_us as f64 / 1e6
            ),
            PlanEntry::Node {
                event:
                    NodeEvent::Gray {
                        node,
                        at_us,
                        heal_us,
                    },
                ..
            } => write!(
                f,
                "gray node {node} at {:.2}s, heal at {:.2}s",
                *at_us as f64 / 1e6,
                *heal_us as f64 / 1e6
            ),
            PlanEntry::Fault { seq, kind, what } => {
                write!(f, "{} {what} (wire seq {seq})", kind.label())
            }
        }
    }
}

/// The shrinker's neutralization set: which plan entries to suppress on
/// the next run. Everything else about the schedule is untouched.
#[derive(Clone, Debug, Default)]
pub struct Overrides {
    /// Message seqs forced to clean delivery.
    pub force_deliver: BTreeSet<u64>,
    /// Node-event indexes not scheduled at all.
    pub skip_events: BTreeSet<usize>,
    /// `(event index, node)` pairs removed from a
    /// [`NodeEvent::Partition`]'s groups — the shrinker's handle for
    /// bisecting partition membership without touching the rest of the
    /// event. A partition whose groups all empty out becomes a no-op.
    pub ungroup: BTreeSet<(usize, Addr)>,
    /// Overridden heal times per windowed event index (isolate,
    /// partition, cut, gray) — the shrinker's handle for bisecting
    /// fault windows down to the shortest one that still fails.
    pub trim_heal: BTreeMap<usize, u64>,
}

/// Counters for one run, part of the deterministic outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Messages delivered to a live node or the client.
    pub delivered: u64,
    /// Messages dropped by a drawn fate.
    pub dropped: u64,
    /// Messages duplicated by a drawn fate.
    pub duplicated: u64,
    /// Messages long-delayed by a drawn fate.
    pub delayed: u64,
    /// In-flight messages discarded because the destination crashed.
    pub lost_crashed: u64,
    /// In-flight messages discarded by an isolation starting mid-flight.
    pub lost_partition: u64,
    /// Messages silently discarded by an active one-way link cut.
    pub lost_cut: u64,
    /// Messages silently discarded by a gray endpoint's loss profile.
    pub gray_dropped: u64,
    /// Maintenance ticks executed across all nodes.
    pub ticks: u64,
    /// Client puts fully acked (all `r` replicas written).
    pub acked_puts: u32,
    /// Invariant checkpoints evaluated.
    pub checkpoints: u32,
}

/// One live node's storage holdings when the run ended — for
/// regression tests that pin placement-level behavior the invariants
/// deliberately tolerate (e.g. PR 9's lazy-repair gap, where a
/// restart-wiped owner legitimately holds no fragments of keys it
/// owns as long as enough other members still decode).
#[derive(Clone, Debug)]
pub struct NodeEndState {
    /// Transport address.
    pub addr: Addr,
    /// Ring position.
    pub id: Key,
    /// Keys of whole blocks in the node's store, sorted.
    pub block_keys: Vec<Key>,
    /// Keys the node holds an erasure fragment for, sorted.
    pub fragment_keys: Vec<Key>,
}

/// The deterministic result of one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The seed that produced this outcome.
    pub seed: u64,
    /// Whether the world converged (three consecutive clean checkpoints
    /// before the deadline).
    pub ok: bool,
    /// The last invariant violation observed (failing runs only).
    pub violation: Option<String>,
    /// Virtual time at which the run ended.
    pub end_us: u64,
    /// Counters.
    pub stats: RunStats,
    /// The fault plan that actually played out (shrinker input).
    pub plan: Vec<PlanEntry>,
    /// The structured trace: scheduler decisions, node events, client
    /// progress, checkpoint verdicts, and — appended at the end of the
    /// run — every live node's flight-recorder spans as
    /// [`TraceEvent::WireSpan`] events in deterministic order.
    /// Byte-identical across replays of the same seed (export with
    /// [`d2_obs::trace::to_jsonl`]).
    pub trace: Vec<TraceEvent>,
    /// The surviving nodes' metric registries merged into one cluster
    /// view (`node.lookup_hops`, `node.puts`, `node.send_failures`, ...)
    /// — the same aggregation `d2-node top` performs on a live cluster.
    pub metrics: Registry,
    /// Each live node's storage holdings at the end of the run, in
    /// address order.
    pub end_nodes: Vec<NodeEndState>,
    /// The client workload: every put's key and whether it was fully
    /// acked by the end of the run.
    pub workload: Vec<(Key, bool)>,
}

/// Generates the node-event plan for a scenario from its seed (or
/// returns the scripted plan verbatim).
///
/// Generated plans respect the protocol's failure assumption: the
/// *dark budget* — nodes concurrently crashed, seceded into a
/// partition group, or gray — never exceeds
/// [`Scenario::failure_budget`] (`r - 1` replicated, `n - k`
/// erasure-coded), so an acked put can never lose every copy to the
/// plan itself. Victims are never node 0 (the well-known join seed and
/// remerge anchor), and every window closes before `fault_end_us`.
/// These guarantees are property-tested in `tests/plan_props.rs`.
pub fn generate_node_events(sc: &Scenario) -> Vec<NodeEvent> {
    if let Some(events) = &sc.node_events {
        return events.clone();
    }
    let mut events = match sc.regime {
        WorldRegime::Classic | WorldRegime::Wan | WorldRegime::Skew => {
            // WAN and skew worlds stress latency and timers, not new
            // event kinds — they reuse the classic plan (same salt, so
            // a classic seed's crash schedule is directly comparable).
            let mut rng = SplitMix::new(sc.seed ^ 0x0001_0000_0000_0001);
            gen_classic(sc, &mut rng)
        }
        WorldRegime::Partition => {
            let mut rng = SplitMix::new(sc.seed ^ 0x0003_0000_0000_0003);
            gen_partition(sc, &mut rng)
        }
        WorldRegime::Gray => {
            let mut rng = SplitMix::new(sc.seed ^ 0x0004_0000_0000_0004);
            gen_gray(sc, &mut rng)
        }
        WorldRegime::Mixed => {
            let mut rng = SplitMix::new(sc.seed ^ 0x0005_0000_0000_0005);
            match rng.unit() {
                u if u < 0.35 => gen_classic(sc, &mut rng),
                u if u < 0.70 => gen_partition(sc, &mut rng),
                _ => gen_gray(sc, &mut rng),
            }
        }
    };
    events.sort_by_key(event_sort_key);
    events
}

/// Deterministic ordering of a generated plan: by time, then a stable
/// kind rank, then the first node the event names.
fn event_sort_key(e: &NodeEvent) -> (u64, u8, Addr) {
    match e {
        NodeEvent::Crash { node, at_us, .. } => (*at_us, 0, *node),
        NodeEvent::Isolate { node, at_us, .. } => (*at_us, 1, *node),
        NodeEvent::Partition { groups, at_us, .. } => (
            *at_us,
            2,
            groups
                .iter()
                .flat_map(|g| g.iter())
                .copied()
                .min()
                .unwrap_or(0),
        ),
        NodeEvent::Cut { from, at_us, .. } => (*at_us, 3, *from),
        NodeEvent::Gray { node, at_us, .. } => (*at_us, 4, *node),
    }
}

/// PR 5's original plan shape: 0–2 crashes (half with restarts) and an
/// occasional single-node symmetric isolation.
fn gen_classic(sc: &Scenario, rng: &mut SplitMix) -> Vec<NodeEvent> {
    let fe = sc.fault_end_us;
    let mut events = Vec::new();
    let max_crashes = sc.failure_budget().min(sc.nodes.saturating_sub(2));
    let crashes = match rng.unit() {
        u if u < 0.20 => 0,
        u if u < 0.60 => 1usize.min(max_crashes),
        _ => 2usize.min(max_crashes),
    };
    let mut victims = BTreeSet::new();
    while victims.len() < crashes {
        victims.insert(1 + rng.index(sc.nodes - 1));
    }
    for node in victims {
        let at_us = rng.range(fe / 4, fe * 3 / 4);
        let restart_us = if rng.unit() < 0.5 {
            Some((at_us + rng.range(fe / 15, fe / 5)).min(fe - 1))
        } else {
            None
        };
        events.push(NodeEvent::Crash {
            node,
            at_us,
            restart_us,
        });
    }
    if rng.unit() < 0.35 {
        let node = 1 + rng.index(sc.nodes - 1);
        let at_us = rng.range(fe / 4, fe * 2 / 3);
        let heal_us = (at_us + rng.range(fe / 12, fe / 4)).min(fe - 1);
        events.push(NodeEvent::Isolate {
            node,
            at_us,
            heal_us,
        });
    }
    events
}

/// Partition-regime plans: one multi-node netsplit (sometimes three
/// ways), one or two one-way silent link cuts biased toward
/// ring-adjacent (replica chain) edges, and — half the time — a crash
/// of a cut's sending side while the cut is still dark. The *dark
/// budget* (nodes concurrently crashed or seceded) never exceeds the
/// scenario's failure budget, so any replica group keeps `f < r` —
/// an acked put can never lose every copy to the plan itself.
fn gen_partition(sc: &Scenario, rng: &mut SplitMix) -> Vec<NodeEvent> {
    let fe = sc.fault_end_us;
    let n = sc.nodes;
    let dark_budget = sc.failure_budget().min(n.saturating_sub(2));
    let mut events = Vec::new();

    // Split the dark budget up front between the netsplit's minority
    // and the (optional) aligned crash.
    let want_crash = dark_budget >= 2 && rng.unit() < 0.5;
    let minority_max = dark_budget - usize::from(want_crash);

    if minority_max >= 1 {
        // A contiguous run of non-seed nodes secedes: contiguous in
        // ring order is the worst case for replica chains, which span
        // consecutive successors.
        let m = 1 + rng.index(minority_max);
        let start = rng.index(n - 1);
        let members: Vec<Addr> = (0..m).map(|j| 1 + (start + j) % (n - 1)).collect();
        let at_us = rng.range(fe / 5, fe / 2);
        let heal_us = (at_us + rng.range(fe / 6, fe / 3)).min(fe - 1);
        let groups = if members.len() >= 2 && rng.unit() < 0.3 {
            // Three-way: the minority itself splits in two.
            let cut = 1 + rng.index(members.len() - 1);
            vec![members[..cut].to_vec(), members[cut..].to_vec()]
        } else {
            vec![members]
        };
        events.push(NodeEvent::Partition {
            groups,
            at_us,
            heal_us,
        });
    }

    let cuts = 1 + rng.index(2);
    let mut pairs: BTreeSet<(Addr, Addr)> = BTreeSet::new();
    for _ in 0..cuts {
        let (from, to) = if n >= 3 && rng.unit() < 0.6 {
            // A replica-chain edge: owner to first successor.
            let v = 1 + rng.index(n - 2);
            (v, v + 1)
        } else {
            loop {
                let a = 1 + rng.index(n - 1);
                let b = 1 + rng.index(n - 1);
                if a != b {
                    break (a, b);
                }
            }
        };
        if !pairs.insert((from, to)) {
            continue;
        }
        let at_us = rng.range(fe / 5, fe * 2 / 3);
        let heal_us = (at_us + rng.range(fe / 8, fe / 3)).min(fe - 1);
        events.push(NodeEvent::Cut {
            from,
            to,
            at_us,
            heal_us,
        });
    }

    if want_crash {
        // Crash the sending side of the first cut while its link is
        // still dark: anything it falsely promised downstream (and
        // silently lost) dies with it.
        let cut = events.iter().find_map(|e| match e {
            NodeEvent::Cut {
                from,
                at_us,
                heal_us,
                ..
            } => Some((*from, *at_us, *heal_us)),
            _ => None,
        });
        if let Some((victim, cut_at, cut_heal)) = cut {
            let lo = cut_at + (cut_heal - cut_at) / 4;
            let crash_at = rng.range(lo, cut_heal.max(lo + 1));
            let restart_us = if rng.unit() < 0.3 {
                Some((crash_at + rng.range(fe / 15, fe / 5)).min(fe - 1))
            } else {
                None
            };
            events.push(NodeEvent::Crash {
                node: victim,
                at_us: crash_at,
                restart_us,
            });
        }
    }
    events
}

/// Gray-regime plans: one or two per-node gray windows (slow + lossy,
/// no clean signal), plus an occasional classic crash when the dark
/// budget has room left. Gray nodes count against the dark budget even
/// though they keep their stores — while gray, their acks and repair
/// pushes are unreliable, so the safety argument treats them as down.
fn gen_gray(sc: &Scenario, rng: &mut SplitMix) -> Vec<NodeEvent> {
    let fe = sc.fault_end_us;
    let n = sc.nodes;
    let dark_budget = sc.failure_budget().min(n.saturating_sub(2)).max(1);
    let mut events = Vec::new();
    let grays = 1 + rng.index(dark_budget.min(2));
    let mut victims = BTreeSet::new();
    while victims.len() < grays.min(n - 1) {
        victims.insert(1 + rng.index(n - 1));
    }
    for node in victims {
        let at_us = rng.range(fe / 5, fe * 3 / 5);
        let heal_us = (at_us + rng.range(fe / 6, fe / 3)).min(fe - 1);
        events.push(NodeEvent::Gray {
            node,
            at_us,
            heal_us,
        });
    }
    if grays < dark_budget && rng.unit() < 0.35 {
        let node = 1 + rng.index(n - 1);
        let at_us = rng.range(fe / 4, fe * 3 / 4);
        let restart_us = if rng.unit() < 0.5 {
            Some((at_us + rng.range(fe / 15, fe / 5)).min(fe - 1))
        } else {
            None
        };
        events.push(NodeEvent::Crash {
            node,
            at_us,
            restart_us,
        });
    }
    events
}

/// Applies the shrinker's structural overrides to a generated plan:
/// partition members in `ungroup` leave their groups, and windowed
/// events with a `trim_heal` entry heal at the overridden time. The
/// result is the *effective* plan — what the run actually schedules
/// and what its reported [`PlanEntry::Node`] entries show.
fn effective_node_events(mut events: Vec<NodeEvent>, overrides: &Overrides) -> Vec<NodeEvent> {
    for (idx, ev) in events.iter_mut().enumerate() {
        if let NodeEvent::Partition { groups, .. } = ev {
            for g in groups.iter_mut() {
                g.retain(|n| !overrides.ungroup.contains(&(idx, *n)));
            }
            groups.retain(|g| !g.is_empty());
        }
        if let Some(&trimmed) = overrides.trim_heal.get(&idx) {
            match ev {
                NodeEvent::Isolate { at_us, heal_us, .. }
                | NodeEvent::Partition { at_us, heal_us, .. }
                | NodeEvent::Cut { at_us, heal_us, .. }
                | NodeEvent::Gray { at_us, heal_us, .. } => {
                    *heal_us = trimmed.max(*at_us + 1);
                }
                NodeEvent::Crash { .. } => {}
            }
        }
    }
    events
}

/// Shared state of the virtual network, behind the transport seam.
struct NetInner {
    client_addr: Addr,
    crashed: Vec<bool>,
    /// Partition group per node; messages cross only equal groups.
    /// Group 0 is the majority; isolations use group 1; netsplit groups
    /// start at 2.
    group: Vec<u8>,
    /// Active one-way silent cuts: a `(from, to)` entry discards
    /// `from → to` traffic without a send error.
    cuts: BTreeSet<(Addr, Addr)>,
    /// Which nodes are currently inside a gray window.
    gray: Vec<bool>,
    /// Messages sent but not yet scheduled (drained after every step),
    /// each with the trace context its sender put on the envelope.
    outbox: Vec<(Addr, Addr, WireMsg, TraceCtx)>,
}

/// The in-simulation [`Transport`]: sends append to the shared outbox
/// for the scheduler to assign fates; receives are never used because
/// the world calls [`NodeRuntime::on_message`] directly.
///
/// Sends fail fast with [`TransportError::PeerUnreachable`] exactly
/// when TCP would: the peer is crashed, or an isolation separates the
/// two endpoints. The client address is always reachable (it models a
/// local test client outside the faulted fabric).
pub struct SimTransport {
    me: Addr,
    net: Arc<Mutex<NetInner>>,
}

impl Transport for SimTransport {
    fn local_addr(&self) -> Addr {
        self.me
    }

    fn send_traced(&self, to: Addr, msg: &WireMsg, trace: TraceCtx) -> Result<(), TransportError> {
        let mut net = self.net.lock();
        if to != net.client_addr
            && (to >= net.crashed.len() || net.crashed[to] || net.group[self.me] != net.group[to])
        {
            return Err(TransportError::PeerUnreachable(to));
        }
        let me = self.me;
        net.outbox.push((me, to, msg.clone(), trace));
        Ok(())
    }

    fn recv_timeout(&self, _timeout: Duration) -> Result<(WireMsg, TraceCtx), RecvError> {
        // The world single-steps runtimes; nothing ever blocks here.
        Err(RecvError::Timeout)
    }

    fn shutdown(&self) {}
}

/// One scheduled occurrence in the virtual world.
enum Ev {
    /// Construct node `node` (bootstrap for 0, join via 0 otherwise).
    Boot { node: Addr },
    /// One maintenance tick of `node` (reschedules itself while live).
    Tick { node: Addr },
    /// A message lands at `to` (unless it crashed / was cut off since).
    /// The message is boxed so the queue's per-event footprint is not
    /// dominated by the largest `WireMsg` variant.
    Deliver {
        from: Addr,
        to: Addr,
        msg: Box<WireMsg>,
        trace: TraceCtx,
    },
    /// A node event from the plan fires.
    Node { idx: usize },
    /// A crashed node comes back (empty store, rejoins via node 0).
    Restart { node: Addr },
    /// An isolation ends.
    HealNode { node: Addr },
    /// A netsplit ends: the listed nodes rejoin the majority group.
    HealPartition { nodes: Vec<Addr> },
    /// A one-way cut ends.
    HealCut { from: Addr, to: Addr },
    /// A gray window ends.
    HealGray { node: Addr },
    /// The client issues (or retries) put `op`.
    ClientIssue { op: usize },
    /// The client's per-attempt timer for put `op` fires.
    ClientTimeout { op: usize, attempt: u32 },
    /// Evaluate the invariants (heal phase only).
    Checkpoint,
}

/// Client-side state of one put operation.
pub(crate) struct ClientOp {
    key: Key,
    data: Vec<u8>,
    acked: bool,
    attempt: u32,
    /// The outstanding request id, if any (stale responses are ignored).
    cur_req: Option<u64>,
}

impl ClientOp {
    pub(crate) fn acked(&self) -> bool {
        self.acked
    }

    pub(crate) fn key(&self) -> Key {
        self.key
    }

    pub(crate) fn data(&self) -> &[u8] {
        &self.data
    }
}

/// The clock a simulated node reads: the world's master [`SimClock`]
/// through the node's own (possibly zero) skew.
pub type WorldClock = SkewClock<SimClock>;

/// The simulated world. Construct with [`SimWorld::new`], consume with
/// [`SimWorld::run`].
pub struct SimWorld {
    sc: Scenario,
    clock: SimClock,
    net: Arc<Mutex<NetInner>>,
    nodes: Vec<Option<NodeRuntime<SimTransport, WorldClock>>>,
    node_ids: Vec<Key>,
    /// WAN latency matrix, when the regime uses one (`None` = uniform
    /// 1 ms LAN).
    wan: Option<Topology>,
    /// Per-node `(offset_us, drift_ppm)` clock skew; all zeros outside
    /// skewed worlds.
    skew: Vec<(u64, i64)>,
    node_events: Vec<NodeEvent>,
    skip_events: BTreeSet<usize>,
    policy: FatePolicy,
    queue: BTreeMap<(u64, u64), Ev>,
    next_ev: u64,
    /// Wire sequence number of node-to-node messages (the fate handle).
    msg_seq: u64,
    client_addr: Addr,
    ops: Vec<ClientOp>,
    next_req: u64,
    req_owner: HashMap<u64, usize>,
    join_acks_dropped: u32,
    faults_drawn: Vec<(u64, FateKind, &'static str)>,
    stats: RunStats,
    trace: Vec<TraceEvent>,
    clean_streak: u32,
    last_violation: Option<String>,
    verdict: Option<bool>,
}

impl SimWorld {
    /// Builds the world for `sc`, applying the shrinker's `overrides`.
    pub fn new(sc: Scenario, overrides: &Overrides) -> Self {
        assert!(sc.nodes >= 2, "a ring needs at least two nodes");
        assert!(
            (sc.required_acks() as usize) < sc.nodes,
            "the failure assumption needs the redundancy group < nodes"
        );
        if let Some(p) = sc.redundancy {
            p.validate().expect("scenario redundancy policy");
        }
        assert!(sc.fault_end_us >= 4_000_000, "leave room for boot + churn");
        let client_addr = sc.nodes;
        let net = Arc::new(Mutex::new(NetInner {
            client_addr,
            crashed: vec![false; sc.nodes],
            group: vec![0; sc.nodes],
            cuts: BTreeSet::new(),
            gray: vec![false; sc.nodes],
            outbox: Vec::new(),
        }));
        let node_ids: Vec<Key> = (0..sc.nodes)
            .map(|i| Key::from_fraction((i as f64 + 0.5) / sc.nodes as f64))
            .collect();
        let mut policy = FatePolicy::new(sc.seed, sc.probs, sc.fault_end_us);
        policy.force_deliver = overrides.force_deliver.clone();
        let node_events = effective_node_events(generate_node_events(&sc), overrides);

        // World dimensions beyond the event plan: WAN latency and clock
        // skew. The mixed regime draws each per seed (independently of
        // the event plan's stream) so roughly half its worlds carry
        // each extra dimension.
        let mut dims = SplitMix::new(sc.seed ^ 0x0006_0000_0000_0006);
        let (wan_u, skew_u) = (dims.unit(), dims.unit());
        let use_wan = match sc.regime {
            WorldRegime::Wan => true,
            WorldRegime::Mixed => wan_u < 0.5,
            _ => false,
        };
        let use_skew = match sc.regime {
            WorldRegime::Skew => true,
            WorldRegime::Mixed => skew_u < 0.5,
            _ => false,
        };
        let wan = use_wan.then(|| Topology::sample_seeded(sc.nodes, sc.wan_mean_rtt_ms, sc.seed));
        let skew: Vec<(u64, i64)> = if use_skew {
            let mut rng = SplitMix::new(sc.seed ^ 0x0007_0000_0000_0007);
            (0..sc.nodes)
                .map(|_| {
                    let offset = rng.range(0, sc.skew_max_offset_us.max(1));
                    let span = sc.skew_max_drift_ppm.max(0) as u64;
                    let drift = rng.range(0, 2 * span + 1) as i64 - span as i64;
                    (offset, drift)
                })
                .collect()
        } else {
            vec![(0, 0); sc.nodes]
        };

        // Distinct workload keys drawn from the seed.
        let mut rng = SplitMix::new(sc.seed ^ 0x0002_0000_0000_0002);
        let mut keys: Vec<Key> = Vec::new();
        while keys.len() < sc.puts {
            let k = Key::from_fraction(rng.unit());
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        let ops = keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| ClientOp {
                key,
                data: format!("blk-{i}-seed-{}", sc.seed).into_bytes(),
                acked: false,
                attempt: 0,
                cur_req: None,
            })
            .collect();

        let mut world = SimWorld {
            nodes: (0..sc.nodes).map(|_| None).collect(),
            node_ids,
            wan,
            skew,
            node_events,
            skip_events: overrides.skip_events.clone(),
            policy,
            queue: BTreeMap::new(),
            next_ev: 0,
            msg_seq: 0,
            client_addr,
            ops,
            next_req: 1,
            req_owner: HashMap::new(),
            join_acks_dropped: 0,
            faults_drawn: Vec::new(),
            stats: RunStats::default(),
            trace: Vec::new(),
            clean_streak: 0,
            last_violation: None,
            verdict: None,
            clock: SimClock::new(),
            net,
            sc,
        };

        for node in 0..world.sc.nodes {
            world.schedule(node as u64 * BOOT_SPACING_US, Ev::Boot { node });
        }
        for idx in 0..world.node_events.len() {
            if world.skip_events.contains(&idx) {
                continue;
            }
            let at = world.node_events[idx].at_us();
            world.schedule(at, Ev::Node { idx });
        }
        for op in 0..world.ops.len() {
            world.schedule(
                PUT_START_US + op as u64 * PUT_SPACING_US,
                Ev::ClientIssue { op },
            );
        }
        let first_check = world.sc.fault_end_us + CHECK_EVERY_US;
        world.schedule(first_check, Ev::Checkpoint);
        world
    }

    /// Runs the world to its verdict.
    pub fn run(mut self) -> RunOutcome {
        while self.verdict.is_none() {
            // The tick chains keep the queue non-empty until a verdict.
            let Some(((t, _), ev)) = self.queue.pop_first() else {
                break;
            };
            self.clock.set(t);
            self.dispatch(t, ev);
        }
        let ok = self.verdict.unwrap_or(false);
        let end_us = self.now();
        self.mark(
            end_us,
            format!("verdict {}", if ok { "ok" } else { "FAIL" }),
        );
        // Scrape the survivors: merge their registries into the cluster
        // view and export their flight recorders as WireSpan events, in
        // the recorders' own deterministic (start, trace, span) order.
        let mut metrics = Registry::new();
        let mut spans: Vec<SpanRecord> = Vec::new();
        for (_, rt) in self.live_nodes() {
            metrics.merge(rt.registry());
            spans.extend(rt.recorder().snapshot());
        }
        spans.sort_by(|a, b| {
            (a.start_us, a.trace_id, a.span_id, a.node)
                .cmp(&(b.start_us, b.trace_id, b.span_id, b.node))
        });
        for s in spans {
            self.trace.push(TraceEvent::WireSpan {
                t_us: s.start_us,
                trace_id: s.trace_id,
                span_id: s.span_id,
                parent_span_id: s.parent_span_id,
                hop: s.hop,
                node: s.node,
                dur_us: s.dur_us,
                ok: s.ok,
                op: s.op,
                detail: s.detail,
            });
        }
        let mut plan: Vec<PlanEntry> = self
            .node_events
            .iter()
            .enumerate()
            .filter(|(idx, _)| !self.skip_events.contains(idx))
            .map(|(idx, event)| PlanEntry::Node {
                idx,
                event: event.clone(),
            })
            .collect();
        plan.extend(
            self.faults_drawn
                .iter()
                .map(|&(seq, kind, what)| PlanEntry::Fault { seq, kind, what }),
        );
        let end_nodes = self
            .live_nodes()
            .map(|(addr, rt)| {
                let mut block_keys: Vec<Key> = rt.blocks().keys().copied().collect();
                let mut fragment_keys: Vec<Key> = rt.fragments().keys().copied().collect();
                block_keys.sort_unstable();
                fragment_keys.sort_unstable();
                NodeEndState {
                    addr,
                    id: self.node_ids[addr],
                    block_keys,
                    fragment_keys,
                }
            })
            .collect();
        let workload = self.ops.iter().map(|op| (op.key, op.acked)).collect();
        RunOutcome {
            seed: self.sc.seed,
            ok,
            violation: if ok { None } else { self.last_violation },
            end_us,
            stats: self.stats,
            plan,
            trace: self.trace,
            metrics,
            end_nodes,
            workload,
        }
    }

    /// Live nodes with their addresses (invariant checkers' view).
    pub(crate) fn live_nodes(
        &self,
    ) -> impl Iterator<Item = (Addr, &NodeRuntime<SimTransport, WorldClock>)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(a, rt)| rt.as_ref().map(|rt| (a, rt)))
    }

    pub(crate) fn replicas(&self) -> u32 {
        self.sc.replicas
    }

    pub(crate) fn redundancy(&self) -> Option<RedundancyPolicy> {
        self.sc.redundancy
    }

    pub(crate) fn client_ops(&self) -> &[ClientOp] {
        &self.ops
    }

    fn now(&self) -> u64 {
        self.clock.now_us()
    }

    fn schedule(&mut self, at_us: u64, ev: Ev) {
        let seq = self.next_ev;
        self.next_ev += 1;
        self.queue.insert((at_us, seq), ev);
    }

    fn mark(&mut self, t_us: u64, label: String) {
        self.trace.push(TraceEvent::Mark { t_us, label });
    }

    fn ring_cfg(&self) -> NodeConfig {
        let mut cfg = NodeConfig {
            probe_head_only: self.sc.probe_head_only,
            ack_on_send: self.sc.ack_on_send,
            ..NodeConfig::default()
        };
        if self.sc.no_anchor {
            cfg.anchor_every_ticks = 0;
        }
        // An erasure group of `n` members needs `n - 1` successors,
        // which a wide code pushes past the default list length.
        cfg.successors = cfg
            .successors
            .max((self.sc.required_acks() as usize).saturating_sub(1));
        cfg
    }

    /// Per-node phase offset so ticks interleave instead of firing in
    /// lockstep (which would hide ordering races).
    fn tick_phase(&self, node: Addr) -> u64 {
        (node as u64).wrapping_mul(1_371) % tick_us()
    }

    /// The (global-time) interval between `node`'s ticks: the runtime's
    /// tick period as measured by the node's own skewed clock. A node
    /// whose clock runs 5% fast fires its 20 ms timer every ~19 ms of
    /// world time — timers drift apart instead of marching in step.
    fn tick_every(&self, node: Addr) -> u64 {
        let drift = self.skew[node].1 as i128;
        (tick_us() as i128 * 1_000_000 / (1_000_000 + drift)).max(1) as u64
    }

    fn spawn_node(&mut self, t: u64, node: Addr, label: &str) {
        let transport = SimTransport {
            me: node,
            net: Arc::clone(&self.net),
        };
        let id = self.node_ids[node];
        let (offset_us, drift_ppm) = self.skew[node];
        let clock = SkewClock::new(self.clock.clone(), offset_us, drift_ppm);
        let mut rt = if node == 0 {
            NodeRuntime::bootstrap_with_clock(id, self.ring_cfg(), transport, clock)
        } else {
            NodeRuntime::join_with_clock(id, self.ring_cfg(), transport, 0, clock)
        };
        rt.set_replication(self.sc.replicas);
        if let Some(policy) = self.sc.redundancy {
            rt.set_redundancy(policy, self.sc.repair_threshold, self.sc.repair_budget_bps);
        }
        self.nodes[node] = Some(rt);
        self.mark(t, format!("{label} node {node}"));
        self.drain_outbox(t);
        self.schedule(
            t + self.tick_every(node) + self.tick_phase(node),
            Ev::Tick { node },
        );
    }

    fn dispatch(&mut self, t: u64, ev: Ev) {
        match ev {
            Ev::Boot { node } => self.spawn_node(t, node, "boot"),
            Ev::Tick { node } => {
                // A crashed node's tick chain simply ends; Restart
                // starts a fresh one.
                if self.nodes[node].is_none() {
                    return;
                }
                self.nodes[node].as_mut().unwrap().on_tick();
                self.stats.ticks += 1;
                self.drain_outbox(t);
                let every = self.tick_every(node);
                self.schedule(t + every, Ev::Tick { node });
            }
            Ev::Deliver {
                from,
                to,
                msg,
                trace,
            } => self.deliver(t, from, to, *msg, trace),
            Ev::Node { idx } => match self.node_events[idx].clone() {
                NodeEvent::Crash {
                    node, restart_us, ..
                } => {
                    assert_ne!(node, 0, "node 0 is the well-known seed and never fails");
                    self.nodes[node] = None;
                    self.net.lock().crashed[node] = true;
                    self.mark(t, format!("crash node {node}"));
                    if let Some(r) = restart_us {
                        self.schedule(r.max(t + 1), Ev::Restart { node });
                    }
                }
                NodeEvent::Isolate { node, heal_us, .. } => {
                    assert_ne!(node, 0, "node 0 is the well-known seed and never fails");
                    self.net.lock().group[node] = 1;
                    self.mark(t, format!("isolate node {node}"));
                    self.schedule(heal_us.max(t + 1), Ev::HealNode { node });
                }
                NodeEvent::Partition {
                    groups, heal_us, ..
                } => {
                    let mut members = Vec::new();
                    {
                        let mut net = self.net.lock();
                        for (gi, group) in groups.iter().enumerate() {
                            for &n in group {
                                assert!(n < self.sc.nodes, "partition member out of range");
                                net.group[n] = (gi + 2).min(u8::MAX as usize) as u8;
                                members.push(n);
                            }
                        }
                    }
                    if members.is_empty() {
                        return; // fully ungrouped by the shrinker
                    }
                    self.mark(t, format!("partition off {members:?}"));
                    self.schedule(heal_us.max(t + 1), Ev::HealPartition { nodes: members });
                }
                NodeEvent::Cut {
                    from, to, heal_us, ..
                } => {
                    self.net.lock().cuts.insert((from, to));
                    self.mark(t, format!("cut link {from}->{to}"));
                    self.schedule(heal_us.max(t + 1), Ev::HealCut { from, to });
                }
                NodeEvent::Gray { node, heal_us, .. } => {
                    assert_ne!(node, 0, "node 0 is the well-known seed and never fails");
                    self.net.lock().gray[node] = true;
                    self.mark(t, format!("gray node {node}"));
                    self.schedule(heal_us.max(t + 1), Ev::HealGray { node });
                }
            },
            Ev::Restart { node } => {
                self.net.lock().crashed[node] = false;
                self.spawn_node(t, node, "restart");
            }
            Ev::HealNode { node } => {
                self.net.lock().group[node] = 0;
                self.mark(t, format!("heal node {node}"));
            }
            Ev::HealPartition { nodes } => {
                {
                    let mut net = self.net.lock();
                    for &n in &nodes {
                        net.group[n] = 0;
                    }
                }
                self.mark(t, format!("heal partition {nodes:?}"));
            }
            Ev::HealCut { from, to } => {
                self.net.lock().cuts.remove(&(from, to));
                self.mark(t, format!("heal cut {from}->{to}"));
            }
            Ev::HealGray { node } => {
                self.net.lock().gray[node] = false;
                self.mark(t, format!("heal gray node {node}"));
            }
            Ev::ClientIssue { op } => {
                if !self.ops[op].acked {
                    self.client_attempt(t, op);
                }
            }
            Ev::ClientTimeout { op, attempt } => {
                if !self.ops[op].acked && self.ops[op].attempt == attempt {
                    self.client_attempt(t, op);
                }
            }
            Ev::Checkpoint => self.checkpoint(t),
        }
    }

    /// An in-flight message arrives (or is lost to a state change that
    /// happened after it was sent).
    fn deliver(&mut self, t: u64, from: Addr, to: Addr, msg: WireMsg, trace: TraceCtx) {
        if to == self.client_addr {
            self.stats.delivered += 1;
            self.client_on_msg(t, msg);
            return;
        }
        if self.nodes[to].is_none() {
            self.stats.lost_crashed += 1;
            return;
        }
        if from != self.client_addr {
            let (split, cut) = {
                let net = self.net.lock();
                (
                    net.group[from] != net.group[to],
                    net.cuts.contains(&(from, to)),
                )
            };
            if split {
                self.stats.lost_partition += 1;
                return;
            }
            if cut {
                // The cut started (or persisted) while this message was
                // in flight: it dies on the wire, silently.
                self.stats.lost_cut += 1;
                return;
            }
        }
        self.stats.delivered += 1;
        // Shutdown never travels inside the simulation, so the return
        // value (continue/exit) is always `true`.
        let _ = self.nodes[to].as_mut().unwrap().on_message(msg, trace);
        self.drain_outbox(t);
    }

    /// Assigns a fate and a landing time to everything nodes just sent.
    fn drain_outbox(&mut self, t: u64) {
        let msgs = std::mem::take(&mut self.net.lock().outbox);
        for (from, to, msg, trace) in msgs {
            if to == self.client_addr {
                // The client link is outside the faulted fabric.
                self.schedule(
                    t + BASE_DELAY_US,
                    Ev::Deliver {
                        from,
                        to,
                        msg: Box::new(msg),
                        trace,
                    },
                );
                continue;
            }
            // Targeted regression fault: lose the first JoinAck(s).
            if self.join_acks_dropped < self.sc.drop_first_join_acks
                && matches!(msg, WireMsg::Ring(RingMsg::JoinAck { .. }))
            {
                self.join_acks_dropped += 1;
                let n = self.join_acks_dropped;
                self.mark(t, format!("scripted drop join_ack #{n}"));
                self.stats.dropped += 1;
                continue;
            }
            let (cut, gray) = {
                let net = self.net.lock();
                (
                    net.cuts.contains(&(from, to)),
                    net.gray[from] || net.gray[to],
                )
            };
            if cut {
                // One-way silent cut: the send "succeeded" (no transport
                // error, so the sender's failure detector stays quiet)
                // but the message dies on the wire. Not a fault-plan
                // entry — the Cut node event is the shrinker's handle.
                self.stats.lost_cut += 1;
                continue;
            }
            let seq = self.msg_seq;
            self.msg_seq += 1;
            let what = msg.type_name();
            // A gray endpoint modulates the message before the global
            // fate draw: extra loss and extra latency, hashed per-seq so
            // the shrinker's force-deliver set neutralizes individual
            // gray drops without disturbing anything else.
            let gray_extra_us = if gray {
                let (dropped, extra) = gray_fate(
                    self.sc.seed,
                    seq,
                    self.sc.gray_drop,
                    self.sc.gray_extra_delay_us,
                );
                if dropped && !self.policy.force_deliver.contains(&seq) {
                    self.faults_drawn.push((seq, FateKind::GrayDrop, what));
                    self.stats.gray_dropped += 1;
                    self.mark(t, format!("fate seq={seq} gray-drop {what} {from}->{to}"));
                    continue;
                }
                extra
            } else {
                0
            };
            let fate = self.policy.fate(seq, t);
            let arrive = t + self.link_us(from, to) + gray_extra_us + fate.jitter_us;
            match fate.kind {
                FateKind::Deliver | FateKind::GrayDrop => {
                    // GrayDrop is unreachable here (handled above); it
                    // falls through to plain delivery for robustness.
                    self.schedule(
                        arrive,
                        Ev::Deliver {
                            from,
                            to,
                            msg: Box::new(msg),
                            trace,
                        },
                    );
                }
                FateKind::Drop => {
                    self.faults_drawn.push((seq, FateKind::Drop, what));
                    self.stats.dropped += 1;
                    self.mark(t, format!("fate seq={seq} drop {what} {from}->{to}"));
                }
                FateKind::Delay => {
                    self.faults_drawn.push((seq, FateKind::Delay, what));
                    self.stats.delayed += 1;
                    self.mark(t, format!("fate seq={seq} delay {what} {from}->{to}"));
                    self.schedule(
                        arrive + LONG_DELAY_US,
                        Ev::Deliver {
                            from,
                            to,
                            msg: Box::new(msg),
                            trace,
                        },
                    );
                }
                FateKind::Duplicate => {
                    self.faults_drawn.push((seq, FateKind::Duplicate, what));
                    self.stats.duplicated += 1;
                    self.mark(t, format!("fate seq={seq} duplicate {what} {from}->{to}"));
                    self.schedule(
                        arrive,
                        Ev::Deliver {
                            from,
                            to,
                            msg: Box::new(msg.clone()),
                            trace,
                        },
                    );
                    self.schedule(
                        arrive + 1 + fate.dup_extra_us,
                        Ev::Deliver {
                            from,
                            to,
                            msg: Box::new(msg),
                            trace,
                        },
                    );
                }
            }
        }
    }

    /// One-way propagation delay of the `from → to` link: a flat 1 ms
    /// LAN by default, the WAN topology's per-pair latency when this
    /// world sampled one.
    fn link_us(&self, from: Addr, to: Addr) -> u64 {
        match &self.wan {
            Some(top) => top.one_way_us(from, to).max(1),
            None => BASE_DELAY_US,
        }
    }

    // -----------------------------------------------------------------
    // The in-world client: issues the put workload against live entry
    // nodes, retries on timeout, and accepts an ack only when the full
    // replica chain reported `r` copies — mirroring what `ClusterOps`
    // callers assert in the live deployments.
    // -----------------------------------------------------------------

    /// Trace id of client put `op`: the small dense ids `1..=puts`, so
    /// replayed span trees read as "trace 1 = put 0". Node joins use
    /// their (huge) ring position as trace id and cannot collide.
    fn op_trace_id(op: usize) -> u64 {
        op as u64 + 1
    }

    fn client_attempt(&mut self, t: u64, op: usize) {
        let live: Vec<Addr> = self.live_nodes().map(|(a, _)| a).collect();
        self.ops[op].attempt += 1;
        let attempt = self.ops[op].attempt;
        let entry = live[(op + attempt as usize) % live.len()];
        let req_id = self.next_req;
        self.next_req += 1;
        self.ops[op].cur_req = Some(req_id);
        self.req_owner.insert(req_id, op);
        let msg = WireMsg::Request {
            req_id,
            from: self.client_addr,
            body: Request::Lookup {
                key: self.ops[op].key,
            },
        };
        self.mark(
            t,
            format!("client put {op} attempt {attempt} via node {entry}"),
        );
        self.schedule(
            t + BASE_DELAY_US,
            Ev::Deliver {
                from: self.client_addr,
                to: entry,
                msg: Box::new(msg),
                trace: TraceCtx::root(Self::op_trace_id(op)),
            },
        );
        self.schedule(t + OP_TIMEOUT_US, Ev::ClientTimeout { op, attempt });
    }

    fn client_on_msg(&mut self, t: u64, msg: WireMsg) {
        let WireMsg::Response { req_id, body } = msg else {
            return; // nodes only ever send responses to the client
        };
        let Some(&op) = self.req_owner.get(&req_id) else {
            return;
        };
        if self.ops[op].cur_req != Some(req_id) || self.ops[op].acked {
            return; // a stale attempt's response (e.g. after a timeout)
        }
        match body {
            Response::Owner { owner, .. } => {
                let put_req = self.next_req;
                self.next_req += 1;
                self.ops[op].cur_req = Some(put_req);
                self.req_owner.insert(put_req, op);
                let msg = WireMsg::Request {
                    req_id: put_req,
                    from: self.client_addr,
                    body: Request::Put {
                        key: self.ops[op].key,
                        // EC owners ignore the requested fanout — the
                        // policy's group size decides.
                        fanout: self.sc.required_acks() - 1,
                        stored: 0,
                        data: self.ops[op].data.clone(),
                    },
                };
                self.schedule(
                    t + BASE_DELAY_US,
                    Ev::Deliver {
                        from: self.client_addr,
                        to: owner.addr,
                        msg: Box::new(msg),
                        trace: TraceCtx::root(Self::op_trace_id(op)),
                    },
                );
            }
            Response::PutAck { replicas } => {
                // In EC mode the ack carries the fragment count; full
                // durability is the whole group, just as it is all `r`
                // copies under replication.
                if replicas >= self.sc.required_acks() {
                    self.ops[op].acked = true;
                    self.ops[op].cur_req = None;
                    self.stats.acked_puts += 1;
                    self.mark(t, format!("client put {op} acked replicas={replicas}"));
                } else {
                    // A truncated chain (crashed / isolated successors).
                    // Durability demands the full factor: retry after a
                    // backoff. The bump of `attempt` invalidates the
                    // pending timeout for this attempt.
                    self.ops[op].cur_req = None;
                    self.ops[op].attempt += 1;
                    self.mark(
                        t,
                        format!("client put {op} degraded replicas={replicas}, retrying"),
                    );
                    self.schedule(t + DEGRADED_RETRY_US, Ev::ClientIssue { op });
                }
            }
            _ => {}
        }
    }

    // -----------------------------------------------------------------
    // Heal-phase checkpoints
    // -----------------------------------------------------------------

    fn checkpoint(&mut self, t: u64) {
        self.stats.checkpoints += 1;
        match invariants::check_all(self) {
            Ok(()) => {
                self.clean_streak += 1;
                let streak = self.clean_streak;
                self.mark(t, format!("checkpoint ok ({streak}/{CONSECUTIVE_OK})"));
                if streak >= CONSECUTIVE_OK {
                    self.verdict = Some(true);
                    return;
                }
            }
            Err(v) => {
                self.clean_streak = 0;
                self.mark(t, format!("checkpoint violation: {v}"));
                self.last_violation = Some(v);
            }
        }
        if t + CHECK_EVERY_US <= self.sc.deadline_us {
            self.schedule(t + CHECK_EVERY_US, Ev::Checkpoint);
        } else {
            self.verdict = Some(false);
            if self.last_violation.is_none() {
                self.last_violation = Some("deadline reached with no clean checkpoint".into());
            }
        }
    }
}

/// The virtual tick period: the same constant the live runtimes use.
fn tick_us() -> u64 {
    TICK.as_micros() as u64
}
