//! The harness's own contract: byte-identical replay from a seed, and
//! the validation story from ISSUE — with the head-only probing bug
//! re-introduced, a short sweep must catch it and shrink the repro to a
//! handful of faults.

use d2_dst::{run_one, shrink, sweep, Overrides, RedundancyPolicy, Scenario, WorldRegime};
use d2_obs::trace::to_jsonl;

/// Same seed, same scenario — byte-identical trace and identical
/// outcome, twice in a row. This is the property everything else
/// (replay, shrinking, CI triage) rests on.
#[test]
fn same_seed_is_byte_identical() {
    let sc = Scenario::small(411);
    let a = run_one(&sc, &Overrides::default());
    let b = run_one(&sc, &Overrides::default());
    assert_eq!(a.ok, b.ok);
    assert_eq!(a.end_us, b.end_us);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.plan.len(), b.plan.len());
    assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace));
}

/// Different seeds draw different schedules (sanity against a constant
/// fate function).
#[test]
fn different_seeds_diverge() {
    let a = run_one(&Scenario::small(1), &Overrides::default());
    let b = run_one(&Scenario::small(2), &Overrides::default());
    assert_ne!(to_jsonl(&a.trace), to_jsonl(&b.trace));
}

/// The default fault mix converges on a spread of seeds: this is the
/// tier-1 smoke slice of the big sweeps in scripts/check.sh (64 seeds)
/// and scripts/dst.sh (1000 seeds).
#[test]
fn default_scenarios_converge() {
    let sc = Scenario::small(0);
    let results = sweep(&sc, 0, 8, 4);
    for r in &results {
        assert!(r.ok, "seed {} failed: {:?}", r.seed, r.violation);
        assert_eq!(r.acked_puts as usize, sc.puts, "seed {}", r.seed);
    }
}

/// Erasure-coded worlds replay byte-identically too: the fragment path
/// adds owner-side encode, gather, and repair state that the seed (via
/// the virtual clock's write generations) must fully determine.
#[test]
fn ec_same_seed_is_byte_identical() {
    let mut sc = Scenario::small(77);
    sc.redundancy = Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 });
    let a = run_one(&sc, &Overrides::default());
    let b = run_one(&sc, &Overrides::default());
    assert_eq!(a.ok, b.ok);
    assert_eq!(a.end_us, b.end_us);
    assert_eq!(a.stats, b.stats);
    assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace));
}

/// The default fault mix also converges with every node in (2, 4)
/// fragment mode: puts ack all four fragments, and each checkpoint
/// holds the reconstructability invariant instead of the replica-chain
/// one.
#[test]
fn ec_default_scenarios_converge() {
    let mut sc = Scenario::small(0);
    sc.redundancy = Some(RedundancyPolicy::ErasureCode { k: 2, n: 4 });
    let results = sweep(&sc, 0, 8, 4);
    for r in &results {
        assert!(r.ok, "seed {} failed: {:?}", r.seed, r.violation);
        assert_eq!(r.acked_puts as usize, sc.puts, "seed {}", r.seed);
    }
}

/// Byte-identical replay holds in every adversarial regime, not just
/// the classic one. Partitions, cuts, and gray windows mutate shared
/// network state mid-run; the WAN topology re-samples per scenario;
/// skewed clocks scale every node's tick cadence — all of it must
/// still be a pure function of the seed. One seed per regime keeps
/// the debug-mode cost at a few seconds.
#[test]
fn adversarial_regimes_replay_byte_identically() {
    for regime in [
        WorldRegime::Partition,
        WorldRegime::Gray,
        WorldRegime::Wan,
        WorldRegime::Skew,
        WorldRegime::Mixed,
    ] {
        let mut sc = Scenario::small(211);
        sc.regime = regime;
        let a = run_one(&sc, &Overrides::default());
        let b = run_one(&sc, &Overrides::default());
        assert_eq!(a.ok, b.ok, "{} flapped", regime.label());
        assert_eq!(a.end_us, b.end_us, "{}", regime.label());
        assert_eq!(a.stats, b.stats, "{}", regime.label());
        assert_eq!(a.plan, b.plan, "{}", regime.label());
        assert_eq!(
            to_jsonl(&a.trace),
            to_jsonl(&b.trace),
            "{} trace diverged across replays",
            regime.label()
        );
    }
}

/// Every regime's healthy small worlds converge on a short seed
/// spread — the tier-1 slice of check.sh's 64-seed mixed sweep and
/// dst.sh's per-regime 1000-seed sweeps.
#[test]
fn adversarial_regimes_converge() {
    for regime in [
        WorldRegime::Partition,
        WorldRegime::Gray,
        WorldRegime::Mixed,
    ] {
        let mut sc = Scenario::small(0);
        sc.regime = regime;
        for r in sweep(&sc, 0, 8, 4) {
            assert!(
                r.ok,
                "{} seed {} failed: {:?}",
                regime.label(),
                r.seed,
                r.violation
            );
        }
    }
}

/// Re-introduce PR 4's head-only successor-probing bug and assert the
/// explorer earns its keep: some seed in a small scan fails, and
/// shrinking reduces its fault plan to at most 10 entries (the
/// acceptance bound; in practice a single permanent crash survives).
#[test]
fn sweep_catches_head_only_probing_bug() {
    let mut sc = Scenario::small(0);
    sc.probe_head_only = true;
    let results = sweep(&sc, 0, 16, 4);
    let failing = results
        .iter()
        .find(|r| !r.ok)
        .expect("no seed in 0..16 tripped the head-only bug — harness lost its teeth");
    let mut fail_sc = sc.clone();
    fail_sc.seed = failing.seed;
    let min = shrink(&fail_sc, 200).expect("failing seed must still fail when re-run");
    assert!(
        !min.plan.is_empty(),
        "a wedge needs at least one fault to set up"
    );
    assert!(
        min.plan.len() <= 10,
        "shrunk plan has {} entries (want <= 10): {:#?}",
        min.plan.len(),
        min.plan
    );
    // The repro must name the violation so the report is actionable.
    assert!(min.violation.is_some());
}

/// The same seeds that fail under the bug knob pass without it — the
/// failures above are the bug's, not the harness's.
#[test]
fn head_only_failures_vanish_without_the_knob() {
    let mut bugged = Scenario::small(0);
    bugged.probe_head_only = true;
    let failing: Vec<u64> = sweep(&bugged, 0, 16, 4)
        .iter()
        .filter(|r| !r.ok)
        .map(|r| r.seed)
        .collect();
    assert!(!failing.is_empty());
    for seed in failing {
        let clean = run_one(&Scenario::small(seed), &Overrides::default());
        assert!(
            clean.ok,
            "seed {seed} fails even without the bug knob: {:?}",
            clean.violation
        );
    }
}
