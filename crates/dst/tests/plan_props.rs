//! Properties of the seeded fault-plan generator, across every world
//! regime. These run at the plan level only — no worlds are executed —
//! so hundreds of cases stay cheap in debug mode.
//!
//! The load-bearing guarantee is the *dark budget*: at no instant may
//! the set of nodes that are crashed, seceded into a partition group,
//! or gray exceed [`Scenario::failure_budget`] (`r - 1` replicated,
//! `n - k` erasure-coded). An acked put has all its copies on distinct
//! nodes, so a plan within the budget can never destroy every copy by
//! itself — any durability violation a sweep reports is the protocol's
//! fault, not the generator's. (Symmetric isolations do not count:
//! they evict no state and always heal.)

use d2_dst::{generate_node_events, NodeEvent, Scenario, WorldRegime};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// `[start, end)` windows during which a node is dark (crashed,
/// seceded, or gray). A permanent crash is open-ended.
fn dark_windows(events: &[NodeEvent]) -> Vec<(usize, u64, u64)> {
    let mut out = Vec::new();
    for ev in events {
        match ev {
            NodeEvent::Crash {
                node,
                at_us,
                restart_us,
            } => out.push((*node, *at_us, restart_us.unwrap_or(u64::MAX))),
            NodeEvent::Partition {
                groups,
                at_us,
                heal_us,
            } => {
                for member in groups.iter().flatten() {
                    out.push((*member, *at_us, *heal_us));
                }
            }
            NodeEvent::Gray {
                node,
                at_us,
                heal_us,
            } => out.push((*node, *at_us, *heal_us)),
            NodeEvent::Isolate { .. } | NodeEvent::Cut { .. } => {}
        }
    }
    out
}

/// Largest number of *distinct* nodes dark at any instant.
fn max_concurrent_dark(events: &[NodeEvent]) -> usize {
    let windows = dark_windows(events);
    let mut worst = 0;
    for &(_, t, _) in &windows {
        let dark: BTreeSet<usize> = windows
            .iter()
            .filter(|&&(_, s, e)| s <= t && t < e)
            .map(|&(n, _, _)| n)
            .collect();
        worst = worst.max(dark.len());
    }
    worst
}

/// Every node an event names, for the "node 0 is sacred" check.
fn named_nodes(ev: &NodeEvent) -> Vec<usize> {
    match ev {
        NodeEvent::Crash { node, .. }
        | NodeEvent::Isolate { node, .. }
        | NodeEvent::Gray { node, .. } => vec![*node],
        NodeEvent::Partition { groups, .. } => groups.iter().flatten().copied().collect(),
        NodeEvent::Cut { from, to, .. } => vec![*from, *to],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator's contract, for every regime at once: budget,
    /// node-0 safety, window bounds, and determinism.
    #[test]
    fn generated_plans_respect_the_contract(
        seed in 0u64..1_000_000,
        nodes in 4usize..14,
        replicas in 2u32..5,
    ) {
        for regime in WorldRegime::ALL {
            let sc = Scenario {
                seed,
                nodes,
                replicas,
                regime,
                ..Scenario::default()
            };
            let events = generate_node_events(&sc);

            // Dark budget: f < r at every instant, counting distinct
            // nodes (an aligned crash of a partition member is one
            // dark node, not two).
            prop_assert!(
                max_concurrent_dark(&events) <= sc.failure_budget(),
                "{}: dark budget exceeded (budget {}): {events:?}",
                regime.label(),
                sc.failure_budget(),
            );

            for ev in &events {
                // Node 0 is the join seed and the remerge anchor: it
                // is never crashed, isolated, grouped, grayed, or an
                // endpoint of a cut.
                prop_assert!(
                    !named_nodes(ev).contains(&0),
                    "{}: event names node 0: {ev:?}",
                    regime.label(),
                );
                // Every named node exists.
                prop_assert!(
                    named_nodes(ev).iter().all(|&n| n < nodes),
                    "{}: event names a node outside 0..{nodes}: {ev:?}",
                    regime.label(),
                );
                // Windows open before fault_end and close before it
                // too — the heal phase starts with no fault active.
                prop_assert!(ev.at_us() < sc.fault_end_us, "{ev:?}");
                if let Some(heal) = ev.heal_us() {
                    prop_assert!(ev.at_us() < heal, "empty window: {ev:?}");
                    prop_assert!(heal < sc.fault_end_us, "late heal: {ev:?}");
                }
                match ev {
                    NodeEvent::Crash { at_us, restart_us: Some(r), .. } => {
                        prop_assert!(at_us < r && *r < sc.fault_end_us, "{ev:?}");
                    }
                    NodeEvent::Partition { groups, .. } => {
                        // Groups are non-empty and disjoint.
                        let all: Vec<usize> =
                            groups.iter().flatten().copied().collect();
                        let uniq: BTreeSet<usize> = all.iter().copied().collect();
                        prop_assert!(groups.iter().all(|g| !g.is_empty()), "{ev:?}");
                        prop_assert_eq!(all.len(), uniq.len(), "overlapping groups");
                    }
                    NodeEvent::Cut { from, to, .. } => {
                        prop_assert!(from != to, "self-cut: {ev:?}");
                    }
                    _ => {}
                }
            }

            // Plans are sorted by fire time (the world replays them as
            // a schedule) and are a pure function of the scenario.
            prop_assert!(
                events.windows(2).all(|w| w[0].at_us() <= w[1].at_us()),
                "{}: plan out of order: {events:?}",
                regime.label(),
            );
            prop_assert_eq!(&events, &generate_node_events(&sc));
        }
    }

    /// Erasure-coded scenarios widen the budget to `n - k`, and the
    /// generator tracks it.
    #[test]
    fn ec_plans_use_the_ec_budget(seed in 0u64..1_000_000) {
        for regime in [WorldRegime::Partition, WorldRegime::Gray, WorldRegime::Mixed] {
            let mut sc = Scenario::ec(seed, 2, 4);
            sc.regime = regime;
            let events = generate_node_events(&sc);
            prop_assert!(
                max_concurrent_dark(&events) <= sc.failure_budget(),
                "{}: EC dark budget exceeded: {events:?}",
                regime.label(),
            );
        }
    }

    /// A scripted plan round-trips verbatim — regression scripts are
    /// not re-sorted, budget-clamped, or otherwise edited.
    #[test]
    fn scripted_plans_pass_through(at in 1_000_000u64..5_000_000) {
        let mut sc = Scenario::small(7);
        let script = vec![
            NodeEvent::Cut { from: 3, to: 1, at_us: at, heal_us: at + 500_000 },
            NodeEvent::Crash { node: 2, at_us: at / 2, restart_us: None },
        ];
        sc.node_events = Some(script.clone());
        prop_assert_eq!(generate_node_events(&sc), script);
    }
}
