//! PR 4's three live-cluster bugs, replayed as deterministic schedules.
//!
//! Each of these was originally found (and could only be reproduced) by
//! running real processes under fault injection for minutes at a time.
//! Here each is a scripted scenario that runs the same protocol code in
//! milliseconds, and will fail loudly if the corresponding fix ever
//! regresses:
//!
//! 1. *Dead-tail successor wedge* — a crashed node lingering deep in
//!    successor lists was never probed and never evicted, so the ring
//!    oscillated forever. Fixed by probing the whole list, not just the
//!    head; `probe_head_only` re-introduces the bug for validation.
//! 2. *Lost join ack* — a dropped `JoinAck` left the joiner waiting
//!    forever. Fixed with a join retry timer.
//! 3. *Join livelock* — concurrent joins under heavy message loss could
//!    chase moving ownership forever. Fixed with a forwarding hop
//!    budget that converts the chase into a retryable failure.

use d2_dst::{run_one, FaultProbs, NodeEvent, Overrides, RedundancyPolicy, RunOutcome, Scenario};
use d2_ring::messages::Addr;
use d2_types::Key;

/// A script-only scenario: no seed-drawn message faults, so the run
/// exercises exactly the scripted events.
fn scripted(seed: u64, events: Vec<NodeEvent>) -> Scenario {
    Scenario {
        seed,
        probs: FaultProbs {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
        },
        node_events: Some(events),
        ..Scenario::default()
    }
}

/// Bug 1: two adjacent nodes crash permanently, planting corpses at
/// every depth of their neighbours' successor lists (r = 3, so two
/// permanent failures is the protocol's worst tolerated case). With
/// full-list probing the ring must evict both and re-converge; under
/// `probe_head_only` this same script wedges.
#[test]
fn dead_tail_successors_are_evicted() {
    let events = vec![
        NodeEvent::Crash {
            node: 4,
            at_us: 5_000_000,
            restart_us: None,
        },
        NodeEvent::Crash {
            node: 5,
            at_us: 5_200_000,
            restart_us: None,
        },
    ];
    let out = run_one(&scripted(17, events.clone()), &Overrides::default());
    assert!(out.ok, "healthy probing wedged: {:?}", out.violation);

    // The same schedule under the re-introduced bug must wedge —
    // proving the test would have caught the original regression.
    let mut bugged = scripted(17, events);
    bugged.probe_head_only = true;
    let out = run_one(&bugged, &Overrides::default());
    assert!(!out.ok, "head-only probing should wedge on a dead tail");
}

/// Bug 2: the wire eats the first `JoinAck`. Without the join retry
/// timer the victim stays unjoined forever and the `check_joined`
/// invariant fails at every checkpoint; with it, the joiner re-sends
/// and the ring completes.
#[test]
fn lost_join_ack_is_retried() {
    let mut sc = scripted(23, Vec::new());
    sc.drop_first_join_acks = 1;
    let out = run_one(&sc, &Overrides::default());
    assert!(
        out.ok,
        "join never recovered from a lost ack: {:?}",
        out.violation
    );
    assert_eq!(out.stats.acked_puts as usize, sc.puts);
}

/// Bug 3: the join-storm livelock. Every node boots within a tick of
/// its neighbours (instead of the default 50 ms stagger the world
/// cannot express — so we approximate with heavy message loss during
/// the join phase) while one early joiner crashes and restarts
/// mid-storm, keeping ownership moving. The hop budget must turn the
/// chase into bounded retries that eventually land.
#[test]
fn join_storm_with_churn_settles() {
    let mut sc = scripted(
        31,
        vec![NodeEvent::Crash {
            node: 2,
            at_us: 1_000_000,
            restart_us: Some(3_000_000),
        }],
    );
    // A harsh wire while the ring forms: one in six messages lost.
    sc.probs = FaultProbs {
        drop: 0.15,
        duplicate: 0.02,
        delay: 0.02,
    };
    let out = run_one(&sc, &Overrides::default());
    assert!(out.ok, "join storm failed to settle: {:?}", out.violation);
}

/// Erasure-coded repair under a throttled budget: with `(k = 3, n = 6)`
/// fragments, crash `⌈(n − k) / 2⌉ = 2` adjacent fragment holders
/// permanently. Keys owned just counterclockwise of the victims lose
/// two of six fragments — below the default lazy-repair threshold
/// (`m = 5`) — so the owners must queue them and regenerate within the
/// configured byte budget, and the run must still converge with every
/// put reconstructable. Adjacent victims matter: they sit together in
/// the same placement groups regardless of how far successor-list
/// convergence had gotten when each put landed.
#[test]
fn ec_adjacent_holder_crashes_heal_within_repair_budget() {
    let mut sc = scripted(
        51,
        vec![
            NodeEvent::Crash {
                node: 4,
                at_us: 5_000_000,
                restart_us: None,
            },
            NodeEvent::Crash {
                node: 5,
                at_us: 5_200_000,
                restart_us: None,
            },
        ],
    );
    sc.redundancy = Some(RedundancyPolicy::ErasureCode { k: 3, n: 6 });
    // A deliberately small budget: repairs trickle over several token
    // refills instead of bursting in one round.
    sc.repair_budget_bps = 200;
    let out = run_one(&sc, &Overrides::default());
    assert!(
        out.ok,
        "EC world never re-converged after adjacent holder crashes: {:?}",
        out.violation
    );
    assert_eq!(out.stats.acked_puts as usize, sc.puts);
    assert!(
        out.metrics.counter("ec.repaired_fragments") > 0,
        "no key dropped below the repair threshold — the script lost its teeth"
    );
}

/// The ring owner of `key` at the end of a run: the live node whose id
/// is the smallest at or clockwise of the key (successor, wrapping).
fn owner_of(out: &RunOutcome, key: Key) -> Addr {
    out.end_nodes
        .iter()
        .filter(|n| n.id >= key)
        .min_by_key(|n| n.id)
        .or_else(|| out.end_nodes.iter().min_by_key(|n| n.id))
        .expect("run ended with no live nodes")
        .addr
}

/// PR 9's lazy-repair gap, pinned as a scripted schedule: a fragment
/// holder that crashes and restarts comes back wiped, and because its
/// keys still have `m = 5` of six fragments elsewhere, lazy repair
/// never refills it — the cluster converges with an *owner holding no
/// fragment of a key it owns*. The storage invariant deliberately
/// tolerates this (the key still reconstructs from any `k = 3`), so
/// only an end-state check can see it. If a future PR adds eager
/// rehoming on rejoin, this test should flip and be rewritten to pin
/// the new behavior.
#[test]
fn ec_restarted_owner_keeps_no_fragments_of_its_keys() {
    // Phase 1: the same seed without faults, to learn which node owns
    // which workload key (keys are seed-drawn; ring positions are
    // static, so ownership carries over to the faulted run).
    let mut clean = scripted(61, Vec::new());
    clean.redundancy = Some(RedundancyPolicy::ErasureCode { k: 3, n: 6 });
    let out = run_one(&clean, &Overrides::default());
    assert!(out.ok, "clean EC world failed: {:?}", out.violation);
    let (victim, key) = out
        .workload
        .iter()
        .filter(|(_, acked)| *acked)
        .map(|&(k, _)| (owner_of(&out, k), k))
        .find(|&(owner, _)| owner != 0)
        .expect("no acked key owned by a crashable node");

    // Phase 2: crash that owner after the workload lands, restart it
    // wiped, and let the world converge.
    let mut sc = scripted(
        61,
        vec![NodeEvent::Crash {
            node: victim,
            at_us: 5_000_000,
            restart_us: Some(6_500_000),
        }],
    );
    sc.redundancy = Some(RedundancyPolicy::ErasureCode { k: 3, n: 6 });
    let out = run_one(&sc, &Overrides::default());
    assert!(
        out.ok,
        "restart-wiped owner world failed: {:?}",
        out.violation
    );
    assert_eq!(
        owner_of(&out, key),
        victim,
        "ownership moved — the restarted node no longer owns the probe key"
    );

    // The gap: the owner holds nothing for its own key...
    let owner_state = out
        .end_nodes
        .iter()
        .find(|n| n.addr == victim)
        .expect("restarted node missing from end state");
    assert!(
        !owner_state.fragment_keys.contains(&key) && !owner_state.block_keys.contains(&key),
        "owner was refilled — lazy repair became eager; rewrite this pin"
    );
    // ...while the key stays reconstructable at exactly the lazy
    // threshold: five of six fragments, one short of full, and no
    // repair ever fired.
    let surviving = out
        .end_nodes
        .iter()
        .filter(|n| n.fragment_keys.contains(&key))
        .count();
    assert_eq!(
        surviving, 5,
        "expected the wiped owner to be the only missing holder"
    );
    assert_eq!(
        out.metrics.counter("ec.repaired_fragments"),
        0,
        "a repair fired above the threshold — lazy repair regressed to eager"
    );
}

/// The lost-ack script is fate-targeted, not probabilistic: exactly the
/// scripted number of `JoinAck`s disappear, nothing else. Two different
/// drop counts must still both converge (the retry path is idempotent).
#[test]
fn repeated_join_ack_loss_still_converges() {
    for drops in [2u32, 3] {
        let mut sc = scripted(29, Vec::new());
        sc.drop_first_join_acks = drops;
        let out = run_one(&sc, &Overrides::default());
        assert!(
            out.ok,
            "{drops} dropped join acks defeated the retry: {:?}",
            out.violation
        );
    }
}
