//! The adversarial world regimes earn their keep: each one catches a
//! seeded bug (or exercises a fault shape) that the classic
//! crash/isolate worlds cannot, and all of them still converge when
//! the protocol is healthy.
//!
//! The load-bearing pair is `ack_on_send` + one-way cuts. The node's
//! failure detector is send-error-driven: a symmetric partition or a
//! crash makes `send` fail fast, so the forwarding node notices and
//! re-routes. A one-way silent cut produces *no* send error — the
//! message just dies — which is exactly the loss mode a
//! fire-and-forget replication chain cannot see. Crash/isolate sweeps
//! stay green under the bug; asymmetric-partition sweeps do not.
//!
//! The split-ring demo needs *default-size* worlds. At `n = 6` a
//! seceded pair sits in half the ring's successor lists, so after the
//! heal some majority node always re-probes it and gossip re-merges
//! the rings even without the seed anchor; at `n = 10` eviction
//! reaches a corpse-free fixpoint first and the split sticks. The
//! failing seeds below were found by sweeping `--world partition
//! --bug-no-anchor` over seeds 0..16 (2, 3, 7, 10 fail) and are
//! pinned rather than re-scanned to keep the suite's debug-mode cost
//! bounded.

use d2_dst::{run_one, NodeEvent, Overrides, PlanEntry, Scenario, WorldRegime};

/// Seeds scanned when a test needs the regime to produce at least one
/// failure. Small worlds are cheap, but keep this bounded so the tier-1
/// suite stays fast.
const SCAN: u64 = 48;

fn small_in(seed: u64, regime: WorldRegime) -> Scenario {
    let mut sc = Scenario::small(seed);
    sc.regime = regime;
    sc
}

/// The asymmetric-partition regime catches the ack-on-send durability
/// bug — an acked put whose copies silently died on a cut link — and
/// the classic regime does NOT catch it on those same seeds: the bug
/// needs loss without a send error, and classic worlds have none.
#[test]
fn partition_regime_catches_ack_on_send_bug() {
    let mut bugged = small_in(0, WorldRegime::Partition);
    bugged.ack_on_send = true;
    let results = d2_dst::sweep(&bugged, 0, SCAN, 4);
    let failing: Vec<_> = results.iter().filter(|r| !r.ok).collect();
    assert!(
        !failing.is_empty(),
        "no seed in 0..{SCAN} tripped ack-on-send under partitions"
    );
    // The violation is a durability lie, not a ring wedge.
    assert!(
        failing.iter().any(|r| {
            r.violation
                .as_deref()
                .is_some_and(|v| v.contains("acked put"))
        }),
        "expected an acked-put durability violation, got {:?}",
        failing[0].violation
    );
    // The same bug in the same seeds' classic worlds goes unseen.
    let mut classic = small_in(0, WorldRegime::Classic);
    classic.ack_on_send = true;
    for r in d2_dst::sweep(&classic, 0, SCAN, 4) {
        assert!(
            r.ok,
            "classic world caught ack-on-send at seed {} ({:?}) — \
             the regime comparison in DESIGN.md §17 needs updating",
            r.seed, r.violation
        );
    }
}

/// Without the seed-anchored remerge, a healed netsplit leaves two
/// stable rings forever — and only multi-node partitions expose that:
/// classic single-node isolation always rejoins through the probe
/// path, and small worlds re-merge through stale gossip (see the
/// module doc). Seed 2 is one of the pinned default-size failures.
#[test]
fn partition_regime_catches_missing_anchor() {
    let mut bugged = Scenario::in_regime(2, WorldRegime::Partition);
    bugged.no_anchor = true;
    let out = run_one(&bugged, &Overrides::default());
    assert!(!out.ok, "pinned split-ring seed 2 converged unexpectedly");
    assert!(
        out.violation
            .as_deref()
            .is_some_and(|v| v.contains("split ring")),
        "expected a split-ring violation, got {:?}",
        out.violation
    );

    // With the anchor on (the default), the same world heals.
    let healed = run_one(
        &Scenario::in_regime(2, WorldRegime::Partition),
        &Overrides::default(),
    );
    assert!(
        healed.ok,
        "seed 2 fails even with the anchor: {:?}",
        healed.violation
    );

    // The classic world never needs the anchor: no multi-node splits.
    let mut classic = Scenario::in_regime(2, WorldRegime::Classic);
    classic.no_anchor = true;
    let out = run_one(&classic, &Overrides::default());
    assert!(
        out.ok,
        "classic world failed without the anchor: {:?}",
        out.violation
    );
}

/// A scripted three-way netsplit across the fault window heals: the
/// anchor rounds pull both minority groups back onto node 0's ring and
/// every invariant re-converges.
#[test]
fn scripted_three_way_partition_heals() {
    let mut sc = Scenario::small(9);
    sc.node_events = Some(vec![NodeEvent::Partition {
        groups: vec![vec![1, 2], vec![4]],
        at_us: 2_500_000,
        heal_us: 5_500_000,
    }]);
    let out = run_one(&sc, &Overrides::default());
    assert!(
        out.ok,
        "split-then-heal did not converge: {:?}",
        out.violation
    );
    assert!(
        out.stats.lost_partition > 0,
        "the split never actually ate a message"
    );
}

/// A scripted one-way cut converges: traffic dies silently in one
/// direction, retries and the reverse direction carry the cluster
/// through, and the cut is visible in the run stats.
#[test]
fn scripted_one_way_cut_converges() {
    let mut sc = Scenario::small(5);
    sc.node_events = Some(vec![NodeEvent::Cut {
        from: 2,
        to: 3,
        at_us: 2_200_000,
        heal_us: 5_000_000,
    }]);
    let out = run_one(&sc, &Overrides::default());
    assert!(out.ok, "one-way cut did not converge: {:?}", out.violation);
    assert!(out.stats.lost_cut > 0, "the cut never ate a message");
}

/// A scripted gray window converges and actually bites: messages
/// touching the gray node get dropped by its loss profile.
#[test]
fn scripted_gray_window_converges() {
    let mut sc = Scenario::small(3);
    sc.node_events = Some(vec![NodeEvent::Gray {
        node: 2,
        at_us: 2_200_000,
        heal_us: 5_200_000,
    }]);
    let out = run_one(&sc, &Overrides::default());
    assert!(out.ok, "gray window did not converge: {:?}", out.violation);
    assert!(
        out.stats.gray_dropped > 0,
        "the gray window never dropped a message"
    );
}

/// The shrinker's partition handles actually steer the world:
/// un-grouping every member makes the netsplit a no-op (nothing is
/// lost to it), and a trimmed heal shows up in the effective plan the
/// run reports. The full bisection loop in `shrink` is built on
/// exactly these two overrides.
#[test]
fn partition_overrides_steer_the_world() {
    let script = NodeEvent::Partition {
        groups: vec![vec![1, 2], vec![4]],
        at_us: 2_500_000,
        heal_us: 5_500_000,
    };
    let mut sc = Scenario::small(9);
    sc.node_events = Some(vec![script]);

    // Un-group everyone: the split never bites.
    let mut ungrouped = Overrides::default();
    ungrouped.ungroup.extend([(0, 1), (0, 2), (0, 4)]);
    let out = run_one(&sc, &ungrouped);
    assert!(out.ok);
    assert_eq!(
        out.stats.lost_partition, 0,
        "an emptied partition still ate messages"
    );

    // Trim the heal: the effective plan reports the trimmed window.
    let mut trimmed = Overrides::default();
    trimmed.trim_heal.insert(0, 2_800_000);
    let out = run_one(&sc, &trimmed);
    assert!(out.ok);
    let heal = out
        .plan
        .iter()
        .find_map(|e| match e {
            PlanEntry::Node {
                event: NodeEvent::Partition { heal_us, .. },
                ..
            } => Some(*heal_us),
            _ => None,
        })
        .expect("partition missing from the effective plan");
    assert_eq!(heal, 2_800_000, "trimmed heal not reflected in the plan");
}

/// End-to-end shrink of a pinned split-ring failure: the minimized
/// repro still fails, names a partition, and has bisected both the
/// membership and the heal window down. Ignored by default — a
/// default-size world costs ~15 s per failing run in debug mode and
/// the shrink does ~30 runs; run with
/// `cargo test --release -p d2-dst --test worlds -- --ignored`.
#[test]
#[ignore = "~30 default-size world runs; run under --release"]
fn shrink_bisects_partition_membership_and_heal() {
    let mut sc = Scenario::in_regime(2, WorldRegime::Partition);
    sc.no_anchor = true;
    let min = d2_dst::shrink(&sc, 300).expect("pinned seed 2 must fail");
    assert!(min.violation.is_some());
    let (members, window_us) = min
        .plan
        .iter()
        .find_map(|e| match e {
            PlanEntry::Node {
                event:
                    NodeEvent::Partition {
                        groups,
                        at_us,
                        heal_us,
                    },
                ..
            } => Some((groups.iter().flatten().count(), heal_us - at_us)),
            _ => None,
        })
        .expect("shrunk plan lost the partition");
    assert!(
        members <= 2,
        "membership not bisected: {members} members remain"
    );
    assert!(
        window_us <= 500_000,
        "heal window not trimmed: {window_us} µs remain"
    );
}

/// WAN and skew worlds stay green across a seed spread: the protocol's
/// timeouts tolerate ~45 ms one-way links and tens of milliseconds of
/// clock offset with tens of thousands of ppm drift.
#[test]
fn wan_and_skew_regimes_converge() {
    for regime in [WorldRegime::Wan, WorldRegime::Skew] {
        let sc = small_in(0, regime);
        for r in d2_dst::sweep(&sc, 0, 8, 4) {
            assert!(
                r.ok,
                "{} seed {} failed: {:?}",
                regime.label(),
                r.seed,
                r.violation
            );
        }
    }
}
