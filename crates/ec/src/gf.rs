//! GF(2^8) arithmetic: the field behind the Reed–Solomon coder.
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo the primitive polynomial `x^8 + x^4 + x^3 +
//! x^2 + 1` (0x11d). Multiplication and inversion go through log/exp
//! tables built at compile time, so the hot encode loop is two table
//! reads and an add — no branching on the field internals.

/// The primitive polynomial defining the field (0x11d).
const POLY: usize = 0x11d;

/// Builds the log and (doubled) exp tables at compile time.
///
/// `EXP` is 512 entries so `EXP[log a + log b]` never needs a modular
/// reduction: the largest reachable index is `254 + 254 = 508`.
const fn build_tables() -> ([u8; 256], [u8; 512]) {
    let mut log = [0u8; 256];
    let mut exp = [0u8; 512];
    let mut x: usize = 1;
    let mut i: usize = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        log[x] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Indices 510 and 511 are unreachable (log values cap at 254), but
    // the table is total so lookups can never read uninitialized data.
    exp[510] = exp[0];
    exp[511] = exp[1];
    (log, exp)
}

const TABLES: ([u8; 256], [u8; 512]) = build_tables();
/// `LOG[a]` = discrete log of `a` base the generator (undefined at 0).
pub const LOG: [u8; 256] = TABLES.0;
/// `EXP[i]` = generator to the `i`-th power, doubled to skip reduction.
pub const EXP: [u8; 512] = TABLES.1;

/// Field addition (== subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via the log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse. `a` must be non-zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    debug_assert!(a != 0, "0 has no inverse in GF(2^8)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Field division: `a / b`. `b` must be non-zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    debug_assert!(b != 0, "division by zero in GF(2^8)");
    if a == 0 {
        0
    } else {
        EXP[255 + LOG[a as usize] as usize - LOG[b as usize] as usize]
    }
}

/// `base` raised to the `e`-th power.
#[inline]
pub fn pow(base: u8, e: usize) -> u8 {
    if e == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let l = (LOG[base as usize] as usize * e) % 255;
    EXP[l]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse_maps() {
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply reduced mod POLY, checked exhaustively on
        // a sample grid plus the axioms below.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut acc: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY as u16;
                }
                b >>= 1;
            }
            acc as u8
        }
        for a in 0..=255u16 {
            for b in (0..=255u16).step_by(7) {
                assert_eq!(mul(a as u8, b as u8), slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn pow_agrees_with_repeated_mul() {
        for base in [0u8, 1, 2, 3, 29, 142, 255] {
            let mut acc = 1u8;
            for e in 0..20 {
                assert_eq!(pow(base, e), acc, "base {base} e {e}");
                acc = mul(acc, base);
            }
        }
    }
}
