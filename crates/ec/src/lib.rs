//! D2-EC: the erasure-coded redundancy backend.
//!
//! The paper buys durability with whole-block replication — `r` copies
//! on consecutive successors — which multiplies both storage and repair
//! bandwidth by `r`. This crate provides the alternative: a pure-std
//! **systematic Reed–Solomon coder over GF(2^8)** ([`Codec`]) that
//! encodes a block into `n` fragments of `ceil(len / k)` bytes such
//! that *any* `k` of them reconstruct the block, and the
//! [`RedundancyPolicy`] abstraction that lets the rest of the system
//! choose between replication and erasure coding without knowing which
//! one is in effect.
//!
//! Design points:
//!
//! - **Systematic**: fragments `0..k` are the data itself, split into
//!   `k` shards. A reader that can reach the first `k` holders copies
//!   bytes without any field arithmetic; the decoder detects this case.
//! - **Any-k decodability by construction**: the encode matrix is a
//!   Vandermonde matrix (distinct evaluation points, so every `k × k`
//!   row submatrix is invertible) post-multiplied by the inverse of its
//!   top square, which makes the top `k` rows the identity without
//!   disturbing the any-k property.
//! - **Self-verifying fragments**: every [`Fragment`] carries its index,
//!   a generation number, and a checksum over both plus the payload.
//!   Decoding a corrupted or cross-generation fragment set returns a
//!   typed [`EcError`] — it never panics and never returns wrong bytes
//!   silently.
//!
//! No unsafe code, no dependencies beyond `serde` (for policy configs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf;

use serde::{Deserialize, Serialize};

/// How a block's durability is bought: whole copies or fragments.
///
/// This is the knob the cluster configuration exposes; everything else
/// (placement group size, minimum live holders for a read, stored bytes
/// per holder, repair thresholds) derives from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedundancyPolicy {
    /// Store `r` full copies on `r` consecutive successors (the
    /// paper's scheme).
    Replicate {
        /// Number of whole-block copies.
        r: usize,
    },
    /// Store `n` Reed–Solomon fragments on `n` consecutive successors;
    /// any `k` reconstruct the block.
    ErasureCode {
        /// Data fragments needed to reconstruct.
        k: usize,
        /// Total fragments stored.
        n: usize,
    },
}

impl RedundancyPolicy {
    /// Number of consecutive successors a block (or its fragments)
    /// occupies.
    pub fn group_size(&self) -> usize {
        match *self {
            RedundancyPolicy::Replicate { r } => r,
            RedundancyPolicy::ErasureCode { n, .. } => n,
        }
    }

    /// Minimum live holders needed to read a block.
    pub fn min_fragments(&self) -> usize {
        match *self {
            RedundancyPolicy::Replicate { .. } => 1,
            RedundancyPolicy::ErasureCode { k, .. } => k,
        }
    }

    /// Bytes stored *per holder* for a block of `len` bytes.
    pub fn stored_len(&self, len: u64) -> u64 {
        match *self {
            RedundancyPolicy::Replicate { .. } => len,
            RedundancyPolicy::ErasureCode { k, .. } => len.div_ceil(k as u64),
        }
    }

    /// Total stored bytes across the group over the logical bytes:
    /// `r` for replication, `n / k` for erasure coding.
    pub fn storage_factor(&self) -> f64 {
        match *self {
            RedundancyPolicy::Replicate { r } => r as f64,
            RedundancyPolicy::ErasureCode { k, n } => n as f64 / k as f64,
        }
    }

    /// True for the erasure-coded variant.
    pub fn is_erasure(&self) -> bool {
        matches!(self, RedundancyPolicy::ErasureCode { .. })
    }

    /// The default lazy-repair threshold `m`: regenerate only once the
    /// number of surviving fragments drops below `m`. Sits halfway into
    /// the parity margin (`k + ceil((n - k) / 2)`, clamped to
    /// `[k, n - 1]`), so a single lost fragment does not trigger a
    /// repair storm but reconstructability never gets close to the
    /// cliff. Replication repairs eagerly (`m = r`, i.e. any loss).
    pub fn default_repair_threshold(&self) -> usize {
        match *self {
            RedundancyPolicy::Replicate { r } => r,
            RedundancyPolicy::ErasureCode { k, n } => (k + (n - k).div_ceil(2)).clamp(k, n - 1),
        }
    }

    /// Checks the parameters are usable (`r >= 1`; `1 <= k <= n <= 255`).
    pub fn validate(&self) -> Result<(), EcError> {
        match *self {
            RedundancyPolicy::Replicate { r } if r >= 1 => Ok(()),
            RedundancyPolicy::ErasureCode { k, n } if k >= 1 && k <= n && n <= 255 => Ok(()),
            RedundancyPolicy::Replicate { r } => Err(EcError::BadParams { k: r, n: r }),
            RedundancyPolicy::ErasureCode { k, n } => Err(EcError::BadParams { k, n }),
        }
    }

    /// Short human-readable label (`r=3`, `ec(4,8)`): used by the
    /// redundancy ablation and log lines.
    pub fn label(&self) -> String {
        match *self {
            RedundancyPolicy::Replicate { r } => format!("r={r}"),
            RedundancyPolicy::ErasureCode { k, n } => format!("ec({k},{n})"),
        }
    }
}

/// Everything that can go wrong encoding or decoding fragments.
///
/// Decoding never panics: malformed input maps to one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcError {
    /// Unusable `(k, n)` parameters.
    BadParams {
        /// Offending `k`.
        k: usize,
        /// Offending `n`.
        n: usize,
    },
    /// Fewer than `k` usable fragments were supplied.
    NotEnoughFragments {
        /// Distinct, verified fragments available.
        have: usize,
        /// Fragments required (`k`).
        need: usize,
    },
    /// A fragment's checksum does not match its contents.
    Corrupt {
        /// Index of the offending fragment.
        index: u8,
    },
    /// Fragments from different generations were mixed.
    GenerationMismatch {
        /// Generation of the first fragment seen.
        expected: u64,
        /// The disagreeing generation.
        found: u64,
    },
    /// A fragment's index is outside `0..n`.
    BadIndex {
        /// The out-of-range index.
        index: u8,
    },
    /// A fragment's payload length disagrees with the block length.
    LengthMismatch {
        /// Index of the offending fragment.
        index: u8,
    },
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EcError::BadParams { k, n } => write!(f, "unusable erasure parameters k={k} n={n}"),
            EcError::NotEnoughFragments { have, need } => {
                write!(f, "not enough fragments: have {have}, need {need}")
            }
            EcError::Corrupt { index } => write!(f, "fragment {index} failed its checksum"),
            EcError::GenerationMismatch { expected, found } => {
                write!(
                    f,
                    "fragment generation mismatch: expected {expected}, found {found}"
                )
            }
            EcError::BadIndex { index } => write!(f, "fragment index {index} out of range"),
            EcError::LengthMismatch { index } => {
                write!(f, "fragment {index} has the wrong payload length")
            }
        }
    }
}

impl std::error::Error for EcError {}

/// One erasure-coded fragment of a block.
///
/// `check` is computed by [`Codec::encode`] (and by [`Fragment::new`])
/// over the index, generation, and payload; [`Fragment::verify`]
/// recomputes it, which is how the decoder rejects bit rot and stale
/// writes instead of producing garbage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Position in the code word (`0..n`; `0..k` are systematic).
    pub index: u8,
    /// Write generation: fragments of different generations of the same
    /// key never mix.
    pub generation: u64,
    /// The fragment payload (`ceil(len / k)` bytes).
    pub data: Vec<u8>,
    /// FNV-1a checksum over index, generation, and payload.
    pub check: u64,
}

impl Fragment {
    /// Builds a fragment, computing its checksum.
    pub fn new(index: u8, generation: u64, data: Vec<u8>) -> Self {
        let check = Self::checksum(index, generation, &data);
        Fragment {
            index,
            generation,
            data,
            check,
        }
    }

    /// Recomputes the checksum and compares it to the stored one.
    pub fn verify(&self) -> bool {
        Self::checksum(self.index, self.generation, &self.data) == self.check
    }

    /// FNV-1a 64-bit over the identifying header and the payload.
    fn checksum(index: u8, generation: u64, data: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut step = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        step(index);
        for b in generation.to_le_bytes() {
            step(b);
        }
        for &b in data {
            step(b);
        }
        h
    }
}

/// A systematic `(k, n)` Reed–Solomon coder over GF(2^8).
///
/// Construction precomputes the `n × k` encode matrix; encode and
/// decode are then straight-line table arithmetic. `k = n` degenerates
/// to plain striping (no parity), which the policy layer never asks
/// for but the math permits.
#[derive(Clone, Debug)]
pub struct Codec {
    k: usize,
    n: usize,
    /// `n × k` encode matrix; top `k` rows are the identity.
    matrix: Vec<Vec<u8>>,
}

impl Codec {
    /// Builds a coder for `(k, n)`. Fails on unusable parameters.
    pub fn new(k: usize, n: usize) -> Result<Self, EcError> {
        RedundancyPolicy::ErasureCode { k, n }.validate()?;
        // Vandermonde rows over distinct points 0..n: any k of them are
        // linearly independent. Post-multiplying by the inverse of the
        // top square makes the code systematic while preserving that.
        let vander: Vec<Vec<u8>> = (0..n)
            .map(|i| (0..k).map(|j| gf::pow(i as u8, j)).collect())
            .collect();
        let top_inv = invert(vander[..k].to_vec())
            .expect("a Vandermonde top square over distinct points is invertible");
        let matrix = (0..n)
            .map(|i| {
                (0..k)
                    .map(|j| {
                        let mut acc = 0u8;
                        for (t, inv_row) in top_inv.iter().enumerate() {
                            acc = gf::add(acc, gf::mul(vander[i][t], inv_row[j]));
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(Codec { k, n, matrix })
    }

    /// Builds the coder a policy calls for (`None` for replication).
    pub fn for_policy(policy: RedundancyPolicy) -> Option<Codec> {
        match policy {
            RedundancyPolicy::Replicate { .. } => None,
            RedundancyPolicy::ErasureCode { k, n } => {
                Some(Codec::new(k, n).expect("policy validated before the codec is built"))
            }
        }
    }

    /// Data fragments needed to reconstruct.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total fragments produced.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Payload bytes per fragment for a block of `len` bytes.
    pub fn fragment_len(&self, len: usize) -> usize {
        len.div_ceil(self.k)
    }

    /// Encodes `data` into `n` self-verifying fragments.
    ///
    /// Fragments `0..k` are the data shards (zero-padded at the tail);
    /// `k..n` are parity. The original length is *not* stored in the
    /// fragments — the caller keeps it and passes it to [`decode`].
    ///
    /// [`decode`]: Codec::decode
    pub fn encode(&self, data: &[u8], generation: u64) -> Vec<Fragment> {
        let flen = self.fragment_len(data.len());
        let shard = |j: usize, b: usize| -> u8 {
            let pos = j * flen + b;
            if pos < data.len() {
                data[pos]
            } else {
                0
            }
        };
        (0..self.n)
            .map(|i| {
                let mut out = vec![0u8; flen];
                if i < self.k {
                    for (b, o) in out.iter_mut().enumerate() {
                        *o = shard(i, b);
                    }
                } else {
                    for j in 0..self.k {
                        let c = self.matrix[i][j];
                        if c == 0 {
                            continue;
                        }
                        for (b, o) in out.iter_mut().enumerate() {
                            *o = gf::add(*o, gf::mul(c, shard(j, b)));
                        }
                    }
                }
                Fragment::new(i as u8, generation, out)
            })
            .collect()
    }

    /// Reconstructs the original `len`-byte block from any `k` usable
    /// fragments.
    ///
    /// Every supplied fragment is checksum-verified and checked for a
    /// consistent generation before any arithmetic; duplicates by index
    /// are ignored. Returns a typed [`EcError`] on any defect — this
    /// function never panics on untrusted input.
    pub fn decode(&self, fragments: &[Fragment], len: usize) -> Result<Vec<u8>, EcError> {
        let flen = self.fragment_len(len);
        let mut chosen: Vec<&Fragment> = Vec::with_capacity(self.k);
        let mut seen = [false; 256];
        let mut generation: Option<u64> = None;
        for f in fragments {
            if f.index as usize >= self.n {
                return Err(EcError::BadIndex { index: f.index });
            }
            if !f.verify() {
                return Err(EcError::Corrupt { index: f.index });
            }
            match generation {
                None => generation = Some(f.generation),
                Some(g) if g != f.generation => {
                    return Err(EcError::GenerationMismatch {
                        expected: g,
                        found: f.generation,
                    })
                }
                Some(_) => {}
            }
            if f.data.len() != flen {
                return Err(EcError::LengthMismatch { index: f.index });
            }
            if !seen[f.index as usize] {
                seen[f.index as usize] = true;
                if chosen.len() < self.k {
                    chosen.push(f);
                }
            }
        }
        if chosen.len() < self.k {
            return Err(EcError::NotEnoughFragments {
                have: chosen.len(),
                need: self.k,
            });
        }
        chosen.sort_by_key(|f| f.index);
        let mut out = vec![0u8; self.k * flen];
        if chosen
            .iter()
            .enumerate()
            .all(|(j, f)| f.index as usize == j)
        {
            // Fast path: the systematic prefix survived intact.
            for (j, f) in chosen.iter().enumerate() {
                out[j * flen..(j + 1) * flen].copy_from_slice(&f.data);
            }
        } else {
            let sub: Vec<Vec<u8>> = chosen
                .iter()
                .map(|f| self.matrix[f.index as usize].clone())
                .collect();
            let inv = invert(sub).ok_or(EcError::BadParams {
                k: self.k,
                n: self.n,
            })?;
            for (j, row) in inv.iter().enumerate() {
                let dst = &mut out[j * flen..(j + 1) * flen];
                for (c, f) in row.iter().zip(chosen.iter()) {
                    if *c == 0 {
                        continue;
                    }
                    for (o, &s) in dst.iter_mut().zip(f.data.iter()) {
                        *o = gf::add(*o, gf::mul(*c, s));
                    }
                }
            }
        }
        out.truncate(len);
        Ok(out)
    }
}

/// Inverts a square matrix over GF(2^8) by Gauss–Jordan elimination.
/// Returns `None` for a singular matrix.
fn invert(mut m: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let k = m.len();
    let mut inv: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..k).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..k {
        let pivot = (col..k).find(|&r| m[r][col] != 0)?;
        m.swap(col, pivot);
        inv.swap(col, pivot);
        let p = gf::inv(m[col][col]);
        for j in 0..k {
            m[col][j] = gf::mul(m[col][j], p);
            inv[col][j] = gf::mul(inv[col][j], p);
        }
        for r in 0..k {
            if r == col || m[r][col] == 0 {
                continue;
            }
            let f = m[r][col];
            for j in 0..k {
                m[r][j] = gf::add(m[r][j], gf::mul(f, m[col][j]));
                inv[r][j] = gf::add(inv[r][j], gf::mul(f, inv[col][j]));
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_derivations() {
        let rep = RedundancyPolicy::Replicate { r: 3 };
        assert_eq!(rep.group_size(), 3);
        assert_eq!(rep.min_fragments(), 1);
        assert_eq!(rep.stored_len(8192), 8192);
        assert_eq!(rep.storage_factor(), 3.0);
        assert_eq!(rep.default_repair_threshold(), 3);
        assert!(!rep.is_erasure());
        assert_eq!(rep.label(), "r=3");

        let ec = RedundancyPolicy::ErasureCode { k: 4, n: 8 };
        assert_eq!(ec.group_size(), 8);
        assert_eq!(ec.min_fragments(), 4);
        assert_eq!(ec.stored_len(8192), 2048);
        assert_eq!(ec.stored_len(8193), 2049);
        assert_eq!(ec.storage_factor(), 2.0);
        assert_eq!(ec.default_repair_threshold(), 6);
        assert!(ec.is_erasure());
        assert_eq!(ec.label(), "ec(4,8)");

        assert_eq!(
            RedundancyPolicy::ErasureCode { k: 2, n: 4 }.default_repair_threshold(),
            3
        );
        assert_eq!(
            RedundancyPolicy::ErasureCode { k: 8, n: 12 }.default_repair_threshold(),
            10
        );
        // k = n leaves no parity margin: the clamp keeps m = k... n-1 < k
        // is impossible, so the threshold pins to k.
        assert_eq!(
            RedundancyPolicy::ErasureCode { k: 3, n: 4 }.default_repair_threshold(),
            3
        );
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(RedundancyPolicy::Replicate { r: 0 }.validate().is_err());
        assert!(RedundancyPolicy::ErasureCode { k: 0, n: 4 }
            .validate()
            .is_err());
        assert!(RedundancyPolicy::ErasureCode { k: 5, n: 4 }
            .validate()
            .is_err());
        assert!(RedundancyPolicy::ErasureCode { k: 2, n: 999 }
            .validate()
            .is_err());
        assert!(RedundancyPolicy::ErasureCode { k: 2, n: 4 }
            .validate()
            .is_ok());
        assert!(Codec::new(0, 4).is_err());
    }

    #[test]
    fn systematic_prefix_is_the_data() {
        let c = Codec::new(3, 5).unwrap();
        let data: Vec<u8> = (0..30).collect();
        let frags = c.encode(&data, 7);
        let flen = c.fragment_len(data.len());
        for (i, f) in frags.iter().enumerate().take(3) {
            assert_eq!(&f.data[..], &data[i * flen..(i + 1) * flen]);
            assert_eq!(f.generation, 7);
            assert!(f.verify());
        }
        assert_eq!(frags.len(), 5);
    }

    #[test]
    fn decodes_from_every_k_subset() {
        let c = Codec::new(3, 6).unwrap();
        let data: Vec<u8> = (0..=255u8).cycle().take(100).collect();
        let frags = c.encode(&data, 1);
        for a in 0..6 {
            for b in (a + 1)..6 {
                for d in (b + 1)..6 {
                    let subset = vec![frags[a].clone(), frags[d].clone(), frags[b].clone()];
                    assert_eq!(
                        c.decode(&subset, data.len()).unwrap(),
                        data,
                        "subset {a},{b},{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let c = Codec::new(2, 4).unwrap();
        let data = b"hello world".to_vec();
        let frags = c.encode(&data, 0);
        let dup = vec![frags[3].clone(), frags[3].clone()];
        assert_eq!(
            c.decode(&dup, data.len()),
            Err(EcError::NotEnoughFragments { have: 1, need: 2 })
        );
        let ok = vec![frags[3].clone(), frags[3].clone(), frags[1].clone()];
        assert_eq!(c.decode(&ok, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_block_round_trips() {
        let c = Codec::new(4, 8).unwrap();
        let frags = c.encode(&[], 9);
        assert!(frags.iter().all(|f| f.data.is_empty()));
        assert_eq!(c.decode(&frags[4..], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corruption_and_generation_mix_are_typed_errors() {
        let c = Codec::new(2, 4).unwrap();
        let data = vec![42u8; 64];
        let mut frags = c.encode(&data, 3);
        frags[1].data[5] ^= 0xff;
        assert_eq!(
            c.decode(&frags[..2], data.len()),
            Err(EcError::Corrupt { index: 1 })
        );
        let old = c.encode(&data, 2);
        let mixed = vec![frags[0].clone(), old[3].clone()];
        assert_eq!(
            c.decode(&mixed, data.len()),
            Err(EcError::GenerationMismatch {
                expected: 3,
                found: 2
            })
        );
    }
}
