//! Property tests for the GF(2^8) Reed–Solomon coder: the decoder must
//! round-trip byte-identically from *any* k-subset of fragments, and
//! must answer every malformed input with a typed error, never a panic
//! and never silently wrong bytes.

use d2_ec::{Codec, EcError, Fragment};
use proptest::prelude::*;

/// The (k, n) grid the system actually uses, plus a degenerate no-parity
/// code and a wide one.
fn params() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((2usize, 4usize)),
        Just((4, 8)),
        Just((8, 12)),
        Just((1, 3)),
        Just((3, 3)),
        Just((5, 16)),
    ]
}

proptest! {
    /// encode → drop any n−k fragments → decode is the identity.
    #[test]
    fn round_trips_from_any_k_subset(
        (k, n) in params(),
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        generation in any::<u64>(),
        subset_seed in any::<u64>(),
    ) {
        let codec = Codec::new(k, n).unwrap();
        let frags = codec.encode(&data, generation);
        prop_assert_eq!(frags.len(), n);

        // Choose k surviving indices from the seed (a cheap
        // Fisher–Yates over 0..n), i.e. drop n−k fragments.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = subset_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let survivors: Vec<Fragment> =
            order[..k].iter().map(|&i| frags[i].clone()).collect();
        prop_assert_eq!(codec.decode(&survivors, data.len()).unwrap(), data);
    }

    /// Any single corrupted byte in a surviving fragment is detected:
    /// decode returns `Corrupt`, never panics, never wrong bytes.
    #[test]
    fn corrupted_fragment_is_a_typed_error(
        (k, n) in params(),
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        victim in any::<usize>(),
        byte in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let codec = Codec::new(k, n).unwrap();
        let mut frags = codec.encode(&data, 0);
        let victim = victim % k;
        let survivors = &mut frags[..k];
        let blen = survivors[victim].data.len();
        prop_assume!(blen > 0);
        survivors[victim].data[byte % blen] ^= flip;
        let idx = survivors[victim].index;
        prop_assert_eq!(
            codec.decode(survivors, data.len()),
            Err(EcError::Corrupt { index: idx })
        );
    }

    /// Mixing generations is detected before any arithmetic.
    #[test]
    fn wrong_generation_is_a_typed_error(
        (k, n) in params(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        generation in any::<u64>(),
        stale in any::<usize>(),
    ) {
        prop_assume!(k >= 2);
        let codec = Codec::new(k, n).unwrap();
        let fresh = codec.encode(&data, generation);
        let old = codec.encode(&data, generation.wrapping_add(1));
        let mut set: Vec<Fragment> = fresh[..k].to_vec();
        set[stale % k] = old[stale % k].clone();
        let got = codec.decode(&set, data.len());
        prop_assert!(matches!(got, Err(EcError::GenerationMismatch { .. })), "{got:?}");
    }

    /// Fewer than k distinct fragments can never decode.
    #[test]
    fn under_k_fragments_is_a_typed_error(
        (k, n) in params(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        keep in any::<usize>(),
    ) {
        let codec = Codec::new(k, n).unwrap();
        let frags = codec.encode(&data, 0);
        let keep = keep % k;
        prop_assert_eq!(
            codec.decode(&frags[..keep], data.len()),
            Err(EcError::NotEnoughFragments { have: keep, need: k })
        );
        let _ = n;
    }

    /// Arbitrary garbage fragments produce an error, not a panic.
    #[test]
    fn garbage_never_panics(
        (k, n) in params(),
        idx in any::<u8>(),
        generation in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        check in any::<u64>(),
        len in 0usize..4096,
    ) {
        let codec = Codec::new(k, n).unwrap();
        let junk = Fragment { index: idx, generation, data: payload, check };
        let mut set = codec.encode(&vec![7u8; len], 0)[..k].to_vec();
        set[0] = junk;
        // Either it decodes (the forged checksum happened to be right
        // AND shapes lined up — astronomically unlikely) or it's a
        // typed error; both are fine, a panic is not.
        let _ = codec.decode(&set, len);
    }
}
