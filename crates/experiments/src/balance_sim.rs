//! The long-term load-balance / overhead simulation behind Table 4 and
//! Figures 16–17 (paper Section 10), plus the Webcache churn derivation
//! used by Table 3.
//!
//! Node failures are deliberately absent (the paper isolates balancing
//! traffic from regeneration traffic and notes failures did not change
//! the results).

use d2_core::{ClusterConfig, SimCluster, SystemKind};
use d2_obs::{SharedSink, TraceEvent};
use d2_sim::{max_over_mean, SimTime, TimeSeries};
use d2_types::Key;
use d2_workload::{FileOp, HarvardTrace, WebTrace};
use serde::{Deserialize, Serialize};

/// The four systems compared in Figures 16–17.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalanceSystem {
    /// D2: locality keys + Mercury balancing.
    D2,
    /// Traditional DHT: hashed keys, no balancing.
    Traditional,
    /// Traditional-file DHT: per-file hashed placement, no balancing.
    TraditionalFile,
    /// Traditional + Mercury: hashed keys *with* active balancing — the
    /// load-balance upper bound D2 is compared against.
    TraditionalMerc,
}

impl BalanceSystem {
    /// The key encoding in effect.
    pub fn system_kind(&self) -> SystemKind {
        match self {
            BalanceSystem::D2 => SystemKind::D2,
            BalanceSystem::Traditional | BalanceSystem::TraditionalMerc => SystemKind::Traditional,
            BalanceSystem::TraditionalFile => SystemKind::TraditionalFile,
        }
    }

    /// Whether the active balancer runs.
    pub fn balances(&self) -> bool {
        matches!(self, BalanceSystem::D2 | BalanceSystem::TraditionalMerc)
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BalanceSystem::D2 => "d2",
            BalanceSystem::Traditional => "traditional",
            BalanceSystem::TraditionalFile => "traditional-file",
            BalanceSystem::TraditionalMerc => "traditional+merc",
        }
    }
}

/// One data-churn event.
#[derive(Clone, Debug)]
pub enum ChurnEvent {
    /// Write a block.
    Put(Key, u32),
    /// Remove a block.
    Remove(Key),
}

/// A time-ordered churn stream for one key encoding.
#[derive(Clone, Debug, Default)]
pub struct ChurnStream {
    /// Blocks present at time zero.
    pub initial: Vec<(Key, u32)>,
    /// Timestamped events.
    pub events: Vec<(SimTime, ChurnEvent)>,
    /// Stream length in whole days.
    pub days: usize,
}

/// Derives the churn stream of a Harvard trace under `system`'s encoding
/// (reads are ignored; only creates/overwrites/deletes move data).
pub fn harvard_churn(trace: &HarvardTrace, system: SystemKind) -> ChurnStream {
    let mut initial = Vec::new();
    for id in trace.namespace.live_at(SimTime::ZERO) {
        let f = trace.namespace.file(id);
        if f.created_at > SimTime::ZERO {
            continue;
        }
        for b in 0..=f.data_blocks() {
            let name = trace.namespace.block_name(id, b);
            initial.push((system.key_of(&name), len_of(f.size, b)));
        }
    }
    let mut events = Vec::new();
    for a in &trace.accesses {
        let f = trace.namespace.file(a.file);
        match a.op {
            FileOp::Create | FileOp::Write => {
                for b in 0..=f.data_blocks() {
                    let name = trace.namespace.block_name(a.file, b);
                    events.push((
                        a.at,
                        ChurnEvent::Put(system.key_of(&name), len_of(f.size, b)),
                    ));
                }
            }
            FileOp::Delete => {
                for b in 0..=f.data_blocks() {
                    let name = trace.namespace.block_name(a.file, b);
                    events.push((a.at, ChurnEvent::Remove(system.key_of(&name))));
                }
            }
            FileOp::Read => {}
        }
    }
    ChurnStream {
        initial,
        events,
        days: trace.config.days.ceil() as usize,
    }
}

/// Per-object cached intervals of the Webcache workload: an object is
/// inserted on first access and evicted one day after its *last* access
/// (refresh-on-access, Section 10 footnote 9).
pub fn webcache_intervals(trace: &WebTrace) -> Vec<(u32, Vec<(SimTime, SimTime)>)> {
    let ttl = SimTime::from_secs(trace.config.eviction_secs);
    let horizon = SimTime::from_secs_f64(trace.config.days * 86_400.0);
    let mut per_object: Vec<Vec<SimTime>> = vec![Vec::new(); trace.objects.len()];
    for a in &trace.accesses {
        per_object[a.object as usize].push(a.at);
    }
    let mut out = Vec::new();
    for (obj, times) in per_object.into_iter().enumerate() {
        if times.is_empty() {
            continue;
        }
        let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
        let mut start = times[0];
        let mut expiry = times[0] + ttl;
        for &t in &times[1..] {
            if t <= expiry {
                expiry = t + ttl;
            } else {
                intervals.push((start, expiry.min(horizon)));
                start = t;
                expiry = t + ttl;
            }
        }
        intervals.push((start, expiry.min(horizon)));
        out.push((obj as u32, intervals));
    }
    out
}

/// Derives the Webcache churn stream under `system`'s encoding.
pub fn webcache_churn(trace: &WebTrace, system: SystemKind) -> ChurnStream {
    let mut events = Vec::new();
    for (obj, intervals) in webcache_intervals(trace) {
        let blocks = trace.blocks_of(obj);
        let size = trace.objects[obj as usize].size;
        for (start, end) in intervals {
            for (i, name) in blocks.iter().enumerate() {
                let len = if i == 0 { 256 } else { len_of(size, i as u64) };
                events.push((start, ChurnEvent::Put(system.key_of(name), len)));
                events.push((end, ChurnEvent::Remove(system.key_of(name))));
            }
        }
    }
    events.sort_by_key(|e| e.0);
    // The cache starts empty (Section 10: "since the DHT is initially
    // empty, all data is written to a small number of nodes at first").
    ChurnStream {
        initial: Vec::new(),
        events,
        days: trace.config.days.ceil() as usize,
    }
}

fn len_of(size: u64, b: u64) -> u32 {
    if b == 0 {
        return 256;
    }
    let bs = d2_types::BLOCK_SIZE as u64;
    let full = size / bs;
    if b <= full {
        bs as u32
    } else {
        (size % bs).max(1) as u32
    }
}

/// Results of one balance run.
#[derive(Clone, Debug)]
pub struct BalanceRun {
    /// System measured.
    pub system: BalanceSystem,
    /// Load imbalance (normalized σ of per-node bytes), sampled hourly.
    pub imbalance: TimeSeries,
    /// Max-load / mean-load, sampled hourly.
    pub max_over_mean: TimeSeries,
    /// Bytes written by users, per day.
    pub write_bytes_per_day: Vec<u64>,
    /// Bytes migrated by balancing/pointer resolution, per day.
    pub migration_bytes_per_day: Vec<u64>,
    /// Bytes removed, per day.
    pub removed_bytes_per_day: Vec<u64>,
    /// Stored bytes at the start of each day.
    pub stored_at_day_start: Vec<u64>,
}

/// Replays a churn stream against a cluster, running the balancer (when
/// the system has one) every probe interval and sampling imbalance hourly.
///
/// `warmup` is the stabilization period run *before* the stream starts
/// and before any traffic accounting — the paper balances for 3 simulated
/// days "so that node positions stabilize with respect to the initial key
/// distribution" (Section 8.1).
pub fn run(
    system: BalanceSystem,
    cfg: &ClusterConfig,
    stream: &ChurnStream,
    warmup: SimTime,
) -> BalanceRun {
    run_traced(system, cfg, stream, warmup, &SharedSink::null())
}

/// [`run`] with a trace sink attached to the cluster: migration copies,
/// balance moves, and pointer resolutions appear as [`TraceEvent`]s
/// (including the uncounted warm-up, which the paper's traffic numbers
/// exclude but whose churn is often exactly what a trace is for).
pub fn run_traced(
    system: BalanceSystem,
    cfg: &ClusterConfig,
    stream: &ChurnStream,
    warmup: SimTime,
    sink: &SharedSink,
) -> BalanceRun {
    sink.record_with(|| TraceEvent::Mark {
        t_us: 0,
        label: format!("balance system={}", system.label()),
    });
    let mut cluster = SimCluster::new(system.system_kind(), cfg);
    cluster.set_trace_sink(sink.clone());
    cluster.preload(stream.initial.iter().copied());

    let probe = cfg.probe_interval;
    let hour = SimTime::from_secs(3600);

    // ---- stabilization warm-up (uncounted) --------------------------------
    let mut now = SimTime::ZERO;
    while now < warmup {
        now += probe;
        if system.balances() {
            cluster.run_balance_round(now, system == BalanceSystem::TraditionalMerc);
            cluster.resolve_stale_pointers(now);
        }
    }
    let epoch = now;
    let horizon = epoch + SimTime::from_secs(stream.days as u64 * 86_400);

    let mut imbalance = TimeSeries::new();
    let mut mom = TimeSeries::new();
    let mut write_days = vec![0u64; stream.days];
    let mut mig_days = vec![0u64; stream.days];
    let mut rem_days = vec![0u64; stream.days];
    let mut stored_days = vec![0u64; stream.days];

    let mut next_event = 0usize;
    let mut next_probe = epoch + probe;
    let mut next_sample = epoch;
    let mut last_write = cluster.stats.write_bytes;
    let mut last_mig = cluster.stats.migration_bytes;
    let mut last_rem = cluster.stats.removed_bytes;
    let mut day = 0usize;
    stored_days[0] = cluster.total_load_bytes().iter().sum::<u64>() / cfg.replicas.max(1) as u64;

    while now <= horizon {
        // Next occurrence among: event, probe, sample.
        let t_event = stream
            .events
            .get(next_event)
            .map(|(t, _)| epoch + *t)
            .unwrap_or(SimTime(u64::MAX));
        let t = t_event.min(next_probe).min(next_sample);
        if t > horizon {
            break;
        }
        now = t;
        cluster.now = now;
        if t == t_event {
            match &stream.events[next_event].1 {
                ChurnEvent::Put(key, len) => cluster.put_block(*key, *len, now),
                ChurnEvent::Remove(key) => cluster.remove_block(key, now),
            }
            next_event += 1;
        } else if t == next_probe {
            if system.balances() {
                cluster.run_balance_round(now, system == BalanceSystem::TraditionalMerc);
                cluster.resolve_stale_pointers(now);
            }
            next_probe += probe;
        } else {
            imbalance.push(now.saturating_sub(epoch), cluster.imbalance());
            mom.push(
                now.saturating_sub(epoch),
                max_over_mean(&cluster.total_load_bytes()),
            );
            next_sample += hour;
            // Roll day counters (day index in stream time).
            let d = (now.saturating_sub(epoch).as_secs() / 86_400) as usize;
            if d != day && day < stream.days {
                write_days[day] = cluster.stats.write_bytes - last_write;
                mig_days[day] = cluster.stats.migration_bytes - last_mig;
                rem_days[day] = cluster.stats.removed_bytes - last_rem;
                last_write = cluster.stats.write_bytes;
                last_mig = cluster.stats.migration_bytes;
                last_rem = cluster.stats.removed_bytes;
                day = d.min(stream.days);
                if day < stream.days {
                    stored_days[day] =
                        cluster.total_load_bytes().iter().sum::<u64>() / cfg.replicas.max(1) as u64;
                }
            }
        }
    }
    // Final partial day.
    if day < stream.days {
        write_days[day] = cluster.stats.write_bytes - last_write;
        mig_days[day] = cluster.stats.migration_bytes - last_mig;
        rem_days[day] = cluster.stats.removed_bytes - last_rem;
    }

    BalanceRun {
        system,
        imbalance,
        max_over_mean: mom,
        write_bytes_per_day: write_days,
        migration_bytes_per_day: mig_days,
        removed_bytes_per_day: rem_days,
        stored_at_day_start: stored_days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rand::SeedableRng;

    fn quick_stream(system: SystemKind) -> ChurnStream {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        harvard_churn(&trace, system)
    }

    #[test]
    fn d2_balances_better_than_unbalanced_d2_keys_would() {
        // D2 keys without balancing would be catastrophically imbalanced;
        // with Mercury they stay near the traditional DHT's level.
        let cfg = Scale::Quick.cluster(3);
        let d2 = run(
            BalanceSystem::D2,
            &cfg,
            &quick_stream(SystemKind::D2),
            SimTime::from_secs(6 * 3600),
        );
        let trad = run(
            BalanceSystem::Traditional,
            &cfg,
            &quick_stream(SystemKind::Traditional),
            SimTime::from_secs(6 * 3600),
        );
        assert!(!d2.imbalance.is_empty());
        // Tail imbalance (after convergence) is comparable to traditional.
        let tail = |s: &TimeSeries| {
            let pts = s.points();
            let n = pts.len();
            pts[n.saturating_sub(6)..]
                .iter()
                .map(|(_, v)| v)
                .sum::<f64>()
                / 6f64.min(n as f64)
        };
        let d2_tail = tail(&d2.imbalance);
        let trad_tail = tail(&trad.imbalance);
        assert!(
            d2_tail < trad_tail * 2.5 + 0.5,
            "d2 tail imbalance {d2_tail} vs traditional {trad_tail}"
        );
    }

    #[test]
    fn migration_bounded_by_write_traffic_shape() {
        let cfg = Scale::Quick.cluster(3);
        let d2 = run(
            BalanceSystem::D2,
            &cfg,
            &quick_stream(SystemKind::D2),
            SimTime::from_secs(6 * 3600),
        );
        let writes: u64 = d2.write_bytes_per_day.iter().sum();
        let migs: u64 = d2.migration_bytes_per_day.iter().sum();
        assert!(writes > 0);
        // Table 4 band: migration is a moderate multiple of write traffic
        // (the paper reports ~0.5x for Harvard; allow generous slack at
        // quick scale, where warm-up migration dominates).
        assert!(
            migs < writes * 8,
            "migration {migs} should be within a small multiple of writes {writes}"
        );
    }

    #[test]
    fn traced_run_records_balance_activity() {
        let cfg = Scale::Quick.cluster(3);
        let sink = SharedSink::memory(0);
        let traced = run_traced(
            BalanceSystem::D2,
            &cfg,
            &quick_stream(SystemKind::D2),
            SimTime::from_secs(6 * 3600),
            &sink,
        );
        let events = sink.drain();
        assert!(matches!(&events[0], TraceEvent::Mark { label, .. } if label.contains("d2")));
        let migrations = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Migration { .. }))
            .count();
        assert!(migrations > 0, "a balanced D2 run must migrate data");
        // Tracing must not perturb the simulation.
        let plain = run(
            BalanceSystem::D2,
            &cfg,
            &quick_stream(SystemKind::D2),
            SimTime::from_secs(6 * 3600),
        );
        assert_eq!(
            traced.migration_bytes_per_day,
            plain.migration_bytes_per_day
        );
        assert_eq!(traced.write_bytes_per_day, plain.write_bytes_per_day);
    }

    #[test]
    fn webcache_intervals_cover_accesses() {
        let trace = WebTrace::generate(
            &Scale::Quick.web(),
            &mut rand::rngs::StdRng::seed_from_u64(6),
        );
        let intervals = webcache_intervals(&trace);
        assert!(!intervals.is_empty());
        // Every access time lies inside one of its object's intervals.
        for a in &trace.accesses {
            let ivs = intervals.iter().find(|(o, _)| *o == a.object);
            let Some((_, ivs)) = ivs else {
                panic!("object missing")
            };
            assert!(
                ivs.iter().any(|(s, e)| *s <= a.at && a.at <= *e),
                "access at {} outside cached intervals",
                a.at
            );
        }
        // Intervals are disjoint and ordered per object.
        for (_, ivs) in &intervals {
            for w in ivs.windows(2) {
                assert!(w[0].1 < w[1].0);
            }
        }
    }

    #[test]
    fn webcache_churn_is_balanced_put_remove() {
        let trace = WebTrace::generate(
            &Scale::Quick.web(),
            &mut rand::rngs::StdRng::seed_from_u64(6),
        );
        let stream = webcache_churn(&trace, SystemKind::D2);
        let puts = stream
            .events
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Put(..)))
            .count();
        let removes = stream
            .events
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Remove(..)))
            .count();
        assert_eq!(puts, removes, "every insert is eventually evicted");
        assert!(stream.initial.is_empty());
        for w in stream.events.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
