//! Command-line experiment runner: regenerate any of the paper's tables
//! and figures by name.
//!
//! ```text
//! d2-exp <experiment> [--scale quick|full] [--seed N] [--obs-out trace.jsonl]
//!
//! experiments:
//!   fig3 table2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14-15
//!   table3 table4 fig16 fig17 all
//! ```
//!
//! With `--obs-out`, every traced simulation records structured
//! [`d2_obs::TraceEvent`]s; after the experiments finish, the events are
//! written as JSONL to the given path and a percentile summary (hops,
//! lookup latency, cache hit rates, migration bytes) is printed.

use d2_core::SystemKind;
use d2_experiments::fig16_17::ALL_SYSTEMS;
use d2_experiments::perf_suite::{self, SuiteConfig};
use d2_experiments::{
    fig10, fig11, fig12, fig13, fig14_15, fig16_17, fig3, fig7, fig8, fig9, obs_summary, table2,
    table3, table4, Scale,
};
use d2_obs::{to_jsonl, SharedSink, TraceEvent};
use d2_sim::{FailureModel, SimTime};
use d2_workload::{HarvardTrace, HpConfig, HpTrace, WebTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Ctx {
    scale: Scale,
    seed: u64,
    harvard: HarvardTrace,
    web: WebTrace,
    hp: HpTrace,
    sink: SharedSink,
}

impl Ctx {
    fn new(scale: Scale, seed: u64, sink: SharedSink) -> Ctx {
        let harvard = HarvardTrace::generate(&scale.harvard(), &mut StdRng::seed_from_u64(seed));
        let web = WebTrace::generate(&scale.web(), &mut StdRng::seed_from_u64(seed));
        let hp = HpTrace::generate(
            &HpConfig {
                apps: 8,
                days: 1.0,
                disk_blocks: 600_000,
                ..HpConfig::default()
            },
            &mut StdRng::seed_from_u64(seed),
        );
        Ctx {
            scale,
            seed,
            harvard,
            web,
            hp,
            sink,
        }
    }

    fn suite(&self, systems: Vec<SystemKind>, kbps: Vec<u64>) -> perf_suite::SuiteResult {
        let cfg = SuiteConfig {
            sizes: self.scale.perf_sizes(),
            kbps,
            measure_groups: 150,
            seed: self.seed,
            warmup_days: self.scale.warmup_days(),
            systems,
            sink: self.sink.clone(),
            ..SuiteConfig::default()
        };
        perf_suite::run(&self.harvard, &cfg)
    }

    fn failure_model(&self) -> FailureModel {
        FailureModel {
            duration_secs: self.harvard.config.days * 86_400.0,
            ..FailureModel::default()
        }
    }

    fn balance_warmup(&self) -> SimTime {
        SimTime::from_secs_f64(self.scale.warmup_days() * 86_400.0 * 2.0)
    }
}

fn run_one(name: &str, ctx: &Ctx) -> bool {
    let cfg = ctx.scale.cluster(ctx.seed);
    match name {
        "fig3" => {
            println!(
                "{}",
                fig3::run(&ctx.harvard, &ctx.hp, &ctx.web, 2 << 20).render()
            );
        }
        "table2" => {
            let inters = [
                SimTime::from_secs(1),
                SimTime::from_secs(5),
                SimTime::from_secs(15),
                SimTime::from_secs(60),
            ];
            println!(
                "{}",
                table2::run(&ctx.harvard, &cfg, &inters, ctx.scale.warmup_days()).render()
            );
        }
        "fig7" => {
            let inters = [
                SimTime::from_secs(5),
                SimTime::from_secs(60),
                SimTime::from_secs(300),
            ];
            let fig = fig7::run(
                &ctx.harvard,
                &cfg,
                &ctx.failure_model(),
                &inters,
                ctx.scale.trials(),
                ctx.scale.warmup_days(),
                99,
            );
            println!("{}", fig.render());
        }
        "fig8" => {
            let fig = fig8::run(
                &ctx.harvard,
                &cfg,
                &ctx.failure_model(),
                ctx.scale.warmup_days(),
                42,
            );
            println!("{}", fig.render());
        }
        "fig9" => {
            let suite = ctx.suite(
                vec![
                    SystemKind::D2,
                    SystemKind::Traditional,
                    SystemKind::TraditionalFile,
                ],
                vec![1500],
            );
            println!("{}", fig9::from_suite(&suite).render());
        }
        "fig10" => {
            let suite = ctx.suite(
                vec![SystemKind::D2, SystemKind::Traditional],
                vec![1500, 384],
            );
            println!(
                "{}",
                fig10::from_suite(&suite, SystemKind::Traditional).render()
            );
        }
        "fig11" => {
            let suite = ctx.suite(
                vec![SystemKind::D2, SystemKind::TraditionalFile],
                vec![1500, 384],
            );
            println!("{}", fig11::from_suite(&suite).render());
        }
        "fig12" => {
            let largest = *ctx.scale.perf_sizes().last().unwrap();
            let suite = ctx.suite(vec![SystemKind::D2, SystemKind::Traditional], vec![1500]);
            println!("{}", fig12::from_suite(&suite, largest, 1500).render());
        }
        "fig13" => {
            let suite = ctx.suite(
                vec![
                    SystemKind::D2,
                    SystemKind::Traditional,
                    SystemKind::TraditionalFile,
                ],
                vec![1500],
            );
            println!("{}", fig13::from_suite(&suite).render());
        }
        "fig14-15" | "fig14" | "fig15" => {
            let largest = *ctx.scale.perf_sizes().last().unwrap();
            let suite = ctx.suite(
                vec![
                    SystemKind::D2,
                    SystemKind::Traditional,
                    SystemKind::TraditionalFile,
                ],
                vec![1500],
            );
            println!("{}", fig14_15::from_suite(&suite, largest, 1500).render());
        }
        "table3" => {
            println!("{}", table3::run(&ctx.harvard, &ctx.web).render());
        }
        "table4" => {
            println!(
                "{}",
                table4::run_traced(
                    &ctx.harvard,
                    &ctx.web,
                    &cfg,
                    ctx.balance_warmup(),
                    &ctx.sink
                )
                .render()
            );
        }
        "fig16" => {
            let fig = fig16_17::fig16_traced(
                &ctx.harvard,
                &cfg,
                &ALL_SYSTEMS,
                ctx.balance_warmup(),
                &ctx.sink,
            );
            println!("{}", fig.render());
        }
        "fig17" => {
            let fig = fig16_17::fig17_traced(
                &ctx.web,
                &cfg,
                &ALL_SYSTEMS,
                SimTime::from_secs(3600),
                &ctx.sink,
            );
            println!("{}", fig.render());
        }
        _ => return false,
    }
    true
}

const ALL: [&str; 14] = [
    "fig3", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14-15",
    "table3", "table4", "fig16", "fig17",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut obs_out: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("full") => Scale::Full,
                    _ => Scale::Quick,
                };
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--obs-out" => {
                obs_out = it.next().cloned();
                if obs_out.is_none() {
                    eprintln!("--obs-out requires a path");
                    std::process::exit(2);
                }
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!(
            "usage: d2-exp <experiment>... [--scale quick|full] [--seed N] [--obs-out trace.jsonl]"
        );
        eprintln!("experiments: {} all", ALL.join(" "));
        std::process::exit(2);
    }
    let sink = if obs_out.is_some() {
        SharedSink::memory(0)
    } else {
        SharedSink::null()
    };
    let ctx = Ctx::new(scale, seed, sink.clone());
    for name in &names {
        sink.record_with(|| TraceEvent::Mark {
            t_us: 0,
            label: format!("experiment {name}"),
        });
        if name == "all" {
            for n in ALL {
                println!("==> {n}");
                run_one(n, &ctx);
            }
        } else if !run_one(name, &ctx) {
            eprintln!("unknown experiment: {name}");
            std::process::exit(2);
        }
    }
    if let Some(path) = obs_out {
        let events = sink.drain();
        if let Err(e) = std::fs::write(&path, to_jsonl(&events)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("{}", obs_summary::render_summary(&events));
        println!("wrote {} trace events to {path}", events.len());
    }
}
