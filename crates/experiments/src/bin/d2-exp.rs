//! Command-line experiment runner: regenerate any of the paper's tables
//! and figures by name.
//!
//! ```text
//! d2-exp <experiment> [--scale quick|full] [--seed N] [--jobs N]
//!                     [--obs-out trace.jsonl]
//!
//! experiments:
//!   fig3 table2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14-15
//!   table3 table4 fig16 fig17 churn redundancy all
//! ```
//!
//! `--jobs` sets the worker-thread count (default: available
//! parallelism). `all` fans the figure set out over the workers; a
//! single experiment parallelizes its internal sweep instead. Output —
//! stdout, the trace JSONL, the summary — is byte-identical at every
//! `--jobs` value: each simulation cell derives its own seed and buffers
//! its events privately, and everything is merged in canonical order
//! (see `d2_experiments::exec`).
//!
//! With `--obs-out`, every traced simulation records structured
//! [`d2_obs::TraceEvent`]s; after the experiments finish, the events are
//! written as JSONL to the given path and a percentile summary (hops,
//! lookup latency, cache hit rates, migration bytes) is printed.

use d2_core::SystemKind;
use d2_experiments::fig16_17::ALL_SYSTEMS;
use d2_experiments::perf_suite::{self, SuiteConfig};
use d2_experiments::{
    churn, exec, fig10, fig11, fig12, fig13, fig14_15, fig16_17, fig3, fig7, fig8, fig9,
    obs_summary, redundancy, table2, table3, table4, Scale,
};
use d2_obs::{to_jsonl, SharedSink, TraceEvent};
use d2_sim::{FailureModel, SimTime};
use d2_workload::{HarvardTrace, HpConfig, HpTrace, WebTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Shared experiment inputs. The three workload traces are generated
/// lazily on first use — `fig3` needs all three, but most experiments
/// touch only one, and `table3` none of HP — each from its own
/// seed-derived RNG, so the result is independent of which experiment
/// (or worker thread) asks first.
struct Ctx {
    scale: Scale,
    seed: u64,
    harvard: OnceLock<HarvardTrace>,
    web: OnceLock<WebTrace>,
    hp: OnceLock<HpTrace>,
}

impl Ctx {
    fn new(scale: Scale, seed: u64) -> Ctx {
        Ctx {
            scale,
            seed,
            harvard: OnceLock::new(),
            web: OnceLock::new(),
            hp: OnceLock::new(),
        }
    }

    fn harvard(&self) -> &HarvardTrace {
        self.harvard.get_or_init(|| {
            HarvardTrace::generate(&self.scale.harvard(), &mut StdRng::seed_from_u64(self.seed))
        })
    }

    fn web(&self) -> &WebTrace {
        self.web.get_or_init(|| {
            WebTrace::generate(&self.scale.web(), &mut StdRng::seed_from_u64(self.seed))
        })
    }

    fn hp(&self) -> &HpTrace {
        self.hp.get_or_init(|| {
            HpTrace::generate(
                &HpConfig {
                    apps: 8,
                    days: 1.0,
                    disk_blocks: 600_000,
                    ..HpConfig::default()
                },
                &mut StdRng::seed_from_u64(self.seed),
            )
        })
    }

    fn suite(
        &self,
        systems: Vec<SystemKind>,
        kbps: Vec<u64>,
        sink: &SharedSink,
        jobs: usize,
    ) -> perf_suite::SuiteResult {
        let cfg = SuiteConfig {
            sizes: self.scale.perf_sizes(),
            kbps,
            measure_groups: 150,
            seed: self.seed,
            warmup_days: self.scale.warmup_days(),
            systems,
            sink: sink.clone(),
            jobs,
            ..SuiteConfig::default()
        };
        perf_suite::run(self.harvard(), &cfg)
    }

    fn failure_model(&self) -> FailureModel {
        FailureModel {
            duration_secs: self.harvard().config.days * 86_400.0,
            ..FailureModel::default()
        }
    }

    fn balance_warmup(&self) -> SimTime {
        SimTime::from_secs_f64(self.scale.warmup_days() * 86_400.0 * 2.0)
    }
}

/// Runs one experiment, returning its rendered output and the trace
/// events it recorded (empty unless `trace` is set). The events come
/// back as a batch instead of going straight to the shared sink so that
/// concurrent experiments can be merged in canonical order afterwards.
/// `jobs` bounds the experiment's *internal* fan-out. Returns `None` for
/// an unknown name.
fn run_one(name: &str, ctx: &Ctx, trace: bool, jobs: usize) -> Option<(String, Vec<TraceEvent>)> {
    let sink = if trace {
        SharedSink::memory(0)
    } else {
        SharedSink::null()
    };
    let cfg = ctx.scale.cluster(ctx.seed);
    let out = match name {
        "fig3" => fig3::run(ctx.harvard(), ctx.hp(), ctx.web(), 2 << 20).render(),
        "table2" => {
            let inters = [
                SimTime::from_secs(1),
                SimTime::from_secs(5),
                SimTime::from_secs(15),
                SimTime::from_secs(60),
            ];
            table2::run(ctx.harvard(), &cfg, &inters, ctx.scale.warmup_days()).render()
        }
        "fig7" => {
            let inters = [
                SimTime::from_secs(5),
                SimTime::from_secs(60),
                SimTime::from_secs(300),
            ];
            fig7::run(
                ctx.harvard(),
                &cfg,
                &ctx.failure_model(),
                &inters,
                ctx.scale.trials(),
                ctx.scale.warmup_days(),
                99,
            )
            .render()
        }
        "fig8" => fig8::run(
            ctx.harvard(),
            &cfg,
            &ctx.failure_model(),
            ctx.scale.warmup_days(),
            42,
        )
        .render(),
        "fig9" => {
            let suite = ctx.suite(
                vec![
                    SystemKind::D2,
                    SystemKind::Traditional,
                    SystemKind::TraditionalFile,
                ],
                vec![1500],
                &sink,
                jobs,
            );
            fig9::from_suite(&suite).render()
        }
        "fig10" => {
            let suite = ctx.suite(
                vec![SystemKind::D2, SystemKind::Traditional],
                vec![1500, 384],
                &sink,
                jobs,
            );
            fig10::from_suite(&suite, SystemKind::Traditional).render()
        }
        "fig11" => {
            let suite = ctx.suite(
                vec![SystemKind::D2, SystemKind::TraditionalFile],
                vec![1500, 384],
                &sink,
                jobs,
            );
            fig11::from_suite(&suite).render()
        }
        "fig12" => {
            let largest = *ctx.scale.perf_sizes().last().unwrap();
            let suite = ctx.suite(
                vec![SystemKind::D2, SystemKind::Traditional],
                vec![1500],
                &sink,
                jobs,
            );
            fig12::from_suite(&suite, largest, 1500).render()
        }
        "fig13" => {
            let suite = ctx.suite(
                vec![
                    SystemKind::D2,
                    SystemKind::Traditional,
                    SystemKind::TraditionalFile,
                ],
                vec![1500],
                &sink,
                jobs,
            );
            fig13::from_suite(&suite).render()
        }
        "fig14-15" | "fig14" | "fig15" => {
            let largest = *ctx.scale.perf_sizes().last().unwrap();
            let suite = ctx.suite(
                vec![
                    SystemKind::D2,
                    SystemKind::Traditional,
                    SystemKind::TraditionalFile,
                ],
                vec![1500],
                &sink,
                jobs,
            );
            fig14_15::from_suite(&suite, largest, 1500).render()
        }
        "table3" => table3::run(ctx.harvard(), ctx.web()).render(),
        "churn" => churn::run_traced(ctx.scale, ctx.seed, jobs, &sink).render(),
        "redundancy" => redundancy::run_traced(ctx.scale, ctx.seed, jobs, &sink).render(),
        "table4" => table4::run_traced(
            ctx.harvard(),
            ctx.web(),
            &cfg,
            ctx.balance_warmup(),
            &sink,
            jobs,
        )
        .render(),
        "fig16" => fig16_17::fig16_traced(
            ctx.harvard(),
            &cfg,
            &ALL_SYSTEMS,
            ctx.balance_warmup(),
            &sink,
            jobs,
        )
        .render(),
        "fig17" => fig16_17::fig17_traced(
            ctx.web(),
            &cfg,
            &ALL_SYSTEMS,
            SimTime::from_secs(3600),
            &sink,
            jobs,
        )
        .render(),
        _ => return None,
    };
    Some((out, sink.drain()))
}

const ALL: [&str; 16] = [
    "fig3",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14-15",
    "table3",
    "table4",
    "fig16",
    "fig17",
    "churn",
    "redundancy",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut jobs = exec::available_jobs();
    let mut obs_out: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("full") => Scale::Full,
                    _ => Scale::Quick,
                };
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--jobs" => {
                jobs = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--obs-out" => {
                obs_out = it.next().cloned();
                if obs_out.is_none() {
                    eprintln!("--obs-out requires a path");
                    std::process::exit(2);
                }
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!(
            "usage: d2-exp <experiment>... [--scale quick|full] [--seed N] [--jobs N] [--obs-out trace.jsonl]"
        );
        eprintln!("experiments: {} all", ALL.join(" "));
        std::process::exit(2);
    }
    let trace = obs_out.is_some();
    let sink = if trace {
        SharedSink::memory(0)
    } else {
        SharedSink::null()
    };
    let ctx = Ctx::new(scale, seed);
    for name in &names {
        sink.record_with(|| TraceEvent::Mark {
            t_us: 0,
            label: format!("experiment {name}"),
        });
        if name == "all" {
            // Fan the figure set out over the workers; each experiment
            // runs its internal sweep sequentially. Output and events are
            // merged in the canonical `ALL` order, not completion order.
            let outcomes = exec::parallel_map(&ALL, jobs, |_, &n| {
                run_one(n, &ctx, trace, 1).expect("ALL names are known")
            });
            for (n, (out, events)) in ALL.iter().zip(outcomes) {
                println!("==> {n}");
                println!("{out}");
                sink.extend(events);
            }
        } else {
            match run_one(name, &ctx, trace, jobs) {
                Some((out, events)) => {
                    println!("{out}");
                    sink.extend(events);
                }
                None => {
                    eprintln!("unknown experiment: {name}");
                    std::process::exit(2);
                }
            }
        }
    }
    if let Some(path) = obs_out {
        let events = sink.drain();
        if let Err(e) = std::fs::write(&path, to_jsonl(&events)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("{}", obs_summary::render_summary(&events));
        println!("wrote {} trace events to {path}", events.len());
    }
}
