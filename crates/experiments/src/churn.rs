//! The `churn` experiment: lookup success under injected message faults
//! and node crash/rejoin, as a function of churn rate.
//!
//! The paper's availability simulation (Section 8) assumes the routing
//! layer keeps resolving keys while nodes crash and rejoin; this
//! experiment *measures* that assumption. Each cell replays a scaled
//! [`FailureModel`] trace (churn multiplier × the paper's PlanetLab-like
//! baseline) against a live ring whose per-node routing tables go stale
//! exactly as the protocol's would: crashes leave dangling links until
//! lookups evict them or the periodic stabilization pass repairs them.
//! Every lookup runs under the full retry/timeout/backoff policy of
//! [`d2_ring::churn`], with message drops and delays injected by a
//! [`FaultPlan`], and is preceded by a probe of a Section 5 range-based
//! [`LookupCache`] (stale hits cost a wasted round trip, as in the
//! performance simulator).
//!
//! Reported per churn multiplier: trace unavailability, lookup success
//! rate, retry counts (mean and max — the max must stay within the
//! configured budget), timeouts, mean hops, hop stretch vs a converged
//! oracle router, cache hit/stale rates, and stabilization repair
//! volume. The 1× row is the paper-assumption check: success with
//! retries should stay ≥ 99.9%.
//!
//! Cells are independent and seeded via [`exec::derive_seed`], so output
//! is byte-identical at any `--jobs` value.

use crate::exec;
use crate::report::{fmt, render_table};
use crate::Scale;
use d2_obs::{SharedSink, TraceEvent};
use d2_ring::churn::{FaultOracle, MessageFate, RetryPolicy};
use d2_ring::routing::Router;
use d2_ring::{LookupOutcome, NodeIdx, Ring};
use d2_sim::{FailureModel, FailureTrace, FaultConfig, FaultPlan, SimTime};
use d2_store::{CacheOutcome, LookupCache};
use d2_types::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Adapts a `d2-sim` [`FaultPlan`] to the `d2-ring` [`FaultOracle`]
/// trait (the two crates are independent; this crate sees both).
pub struct PlanOracle(pub FaultPlan);

impl FaultOracle for PlanOracle {
    fn node_up(&self, node: NodeIdx, t_us: u64) -> bool {
        self.0.node_up(node.0, SimTime::from_micros(t_us))
    }

    fn message_fate(&mut self, _t_us: u64) -> MessageFate {
        match self.0.next_fate() {
            d2_sim::MessageFate::Delivered { delay_us } => MessageFate::Delivered { delay_us },
            d2_sim::MessageFate::Dropped => MessageFate::Dropped,
        }
    }
}

/// Parameters of one churn sweep.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Ring size.
    pub nodes: usize,
    /// Simulated horizon.
    pub duration: SimTime,
    /// One lookup is issued every this often, from a random live node
    /// for a uniformly random key.
    pub lookup_interval: SimTime,
    /// Self-stabilization period (successor repair, long-link refresh,
    /// dead-link eviction on every live node).
    pub stabilize_interval: SimTime,
    /// Churn multipliers swept, scaling the baseline [`FailureModel`]
    /// (0 = no crashes, message faults only).
    pub multipliers: Vec<f64>,
    /// Retry/timeout/backoff policy for every lookup.
    pub policy: RetryPolicy,
    /// Successor-list length of the routing tables.
    pub successors: usize,
    /// Lookup-cache TTL (paper: 1.25 h).
    pub cache_ttl: SimTime,
    /// Base seed; each cell derives its own via [`exec::derive_seed`].
    pub seed: u64,
}

impl ChurnConfig {
    /// The sweep for a given scale preset.
    pub fn at_scale(scale: Scale, seed: u64) -> ChurnConfig {
        let (nodes, days) = match scale {
            Scale::Quick => (64, 2.0),
            Scale::Full => (128, 7.0),
        };
        ChurnConfig {
            nodes,
            duration: SimTime::from_secs_f64(days * 86_400.0),
            lookup_interval: SimTime::from_secs(20),
            stabilize_interval: SimTime::from_secs(600),
            multipliers: vec![0.0, 1.0, 4.0, 16.0],
            policy: RetryPolicy::default(),
            successors: 4,
            cache_ttl: SimTime::from_secs(4500),
            seed,
        }
    }
}

/// Aggregate results for one churn multiplier.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChurnRow {
    /// Churn multiplier (0 = message faults only).
    pub multiplier: f64,
    /// Mean node unavailability of the generated trace.
    pub unavailability: f64,
    /// Lookups issued (cache-served + routed).
    pub lookups: u64,
    /// Lookups served by a fresh cache hit (no routing).
    pub cache_hits: u64,
    /// Stale cache hits (wasted round trip, then routed).
    pub cache_stale: u64,
    /// Lookups that went through the router.
    pub routed: u64,
    /// Routed lookups that failed (budget exhausted or no route).
    pub failed: u64,
    /// Total retries across routed lookups.
    pub retries: u64,
    /// Largest retry count any single lookup consumed.
    pub max_retries: u32,
    /// Total hop timeouts.
    pub timeouts: u64,
    /// Total successful hops (routed successes only).
    pub hops: u64,
    /// Hops a converged oracle router needed for the same lookups.
    pub oracle_hops: u64,
    /// Mean lookup latency, µs (routed lookups).
    pub mean_latency_us: f64,
    /// Stabilization rounds run.
    pub stab_rounds: u64,
    /// Links repaired by stabilization.
    pub stab_repaired: u64,
    /// Stale links evicted by stabilization.
    pub stab_evicted: u64,
}

impl ChurnRow {
    /// Fraction of issued lookups that found the owner (cache hits
    /// count; only routed failures count against).
    pub fn success_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 1.0;
        }
        1.0 - self.failed as f64 / self.lookups as f64
    }

    /// Mean retries per routed lookup.
    pub fn mean_retries(&self) -> f64 {
        if self.routed == 0 {
            return 0.0;
        }
        self.retries as f64 / self.routed as f64
    }

    /// Mean hops per successful routed lookup.
    pub fn mean_hops(&self) -> f64 {
        let ok = self.routed - self.failed;
        if ok == 0 {
            return 0.0;
        }
        self.hops as f64 / ok as f64
    }

    /// Hop stretch vs the converged oracle router (1.0 = no penalty).
    pub fn stretch(&self) -> f64 {
        if self.oracle_hops == 0 {
            return 1.0;
        }
        self.hops as f64 / self.oracle_hops as f64
    }
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Churn {
    /// One row per churn multiplier, in sweep order.
    pub rows: Vec<ChurnRow>,
}

impl Churn {
    /// The row for a given multiplier.
    pub fn row(&self, multiplier: f64) -> Option<&ChurnRow> {
        self.rows.iter().find(|r| r.multiplier == multiplier)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    fmt(r.multiplier),
                    format!("{:.3}%", r.unavailability * 100.0),
                    r.lookups.to_string(),
                    format!("{:.3}%", r.success_rate() * 100.0),
                    fmt(r.mean_retries()),
                    r.max_retries.to_string(),
                    r.timeouts.to_string(),
                    fmt(r.mean_hops()),
                    fmt(r.stretch()),
                    format!("{:.1}%", pct(r.cache_hits, r.lookups)),
                    format!("{:.1}%", pct(r.cache_stale, r.lookups)),
                    r.stab_repaired.to_string(),
                    r.stab_evicted.to_string(),
                ]
            })
            .collect();
        render_table(
            "Churn: lookup success under faults (retry/timeout/backoff + stabilization)",
            &[
                "churn",
                "unavail",
                "lookups",
                "ok",
                "retries",
                "max",
                "timeouts",
                "hops",
                "stretch",
                "cache-hit",
                "stale",
                "repaired",
                "evicted",
            ],
            &rows,
        )
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Runs the sweep at a scale preset (no tracing).
pub fn run(scale: Scale, seed: u64, jobs: usize) -> Churn {
    run_traced(scale, seed, jobs, &SharedSink::null())
}

/// Runs the sweep at a scale preset, recording sampled
/// [`TraceEvent::ChurnLookup`] events (every failure, every 64th routed
/// success) and every [`TraceEvent::Stabilize`] round into `sink`.
pub fn run_traced(scale: Scale, seed: u64, jobs: usize, sink: &SharedSink) -> Churn {
    run_cfg(&ChurnConfig::at_scale(scale, seed), jobs, sink)
}

/// Runs the sweep for an explicit configuration. Cells fan out over
/// `jobs` workers; each buffers its events privately and the buffers are
/// merged in sweep order, so all output is byte-identical at any worker
/// count.
pub fn run_cfg(cfg: &ChurnConfig, jobs: usize, sink: &SharedSink) -> Churn {
    let cells: Vec<usize> = (0..cfg.multipliers.len()).collect();
    let enabled = sink.enabled();
    let outcomes = exec::parallel_map(&cells, jobs, |i, _| {
        let cell_sink = if enabled {
            SharedSink::memory(0)
        } else {
            SharedSink::null()
        };
        let row = run_cell(
            cfg,
            cfg.multipliers[i],
            exec::derive_seed(cfg.seed, &[i as u64]),
            &cell_sink,
        );
        (row, cell_sink.drain())
    });
    let mut rows = Vec::with_capacity(outcomes.len());
    for (row, events) in outcomes {
        sink.extend(events);
        rows.push(row);
    }
    Churn { rows }
}

/// What happens at one instant of the cell's event loop. Ordering at
/// equal times: membership transitions first (the world changes), then
/// stabilization (the protocol reacts), then lookups (the user observes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Transition(usize, bool),
    Stabilize,
    Lookup,
}

fn run_cell(cfg: &ChurnConfig, multiplier: f64, seed: u64, sink: &SharedSink) -> ChurnRow {
    // Independent streams: the failure trace, the message fates, and the
    // workload (keys/origins) never share a generator, so adding draws to
    // one cannot shift another.
    let trace = if multiplier > 0.0 {
        let base = FailureModel::default();
        let model = FailureModel {
            mttf_secs: base.mttf_secs / multiplier,
            correlated_events: base.correlated_events * multiplier,
            duration_secs: cfg.duration.as_micros() as f64 / 1e6,
            ..base
        };
        FailureTrace::generate(
            cfg.nodes,
            &model,
            &mut StdRng::seed_from_u64(exec::derive_seed(seed, &[1])),
        )
    } else {
        FailureTrace::none(cfg.nodes, cfg.duration)
    };
    let mut row = ChurnRow {
        multiplier,
        unavailability: trace.mean_unavailability(),
        ..ChurnRow::default()
    };
    let mut faults = PlanOracle(FaultPlan::new(
        FaultConfig {
            seed: exec::derive_seed(seed, &[2]),
            ..FaultConfig::default()
        },
        trace,
    ));
    let mut rng = StdRng::seed_from_u64(exec::derive_seed(seed, &[3]));

    // Full ring (stable NodeIdx handles) and the live view that
    // transitions mutate. Tables are built once and then decay.
    let mut live = Ring::new();
    for _ in 0..cfg.nodes {
        live.add_node(Key::random(&mut rng));
    }
    let mut router = Router::build(&live, cfg.successors);
    // Converged baseline for hop stretch, rebuilt lazily after
    // membership changes.
    let mut oracle = router.clone();
    let mut oracle_dirty = false;
    let mut last_id: Vec<Option<Key>> = (0..cfg.nodes).map(|i| live.id_of(NodeIdx(i))).collect();
    let mut cache = LookupCache::new(cfg.cache_ttl);

    // Merge the three event streams into one sorted schedule.
    let mut events: Vec<(u64, Ev)> = Vec::new();
    for (t, node, up) in faults.0.trace().transitions() {
        events.push((t.as_micros(), Ev::Transition(node, up)));
    }
    let horizon = cfg.duration.as_micros();
    let mut t = cfg.stabilize_interval.as_micros();
    while t < horizon {
        events.push((t, Ev::Stabilize));
        t += cfg.stabilize_interval.as_micros();
    }
    let mut t = cfg.lookup_interval.as_micros();
    while t < horizon {
        events.push((t, Ev::Lookup));
        t += cfg.lookup_interval.as_micros();
    }
    events.sort();

    let rtt_us = 2 * faults.0.config().base_delay_us;
    let mut latency_total = 0u64;
    for (t_us, ev) in events {
        match ev {
            Ev::Transition(node, up) => {
                let node = NodeIdx(node);
                if up {
                    if let Some(id) = last_id[node.0] {
                        if live.add_node_at(node, id) {
                            // The returner rebuilds its own table by
                            // bootstrapping, then announces itself to
                            // its ring predecessor (Chord's notify on
                            // join) — without that, greedy routes from
                            // the predecessor side overshoot the
                            // returner until the next stabilize round.
                            // Everyone else stays stale until
                            // stabilization notices.
                            router.rebuild_node(&live, node);
                            if let Some(pred) = live.predecessor(node) {
                                if pred != node {
                                    router.stabilize_node(&live, pred);
                                }
                            }
                        }
                    }
                } else if live.len() > 1 {
                    if let Some(id) = live.id_of(node) {
                        last_id[node.0] = Some(id);
                    }
                    live.remove_node(node);
                }
                oracle_dirty = true;
            }
            Ev::Stabilize => {
                let stats = router.stabilize_round_traced(&live, t_us, sink);
                row.stab_rounds += 1;
                row.stab_repaired += stats.repaired as u64;
                row.stab_evicted += stats.evicted as u64;
            }
            Ev::Lookup => {
                let Some(origin) = live.random_node(&mut rng) else {
                    continue;
                };
                let key = Key::random(&mut rng);
                row.lookups += 1;
                let mut extra_us = 0u64;
                if let CacheOutcome::Hit { node } = cache.probe(&key, SimTime::from_micros(t_us)) {
                    let cached = NodeIdx(node);
                    if faults.node_up(cached, t_us) && live.owner_of(&key) == Some(cached) {
                        row.cache_hits += 1;
                        latency_total += rtt_us;
                        continue;
                    }
                    // Stale: wasted round trip (or timeout if dead),
                    // then fall back to a routed lookup.
                    row.cache_stale += 1;
                    cache.invalidate_node(node);
                    extra_us = if faults.node_up(cached, t_us) {
                        rtt_us
                    } else {
                        cfg.policy.hop_timeout_us
                    };
                }
                row.routed += 1;
                let s = router.lookup_churn(&live, origin, &key, &cfg.policy, &mut faults, t_us);
                row.retries += s.retries as u64;
                row.max_retries = row.max_retries.max(s.retries);
                row.timeouts += s.timeouts as u64;
                latency_total += s.latency_us + extra_us;
                if let Some(owner) = s.owner {
                    row.hops += s.hops as u64;
                    if oracle_dirty {
                        oracle = Router::build(&live, cfg.successors);
                        oracle_dirty = false;
                    }
                    if let Some(base) = oracle.lookup(&live, origin, &key) {
                        row.oracle_hops += base.hops as u64;
                    }
                    if let Some(range) = live.range_of(owner) {
                        cache.insert(range, owner.0, SimTime::from_micros(t_us));
                    }
                } else {
                    row.failed += 1;
                }
                // Sample the trace: every failure, every 64th routed
                // lookup (the registry totals come from the row, not the
                // samples).
                if s.outcome != LookupOutcome::Success || row.routed.is_multiple_of(64) {
                    sink.record_with(|| TraceEvent::ChurnLookup {
                        t_us,
                        from: origin.0,
                        key: key.to_u64_lossy(),
                        ok: s.outcome == LookupOutcome::Success,
                        hops: s.hops,
                        retries: s.retries,
                        timeouts: s.timeouts,
                        latency_us: s.latency_us + extra_us,
                    });
                }
            }
        }
    }
    if row.routed + row.cache_hits > 0 {
        row.mean_latency_us = latency_total as f64 / (row.routed + row.cache_hits) as f64;
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(multipliers: Vec<f64>) -> ChurnConfig {
        ChurnConfig {
            nodes: 32,
            duration: SimTime::from_secs_f64(0.25 * 86_400.0),
            lookup_interval: SimTime::from_secs(30),
            stabilize_interval: SimTime::from_secs(600),
            multipliers,
            policy: RetryPolicy::default(),
            successors: 4,
            cache_ttl: SimTime::from_secs(4500),
            seed: 7,
        }
    }

    #[test]
    fn no_churn_cell_always_succeeds() {
        let churn = run_cfg(&tiny_cfg(vec![0.0]), 1, &SharedSink::null());
        let r = churn.row(0.0).unwrap();
        assert_eq!(r.unavailability, 0.0);
        assert!(r.lookups > 500);
        assert_eq!(r.failed, 0, "drops alone must never fail a lookup");
        assert!(r.success_rate() >= 1.0 - 1e-12);
        assert!(r.cache_hits > 0, "static ring should produce cache hits");
        assert_eq!(r.cache_stale, 0, "static ring cannot go stale");
        assert!(r.max_retries <= RetryPolicy::default().max_retries);
        // ~1% drop probability must show up as retries.
        assert!(r.retries > 0);
    }

    #[test]
    fn churn_cell_survives_heavy_churn_within_budget() {
        let churn = run_cfg(&tiny_cfg(vec![8.0]), 1, &SharedSink::null());
        let r = churn.row(8.0).unwrap();
        assert!(r.unavailability > 0.01, "8x churn must hurt availability");
        assert!(r.stab_evicted > 0, "stabilization must evict dead links");
        assert!(r.stab_repaired > 0);
        assert!(r.max_retries <= RetryPolicy::default().max_retries);
        assert!(
            r.success_rate() > 0.97,
            "retries + stabilization should keep success high, got {}",
            r.success_rate()
        );
        assert!(r.stretch() >= 0.99, "stale tables cannot beat the oracle");
    }

    #[test]
    fn rows_and_render_are_deterministic_across_jobs() {
        let cfg = tiny_cfg(vec![0.0, 4.0]);
        let sink1 = SharedSink::memory(0);
        let a = run_cfg(&cfg, 1, &sink1);
        let ev1 = sink1.drain();
        let sink2 = SharedSink::memory(0);
        let b = run_cfg(&cfg, 2, &sink2);
        let ev2 = sink2.drain();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.render(), b.render());
        assert_eq!(d2_obs::to_jsonl(&ev1), d2_obs::to_jsonl(&ev2));
        assert!(ev1
            .iter()
            .any(|e| matches!(e, TraceEvent::Stabilize { .. })));
        assert!(
            ev1.iter()
                .any(|e| matches!(e, TraceEvent::ChurnLookup { .. })),
            "sampled lookups must appear in the trace"
        );
    }

    #[test]
    fn render_has_one_row_per_multiplier() {
        let churn = run_cfg(&tiny_cfg(vec![0.0, 2.0]), 2, &SharedSink::null());
        let table = churn.render();
        assert_eq!(churn.rows.len(), 2);
        assert!(table.contains("churn"));
        assert!(table.contains("ok"));
        assert_eq!(table.lines().count(), 5, "title + header + rule + 2 rows");
    }
}
