//! Deterministic parallel execution of independent experiment cells.
//!
//! Experiment suites sweep a grid of parameters where each cell (one
//! `(system, size, kbps, mode)` point, one figure, one workload) is an
//! independent simulation. This module fans those cells out over a
//! scoped worker pool while keeping every observable output —
//! `PerfReport`s, rendered text, trace JSONL — **byte-identical to the
//! sequential run at any worker count**. Two mechanisms make that hold:
//!
//! 1. **Per-cell seeds.** Each cell derives its RNG seed from the base
//!    seed and the cell's coordinates via [`derive_seed`], so a cell's
//!    random stream never depends on which cells ran before it (the
//!    sequential code reused one RNG across cells, which would make any
//!    reordering observable).
//! 2. **Canonical merge.** Workers buffer their trace events in private
//!    per-cell sinks; the caller merges them into the shared sink in
//!    canonical cell order after the fan-out completes. Completion order
//!    never leaks into the trace.
//!
//! The pool itself is plain `std::thread::scope` — no work-stealing
//! runtime, no channels, no extra dependencies. Workers claim cell
//! indices from an atomic counter and park each result in its own slot,
//! so results come back positionally, not in completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller does not say.
///
/// Mirrors `std::thread::available_parallelism`, falling back to 1 when
/// the platform cannot report it.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives an independent 64-bit seed for one experiment cell.
///
/// The derivation is a fixed-key FNV-1a style fold of the base seed and
/// the cell coordinates, finished with a splitmix64 mix so that nearby
/// coordinates produce uncorrelated seeds. It is a pure function of its
/// arguments: the same `(base_seed, coords)` always yields the same
/// seed regardless of thread count or execution order.
///
/// Callers deliberately leave the *system under test* out of `coords`
/// when comparing systems, so every system in a sweep sees the same
/// ring layout and workload draw — comparisons stay paired.
pub fn derive_seed(base_seed: u64, coords: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base_seed;
    for &c in coords {
        h ^= c;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer: spreads low-entropy coordinate differences
    // across all 64 bits.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning
/// results in item order.
///
/// `f` receives the item's index alongside the item so workers can
/// label their output without shared state. With `jobs <= 1` (or a
/// single item) this degenerates to a plain sequential loop on the
/// calling thread — no threads are spawned, which keeps the `jobs = 1`
/// path exactly as cheap as the pre-parallel code.
///
/// Panics in `f` propagate to the caller (the scope joins all workers
/// before returning).
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_pure_and_sensitive_to_each_coord() {
        let s = derive_seed(11, &[16, 1500, 0]);
        assert_eq!(s, derive_seed(11, &[16, 1500, 0]));
        assert_ne!(s, derive_seed(12, &[16, 1500, 0]));
        assert_ne!(s, derive_seed(11, &[32, 1500, 0]));
        assert_ne!(s, derive_seed(11, &[16, 384, 0]));
        assert_ne!(s, derive_seed(11, &[16, 1500, 1]));
    }

    #[test]
    fn derive_seed_distinguishes_coord_boundaries() {
        // [1, 2] and [12] must not collide just because the digits line
        // up; the multiply between coordinates separates them.
        assert_ne!(derive_seed(0, &[1, 2]), derive_seed(0, &[12]));
        assert_ne!(derive_seed(0, &[0, 1]), derive_seed(0, &[1, 0]));
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let seq = parallel_map(&items, 1, |i, &x| (i, x * 2));
        for jobs in [2, 3, 8, 64] {
            let par = parallel_map(&items, jobs, |i, &x| (i, x * 2));
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_runs_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..50).collect();
        parallel_map(&items, 4, |_, &i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn available_jobs_is_at_least_one() {
        assert!(available_jobs() >= 1);
    }
}
