//! Figure 10: average speedup of D2 over the traditional DHT, across
//! system sizes, access bandwidths (1500 / 384 kbps), and seq/para modes.
//!
//! Paper shape: seq speedup grows with system size (≥ 1.9× at 1,000
//! nodes); para speedup is smaller, and at 384 kbps D2 *loses* to the
//! traditional DHT at small sizes (parallelism over more nodes beats
//! lookup savings when per-node bandwidth is scarce) before winning again
//! at the largest size.

use crate::fig9::mode_label;
use crate::perf_suite::SuiteResult;
use crate::report::{fmt, render_table};
use d2_core::{Parallelism, SystemKind};

/// One speedup point.
#[derive(Clone, Debug)]
pub struct SpeedupPoint {
    /// System size.
    pub size: usize,
    /// Access bandwidth (kbps).
    pub kbps: u64,
    /// Replay mode.
    pub mode: Parallelism,
    /// Geometric-mean speedup (> 1 means D2 is faster).
    pub speedup: f64,
}

/// The full figure (also reused by Figure 11 with a different baseline).
#[derive(Clone, Debug)]
pub struct SpeedupFigure {
    /// Baseline system the speedup is measured against.
    pub baseline: SystemKind,
    /// All points.
    pub points: Vec<SpeedupPoint>,
}

impl SpeedupFigure {
    /// The speedup for one configuration.
    pub fn value(&self, size: usize, kbps: u64, mode: Parallelism) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.size == size && p.kbps == kbps && p.mode == mode)
            .map(|p| p.speedup)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.size.to_string(),
                    p.kbps.to_string(),
                    mode_label(p.mode).to_string(),
                    fmt(p.speedup),
                ]
            })
            .collect();
        render_table(
            &format!("Speedup of D2 over {}", self.baseline.label()),
            &["nodes", "kbps", "mode", "speedup"],
            &rows,
        )
    }
}

/// Extracts a speedup figure from a suite run against `baseline`.
pub fn from_suite(suite: &SuiteResult, baseline: SystemKind) -> SpeedupFigure {
    let mut points = Vec::new();
    let mut combos: Vec<(usize, u64, Parallelism)> = suite
        .cells
        .keys()
        .filter(|(s, _, _, _)| *s == SystemKind::D2)
        .map(|&(_, size, kbps, mode)| (size, kbps, mode))
        .collect();
    combos.sort_by_key(|&(s, k, m)| (s, k, mode_label(m)));
    combos.dedup();
    for (size, kbps, mode) in combos {
        if let Some(speedup) = suite.speedup(SystemKind::D2, baseline, size, kbps, mode) {
            points.push(SpeedupPoint {
                size,
                kbps,
                mode,
                speedup,
            });
        }
    }
    SpeedupFigure { baseline, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_suite::{self, SuiteConfig};
    use crate::Scale;
    use d2_workload::HarvardTrace;
    use rand::SeedableRng;

    #[test]
    fn seq_speedups_exceed_one() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = SuiteConfig {
            sizes: vec![24],
            kbps: vec![1500],
            measure_groups: 80,
            systems: vec![SystemKind::D2, SystemKind::Traditional],
            ..SuiteConfig::default()
        };
        let suite = perf_suite::run(&trace, &cfg);
        let fig = from_suite(&suite, SystemKind::Traditional);
        let seq = fig.value(24, 1500, Parallelism::Seq).unwrap();
        assert!(seq > 1.0, "seq speedup {seq} should exceed 1");
        // Para exists too (may be below seq).
        assert!(fig.value(24, 1500, Parallelism::Para).is_some());
        assert!(!fig.render().is_empty());
    }
}
