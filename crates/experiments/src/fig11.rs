//! Figure 11: average speedup of D2 over the **traditional-file** DHT.
//!
//! Paper shape: comparable seq speedup to Figure 10 at small sizes, but —
//! unlike against the traditional DHT — the speedup does not grow much
//! with system size, because the traditional-file DHT's cache miss rate
//! is also size-stable (users' file working sets are small).

use crate::fig10::{from_suite as speedup_from_suite, SpeedupFigure};
use crate::perf_suite::SuiteResult;
use d2_core::SystemKind;

/// Extracts Figure 11 (speedup vs traditional-file) from a suite run.
pub fn from_suite(suite: &SuiteResult) -> SpeedupFigure {
    speedup_from_suite(suite, SystemKind::TraditionalFile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_suite::{self, SuiteConfig};
    use crate::Scale;
    use d2_core::Parallelism;
    use d2_workload::HarvardTrace;
    use rand::SeedableRng;

    #[test]
    fn d2_beats_traditional_file_in_seq() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = SuiteConfig {
            sizes: vec![24],
            kbps: vec![1500],
            measure_groups: 80,
            systems: vec![SystemKind::D2, SystemKind::TraditionalFile],
            ..SuiteConfig::default()
        };
        let suite = perf_suite::run(&trace, &cfg);
        let fig = from_suite(&suite);
        assert_eq!(fig.baseline, SystemKind::TraditionalFile);
        let seq = fig.value(24, 1500, Parallelism::Seq).unwrap();
        assert!(
            seq > 1.0,
            "seq speedup over traditional-file {seq} should exceed 1"
        );
    }
}
