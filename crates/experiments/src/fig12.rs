//! Figure 12: per-user mean speedup over the traditional DHT in the
//! largest / fastest configuration.
//!
//! Paper shape: nearly half the users beat the overall mean; a few users
//! see a (small) slowdown — those whose replicas happen to sit far away
//! in the network.

use crate::fig9::mode_label;
use crate::perf_suite::SuiteResult;
use crate::report::{fmt, render_table};
use d2_core::{Parallelism, SystemKind};

/// Per-user speedups for one mode.
#[derive(Clone, Debug)]
pub struct Fig12Series {
    /// Replay mode.
    pub mode: Parallelism,
    /// `(user, speedup)`, best first.
    pub users: Vec<(u32, f64)>,
}

impl Fig12Series {
    /// Users slower under D2 (speedup < 1).
    pub fn slowdowns(&self) -> usize {
        self.users.iter().filter(|(_, s)| *s < 1.0).count()
    }
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig12 {
    /// Configuration measured.
    pub size: usize,
    /// Access bandwidth.
    pub kbps: u64,
    /// One series per mode.
    pub series: Vec<Fig12Series>,
}

impl Fig12 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for s in &self.series {
            for (user, speedup) in &s.users {
                rows.push(vec![
                    mode_label(s.mode).to_string(),
                    format!("u{user}"),
                    fmt(*speedup),
                ]);
            }
        }
        render_table(
            &format!(
                "Figure 12: per-user speedup over traditional ({} nodes, {} kbps)",
                self.size, self.kbps
            ),
            &["mode", "user", "speedup"],
            &rows,
        )
    }
}

/// Extracts Figure 12 from a suite run at the given configuration.
pub fn from_suite(suite: &SuiteResult, size: usize, kbps: u64) -> Fig12 {
    let mut series = Vec::new();
    for mode in [Parallelism::Seq, Parallelism::Para] {
        if let Some(per_user) =
            suite.per_user_speedup(SystemKind::D2, SystemKind::Traditional, size, kbps, mode)
        {
            let mut users: Vec<(u32, f64)> = per_user.into_iter().collect();
            users.sort_by(|a, b| b.1.total_cmp(&a.1));
            series.push(Fig12Series { mode, users });
        }
    }
    Fig12 { size, kbps, series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_suite::{self, SuiteConfig};
    use crate::Scale;
    use d2_workload::HarvardTrace;
    use rand::SeedableRng;

    #[test]
    fn most_users_speed_up() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = SuiteConfig {
            sizes: vec![24],
            kbps: vec![1500],
            measure_groups: 120,
            systems: vec![SystemKind::D2, SystemKind::Traditional],
            ..SuiteConfig::default()
        };
        let suite = perf_suite::run(&trace, &cfg);
        let fig = from_suite(&suite, 24, 1500);
        assert!(!fig.series.is_empty());
        let seq = fig
            .series
            .iter()
            .find(|s| s.mode == Parallelism::Seq)
            .unwrap();
        assert!(!seq.users.is_empty());
        let faster = seq.users.iter().filter(|(_, s)| *s > 1.0).count();
        assert!(
            faster * 2 >= seq.users.len(),
            "most users should speed up: {faster}/{}",
            seq.users.len()
        );
        assert!(!fig.render().is_empty());
    }
}
