//! Figure 13: mean lookup-cache miss rate per system, size, and mode.
//!
//! Paper shape: D2 holds a low (~13% seq) miss rate independent of system
//! size; the traditional DHT starts high (~47%) and grows with size; the
//! traditional-file DHT sits between the two and stays size-stable.

use crate::fig9::mode_label;
use crate::perf_suite::SuiteResult;
use crate::report::{fmt, render_table};
use d2_core::{Parallelism, SystemKind};

/// One measured miss rate.
#[derive(Clone, Debug)]
pub struct Fig13Point {
    /// System.
    pub system: SystemKind,
    /// System size.
    pub size: usize,
    /// Replay mode.
    pub mode: Parallelism,
    /// Lookup-cache miss rate in [0, 1].
    pub miss_rate: f64,
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig13 {
    /// All points.
    pub points: Vec<Fig13Point>,
}

impl Fig13 {
    /// The miss rate for one configuration.
    pub fn value(&self, system: SystemKind, size: usize, mode: Parallelism) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.system == system && p.size == size && p.mode == mode)
            .map(|p| p.miss_rate)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.system.label().to_string(),
                    p.size.to_string(),
                    mode_label(p.mode).to_string(),
                    fmt(p.miss_rate),
                ]
            })
            .collect();
        render_table(
            "Figure 13: mean lookup cache miss rate",
            &["system", "nodes", "mode", "miss rate"],
            &rows,
        )
    }
}

/// Extracts Figure 13 from a suite run (first bandwidth swept).
pub fn from_suite(suite: &SuiteResult) -> Fig13 {
    let mut points = Vec::new();
    for (&(system, size, _kbps, mode), report) in &suite.cells {
        if points
            .iter()
            .any(|p: &Fig13Point| p.system == system && p.size == size && p.mode == mode)
        {
            continue;
        }
        points.push(Fig13Point {
            system,
            size,
            mode,
            miss_rate: report.cache_miss_rate(),
        });
    }
    points.sort_by_key(|p| (p.system.label(), p.size, mode_label(p.mode)));
    Fig13 { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_suite::{self, SuiteConfig};
    use crate::Scale;
    use d2_workload::HarvardTrace;
    use rand::SeedableRng;

    #[test]
    fn d2_miss_rate_below_traditional() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = SuiteConfig {
            sizes: vec![16, 32],
            kbps: vec![1500],
            measure_groups: 80,
            ..SuiteConfig::default()
        };
        let suite = perf_suite::run(&trace, &cfg);
        let fig = from_suite(&suite);
        for &size in &[16usize, 32] {
            let d2 = fig.value(SystemKind::D2, size, Parallelism::Seq).unwrap();
            let trad = fig
                .value(SystemKind::Traditional, size, Parallelism::Seq)
                .unwrap();
            assert!(d2 < trad, "size {size}: d2 {d2} vs traditional {trad}");
        }
        // Traditional miss rate grows with size; D2's stays flat-ish.
        let trad_small = fig
            .value(SystemKind::Traditional, 16, Parallelism::Seq)
            .unwrap();
        let trad_big = fig
            .value(SystemKind::Traditional, 32, Parallelism::Seq)
            .unwrap();
        assert!(
            trad_big >= trad_small * 0.9,
            "traditional miss rate should not shrink with size: {trad_small} -> {trad_big}"
        );
        assert!(!fig.render().is_empty());
    }
}
