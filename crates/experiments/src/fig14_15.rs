//! Figures 14 and 15: scatter of access-group completion times, D2 vs
//! the traditional DHT (Fig. 14) and vs the traditional-file DHT
//! (Fig. 15), in seq and para modes.
//!
//! Paper shape: the weight of the distribution lies above the diagonal
//! (D2 faster); in para mode more points dip below, but no group that
//! takes > 5 s under D2 completes much faster under the baselines.

use crate::fig9::mode_label;
use crate::perf_suite::SuiteResult;
use crate::report::render_table;
use d2_core::{Parallelism, SystemKind};

/// A scatter data set for one (baseline, mode).
#[derive(Clone, Debug)]
pub struct Scatter {
    /// Baseline system (x-axis).
    pub baseline: SystemKind,
    /// Replay mode.
    pub mode: Parallelism,
    /// `(baseline latency, d2 latency)` per access group, seconds.
    pub pairs: Vec<(f64, f64)>,
}

impl Scatter {
    /// Fraction of groups above the diagonal (faster under D2).
    pub fn fraction_above_diagonal(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs.iter().filter(|(base, d2)| base > d2).count() as f64 / self.pairs.len() as f64
    }

    /// Latency-weighted fraction: total baseline seconds spent in groups
    /// where D2 wins (the "weight of the distribution" the paper eyes).
    pub fn weight_above_diagonal(&self) -> f64 {
        let total: f64 = self.pairs.iter().map(|(b, _)| b).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.pairs
            .iter()
            .filter(|(b, d)| b > d)
            .map(|(b, _)| b)
            .sum::<f64>()
            / total
    }

    /// Summary of the slow tail: among groups slower than `threshold`
    /// seconds under either system, the fraction where D2 is faster.
    pub fn slow_tail_d2_wins(&self, threshold: f64) -> f64 {
        let tail: Vec<&(f64, f64)> = self
            .pairs
            .iter()
            .filter(|(b, d)| *b > threshold || *d > threshold)
            .collect();
        if tail.is_empty() {
            return 1.0;
        }
        tail.iter().filter(|(b, d)| b >= d).count() as f64 / tail.len() as f64
    }
}

/// Both figures' data.
#[derive(Clone, Debug)]
pub struct Fig14And15 {
    /// One scatter per (baseline, mode).
    pub scatters: Vec<Scatter>,
}

impl Fig14And15 {
    /// The scatter for a configuration.
    pub fn scatter(&self, baseline: SystemKind, mode: Parallelism) -> Option<&Scatter> {
        self.scatters
            .iter()
            .find(|s| s.baseline == baseline && s.mode == mode)
    }

    /// Renders summary statistics (the full point cloud is available via
    /// [`Scatter::pairs`]).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .scatters
            .iter()
            .map(|s| {
                vec![
                    s.baseline.label().to_string(),
                    mode_label(s.mode).to_string(),
                    s.pairs.len().to_string(),
                    format!("{:.2}", s.fraction_above_diagonal()),
                    format!("{:.2}", s.weight_above_diagonal()),
                    format!("{:.2}", s.slow_tail_d2_wins(5.0)),
                ]
            })
            .collect();
        render_table(
            "Figures 14/15: access-group latency scatter summaries (D2 vs baseline)",
            &[
                "baseline",
                "mode",
                "groups",
                "frac>diag",
                "weight>diag",
                "slow-tail-wins",
            ],
            &rows,
        )
    }
}

/// Extracts both scatters from a suite run at one configuration.
pub fn from_suite(suite: &SuiteResult, size: usize, kbps: u64) -> Fig14And15 {
    let mut scatters = Vec::new();
    for baseline in [SystemKind::Traditional, SystemKind::TraditionalFile] {
        for mode in [Parallelism::Seq, Parallelism::Para] {
            let pairs = suite.latency_pairs(SystemKind::D2, baseline, size, kbps, mode);
            if !pairs.is_empty() {
                scatters.push(Scatter {
                    baseline,
                    mode,
                    pairs,
                });
            }
        }
    }
    Fig14And15 { scatters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_suite::{self, SuiteConfig};
    use crate::Scale;
    use d2_workload::HarvardTrace;
    use rand::SeedableRng;

    #[test]
    fn weight_of_distribution_above_diagonal_in_seq() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = SuiteConfig {
            sizes: vec![24],
            kbps: vec![1500],
            measure_groups: 120,
            ..SuiteConfig::default()
        };
        let suite = perf_suite::run(&trace, &cfg);
        let fig = from_suite(&suite, 24, 1500);
        let seq = fig
            .scatter(SystemKind::Traditional, Parallelism::Seq)
            .unwrap();
        assert!(
            seq.weight_above_diagonal() > 0.5,
            "weight above diagonal {} should exceed 0.5",
            seq.weight_above_diagonal()
        );
        assert!(!fig.render().is_empty());
    }
}
