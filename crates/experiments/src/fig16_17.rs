//! Figures 16 and 17: storage load imbalance (normalized standard
//! deviation of node load) over time, for the Harvard (Fig. 16) and
//! Webcache (Fig. 17) workloads, across four systems: traditional-file,
//! traditional, D2, and Traditional+Merc.
//!
//! Paper shape: traditional-file is the worst (whole files on single
//! nodes under a 4-orders-of-magnitude size distribution); D2 tracks
//! Traditional+Merc closely — i.e. it gives up little balance by
//! abandoning consistent hashing — and stays at or below the traditional
//! DHT most of the time.

use crate::balance_sim::{self, BalanceRun, BalanceSystem, ChurnStream};
use crate::exec;
use crate::report::render_table;
use d2_core::ClusterConfig;
use d2_obs::SharedSink;
use d2_workload::{HarvardTrace, WebTrace};

/// Which workload a figure covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceWorkload {
    /// Figure 16.
    Harvard,
    /// Figure 17.
    Webcache,
}

/// The imbalance-over-time figure for one workload.
#[derive(Clone, Debug)]
pub struct ImbalanceFigure {
    /// Which workload.
    pub workload: BalanceWorkload,
    /// One run per system.
    pub runs: Vec<BalanceRun>,
}

impl ImbalanceFigure {
    /// The run for one system.
    pub fn run_for(&self, system: BalanceSystem) -> Option<&BalanceRun> {
        self.runs.iter().find(|r| r.system == system)
    }

    /// Mean imbalance of the last `frac` of each run's samples (the
    /// converged regime the paper's plots settle into).
    pub fn tail_mean(&self, system: BalanceSystem, frac: f64) -> Option<f64> {
        let run = self.run_for(system)?;
        let pts = run.imbalance.points();
        if pts.is_empty() {
            return None;
        }
        let start = ((1.0 - frac) * pts.len() as f64) as usize;
        let tail = &pts[start.min(pts.len() - 1)..];
        Some(tail.iter().map(|(_, v)| v).sum::<f64>() / tail.len() as f64)
    }

    /// Renders a down-sampled series table.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for run in &self.runs {
            for (t, v) in run.imbalance.downsample(12) {
                rows.push(vec![
                    run.system.label().to_string(),
                    format!("{:.1}h", t.as_secs_f64() / 3600.0),
                    format!("{v:.3}"),
                ]);
            }
        }
        let title = match self.workload {
            BalanceWorkload::Harvard => "Figure 16: load imbalance over time (Harvard)",
            BalanceWorkload::Webcache => "Figure 17: load imbalance over time (Webcache)",
        };
        render_table(title, &["system", "time", "norm-stddev"], &rows)
    }
}

/// All four systems, matching the paper's lines.
pub const ALL_SYSTEMS: [BalanceSystem; 4] = [
    BalanceSystem::TraditionalFile,
    BalanceSystem::Traditional,
    BalanceSystem::D2,
    BalanceSystem::TraditionalMerc,
];

/// Runs one workload's per-system simulations, fanning out over up to
/// `jobs` workers. Each system's run is already independent (it builds
/// its own cluster and churn stream), so the only shared state is the
/// trace sink: workers record into private buffers that are merged in
/// system order afterwards, keeping the trace byte-identical to the
/// sequential run.
fn run_workload(
    workload: BalanceWorkload,
    streams: &(dyn Fn(BalanceSystem) -> ChurnStream + Sync),
    cfg: &ClusterConfig,
    systems: &[BalanceSystem],
    warmup: d2_sim::SimTime,
    sink: &SharedSink,
    jobs: usize,
) -> ImbalanceFigure {
    let sink_enabled = sink.enabled();
    let outcomes = exec::parallel_map(systems, jobs, |_, &s| {
        let run_sink = if sink_enabled {
            SharedSink::memory(0)
        } else {
            SharedSink::null()
        };
        let run = balance_sim::run_traced(s, cfg, &streams(s), warmup, &run_sink);
        (run, run_sink.drain())
    });
    let mut runs = Vec::with_capacity(outcomes.len());
    for (run, events) in outcomes {
        sink.extend(events);
        runs.push(run);
    }
    ImbalanceFigure { workload, runs }
}

/// Runs Figure 16 (Harvard).
pub fn fig16(
    trace: &HarvardTrace,
    cfg: &ClusterConfig,
    systems: &[BalanceSystem],
    warmup: d2_sim::SimTime,
) -> ImbalanceFigure {
    fig16_traced(trace, cfg, systems, warmup, &SharedSink::null(), 1)
}

/// [`fig16`] with every per-system run traced into `sink`, using up to
/// `jobs` worker threads (results are identical at any count).
pub fn fig16_traced(
    trace: &HarvardTrace,
    cfg: &ClusterConfig,
    systems: &[BalanceSystem],
    warmup: d2_sim::SimTime,
    sink: &SharedSink,
    jobs: usize,
) -> ImbalanceFigure {
    run_workload(
        BalanceWorkload::Harvard,
        &|s: BalanceSystem| balance_sim::harvard_churn(trace, s.system_kind()),
        cfg,
        systems,
        warmup,
        sink,
        jobs,
    )
}

/// Runs Figure 17 (Webcache).
pub fn fig17(
    trace: &WebTrace,
    cfg: &ClusterConfig,
    systems: &[BalanceSystem],
    warmup: d2_sim::SimTime,
) -> ImbalanceFigure {
    fig17_traced(trace, cfg, systems, warmup, &SharedSink::null(), 1)
}

/// [`fig17`] with every per-system run traced into `sink`, using up to
/// `jobs` worker threads (results are identical at any count).
pub fn fig17_traced(
    trace: &WebTrace,
    cfg: &ClusterConfig,
    systems: &[BalanceSystem],
    warmup: d2_sim::SimTime,
    sink: &SharedSink,
    jobs: usize,
) -> ImbalanceFigure {
    run_workload(
        BalanceWorkload::Webcache,
        &|s: BalanceSystem| balance_sim::webcache_churn(trace, s.system_kind()),
        cfg,
        systems,
        warmup,
        sink,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rand::SeedableRng;

    #[test]
    fn harvard_imbalance_ordering() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = Scale::Quick.cluster(3);
        let fig = fig16(
            &trace,
            &cfg,
            &ALL_SYSTEMS,
            d2_sim::SimTime::from_secs(6 * 3600),
        );
        let d2 = fig.tail_mean(BalanceSystem::D2, 0.3).unwrap();
        let tf = fig.tail_mean(BalanceSystem::TraditionalFile, 0.3).unwrap();
        let merc = fig.tail_mean(BalanceSystem::TraditionalMerc, 0.3).unwrap();
        // Traditional-file is the worst; D2 lands near Traditional+Merc.
        assert!(d2 < tf, "d2 {d2} should beat traditional-file {tf}");
        assert!(
            d2 < merc * 4.0 + 0.3,
            "d2 {d2} should be in Traditional+Merc's neighbourhood {merc}"
        );
        assert!(!fig.render().is_empty());
    }

    #[test]
    fn webcache_run_completes_with_volatile_imbalance() {
        let trace = WebTrace::generate(
            &Scale::Quick.web(),
            &mut rand::rngs::StdRng::seed_from_u64(6),
        );
        let cfg = Scale::Quick.cluster(3);
        let fig = fig17(
            &trace,
            &cfg,
            &[BalanceSystem::D2, BalanceSystem::Traditional],
            d2_sim::SimTime::from_secs(3600),
        );
        let d2 = fig.run_for(BalanceSystem::D2).unwrap();
        assert!(!d2.imbalance.is_empty());
        // The cache starts empty, so early imbalance is extreme and must
        // come down once balancing kicks in.
        let early = d2.imbalance.points()[0].1;
        let late = fig.tail_mean(BalanceSystem::D2, 0.25).unwrap();
        assert!(
            late < early || early == 0.0,
            "imbalance should fall from cold start: early {early}, late {late}"
        );
    }
}
