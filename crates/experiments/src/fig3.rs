//! Figure 3: mean nodes accessed per user each hour, normalized against
//! the traditional scenario, for the Harvard, HP, and Web workloads.
//!
//! Scenarios (Section 4.1): **traditional** assigns blocks to uniformly
//! random nodes; **ordered** assigns keys consistent with the
//! alphabetical/preorder ordering of block names; **lower-bound** is
//! `ceil(blocks accessed / blocks per node)`, the unreachable optimum.
//! Every node stores the same number of blocks (the paper's simplifying
//! assumption for this analysis; Sections 8–9 use the real balancer).

use crate::report::{fmt, render_table};
use d2_types::BLOCK_SIZE;
use d2_workload::{HarvardTrace, HpTrace, WebTrace};
use std::collections::{HashMap, HashSet};

/// One workload's normalized results.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Workload label.
    pub workload: String,
    /// Mean nodes per user-hour, traditional placement (absolute).
    pub traditional_abs: f64,
    /// Ordered placement, normalized against traditional (= 1.0).
    pub ordered: f64,
    /// Lower bound, normalized against traditional.
    pub lower_bound: f64,
    /// Nodes in the scenario (total blocks / blocks-per-node).
    pub nodes: usize,
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// One row per workload.
    pub rows: Vec<Fig3Row>,
    /// Per-node capacity used (paper: 250 MB).
    pub node_capacity_bytes: u64,
}

impl Fig3 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    "1.0".to_string(),
                    fmt(r.ordered),
                    fmt(r.lower_bound),
                    r.nodes.to_string(),
                    fmt(r.traditional_abs),
                ]
            })
            .collect();
        render_table(
            "Figure 3: mean nodes accessed per user-hour (normalized to traditional)",
            &[
                "workload",
                "traditional",
                "ordered",
                "lower-bound",
                "nodes",
                "trad-abs",
            ],
            &rows,
        )
    }
}

/// `(user, hour, ordered-rank)` stream: the minimal view of a workload
/// this analysis needs.
struct RankedAccesses {
    /// Per (user, hour): the distinct block ranks accessed.
    buckets: HashMap<(u32, u64), HashSet<u64>>,
    /// Total stored blocks (defines node count).
    total_blocks: u64,
}

fn analyze(ranked: &RankedAccesses, node_capacity_bytes: u64, label: &str) -> Fig3Row {
    let blocks_per_node = (node_capacity_bytes / BLOCK_SIZE as u64).max(1);
    let nodes = ranked.total_blocks.div_ceil(blocks_per_node).max(1);
    let mut sum_trad = 0.0;
    let mut sum_ord = 0.0;
    let mut sum_lb = 0.0;
    let mut buckets = 0.0f64;
    for ranks in ranked.buckets.values() {
        if ranks.is_empty() {
            continue;
        }
        let trad: HashSet<u64> = ranks.iter().map(|&r| splitmix(r) % nodes).collect();
        let ord: HashSet<u64> = ranks.iter().map(|&r| r / blocks_per_node).collect();
        let lb = (ranks.len() as u64).div_ceil(blocks_per_node);
        sum_trad += trad.len() as f64;
        sum_ord += ord.len() as f64;
        sum_lb += lb as f64;
        buckets += 1.0;
    }
    let trad = sum_trad / buckets.max(1.0);
    Fig3Row {
        workload: label.to_string(),
        traditional_abs: trad,
        ordered: (sum_ord / buckets.max(1.0)) / trad.max(1e-12),
        lower_bound: (sum_lb / buckets.max(1.0)) / trad.max(1e-12),
        nodes: nodes as usize,
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hour_of(at: d2_sim::SimTime) -> u64 {
    at.as_secs() / 3600
}

/// Ranks a Harvard trace: blocks ordered by their locality-preserving
/// keys (preorder path order), i.e. the *ordered* scenario's layout.
fn rank_harvard(trace: &HarvardTrace) -> RankedAccesses {
    // Global ordered ranks: sort every block of every file by D2 key.
    let mut keyed: Vec<(d2_types::Key, u32, u64)> = Vec::new();
    for (id, f) in trace.namespace.iter() {
        for b in 0..=f.data_blocks() {
            keyed.push((trace.namespace.block_name(id, b).d2_key(), id.0, b));
        }
    }
    keyed.sort();
    let rank: HashMap<(u32, u64), u64> = keyed
        .iter()
        .enumerate()
        .map(|(i, &(_, f, b))| ((f, b), i as u64))
        .collect();
    let total_blocks = keyed.len() as u64;

    let mut buckets: HashMap<(u32, u64), HashSet<u64>> = HashMap::new();
    for a in &trace.accesses {
        if a.op != d2_workload::FileOp::Read {
            continue;
        }
        let bucket = buckets.entry((a.user, hour_of(a.at))).or_default();
        for name in trace.namespace.blocks_of_access(a) {
            if let Some(&r) = rank.get(&(a.file.0, name.block_no)) {
                bucket.insert(r);
            }
        }
    }
    RankedAccesses {
        buckets,
        total_blocks,
    }
}

/// Ranks an HP trace: the disk block number *is* the ordered rank.
fn rank_hp(trace: &HpTrace) -> RankedAccesses {
    let mut buckets: HashMap<(u32, u64), HashSet<u64>> = HashMap::new();
    for a in &trace.accesses {
        buckets
            .entry((a.app, hour_of(a.at)))
            .or_default()
            .insert(a.block_no);
    }
    RankedAccesses {
        buckets,
        total_blocks: trace.config.disk_blocks,
    }
}

/// Ranks a Web trace: objects ordered by reversed-domain name (their D2
/// keys), each expanded to its blocks.
fn rank_web(trace: &WebTrace) -> RankedAccesses {
    // Order objects by their first block's D2 key; lay blocks out in that
    // order.
    let mut order: Vec<(d2_types::Key, u32)> = trace
        .objects
        .iter()
        .enumerate()
        .map(|(i, _)| (trace.blocks_of(i as u32)[0].d2_key(), i as u32))
        .collect();
    order.sort();
    let mut first_rank: HashMap<u32, u64> = HashMap::new();
    let mut next = 0u64;
    for (_, obj) in &order {
        let nblocks = trace.blocks_of(*obj).len() as u64;
        first_rank.insert(*obj, next);
        next += nblocks;
    }
    let total_blocks = next;

    let mut buckets: HashMap<(u32, u64), HashSet<u64>> = HashMap::new();
    for a in &trace.accesses {
        let bucket = buckets.entry((a.user, hour_of(a.at))).or_default();
        let base = first_rank[&a.object];
        let nblocks = trace.blocks_of(a.object).len() as u64;
        for b in 0..nblocks {
            bucket.insert(base + b);
        }
    }
    RankedAccesses {
        buckets,
        total_blocks,
    }
}

/// Runs the Figure 3 analysis over all three workloads.
pub fn run(harvard: &HarvardTrace, hp: &HpTrace, web: &WebTrace, node_capacity_bytes: u64) -> Fig3 {
    let rows = vec![
        analyze(&rank_harvard(harvard), node_capacity_bytes, "Harvard"),
        analyze(&rank_hp(hp), node_capacity_bytes, "HP"),
        analyze(&rank_web(web), node_capacity_bytes, "Web"),
    ];
    Fig3 {
        rows,
        node_capacity_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2_workload::{HarvardConfig, HpConfig, WebConfig};
    use rand::SeedableRng;

    fn quick() -> Fig3 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let harvard = HarvardTrace::generate(
            &HarvardConfig {
                users: 8,
                days: 1.0,
                initial_bytes: 96 << 20,
                ..HarvardConfig::default()
            },
            &mut rng,
        );
        let hp = HpTrace::generate(
            &HpConfig {
                apps: 6,
                days: 1.0,
                disk_blocks: 400_000,
                ..HpConfig::default()
            },
            &mut rng,
        );
        let web = WebTrace::generate(
            // A large object universe: with too few domains the node count
            // saturates and the traditional/ordered gap collapses.
            &WebConfig {
                domains: 400,
                users: 10,
                days: 1.0,
                ..WebConfig::default()
            },
            &mut rng,
        );
        // Small per-node capacity so the scenario has enough nodes for the
        // locality gap to show (the paper's 250 MB nodes over 40–93 GB
        // traces give 160–370 nodes).
        run(&harvard, &hp, &web, 2 << 20)
    }

    #[test]
    fn ordered_beats_traditional_on_all_workloads() {
        let fig = quick();
        assert_eq!(fig.rows.len(), 3);
        for row in &fig.rows {
            assert!(
                row.ordered < 0.6,
                "{}: ordered ({}) should be well below traditional (1.0)",
                row.workload,
                row.ordered
            );
            assert!(row.lower_bound <= row.ordered + 1e-9);
            assert!(row.lower_bound > 0.0);
            assert!(row.traditional_abs >= 1.0);
            assert!(row.nodes > 1);
        }
    }

    #[test]
    fn renders_table() {
        let fig = quick();
        let text = fig.render();
        assert!(text.contains("Harvard"));
        assert!(text.contains("HP"));
        assert!(text.contains("Web"));
        assert!(text.contains("lower-bound"));
    }

    #[test]
    fn smaller_capacity_means_more_nodes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let harvard = HarvardTrace::generate(
            &HarvardConfig {
                users: 4,
                days: 0.5,
                initial_bytes: 32 << 20,
                ..HarvardConfig::default()
            },
            &mut rng,
        );
        let hp = HpTrace::generate(
            &HpConfig {
                apps: 2,
                days: 0.2,
                disk_blocks: 100_000,
                ..HpConfig::default()
            },
            &mut rng,
        );
        let web = WebTrace::generate(
            &WebConfig {
                domains: 20,
                users: 4,
                days: 0.3,
                ..WebConfig::default()
            },
            &mut rng,
        );
        let big = run(&harvard, &hp, &web, 64 << 20);
        let small = run(&harvard, &hp, &web, 8 << 20);
        for (b, s) in big.rows.iter().zip(&small.rows) {
            assert!(s.nodes > b.nodes);
        }
    }
}
