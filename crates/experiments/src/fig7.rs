//! Figure 7: task unavailability of D2 vs the traditional and
//! traditional-file DHTs, across inter-arrival thresholds, over several
//! trials with different node placements.

use crate::report::{fmt, render_table};
use d2_core::{AvailabilitySim, ClusterConfig, SystemKind};
use d2_sim::{FailureModel, FailureTrace, SimTime};
use d2_workload::{split_tasks, HarvardTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Results for one (system, inter) cell across trials.
#[derive(Clone, Debug)]
pub struct Fig7Cell {
    /// System measured.
    pub system: SystemKind,
    /// Task inter-arrival threshold.
    pub inter: SimTime,
    /// Unavailability per trial.
    pub trials: Vec<f64>,
}

impl Fig7Cell {
    /// Mean across trials.
    pub fn mean(&self) -> f64 {
        if self.trials.is_empty() {
            0.0
        } else {
            self.trials.iter().sum::<f64>() / self.trials.len() as f64
        }
    }

    /// Max across trials.
    pub fn max(&self) -> f64 {
        self.trials.iter().copied().fold(0.0, f64::max)
    }

    /// Min across trials.
    pub fn min(&self) -> f64 {
        self.trials.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// One cell per (system, inter).
    pub cells: Vec<Fig7Cell>,
}

impl Fig7 {
    /// The cell for a given system and inter, if present.
    pub fn cell(&self, system: SystemKind, inter: SimTime) -> Option<&Fig7Cell> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.inter == inter)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.system.label().to_string(),
                    format!("{}s", c.inter.as_secs()),
                    fmt(c.mean()),
                    fmt(c.min()),
                    fmt(c.max()),
                    c.trials.iter().filter(|&&t| t == 0.0).count().to_string(),
                ]
            })
            .collect();
        render_table(
            "Figure 7: task unavailability (fraction of tasks that fail)",
            &["system", "inter", "mean", "min", "max", "zero-trials"],
            &rows,
        )
    }
}

/// Runs the Figure 7 experiment: `trials` placements per system, one
/// failure trace shared across systems (as in the paper).
#[allow(clippy::too_many_arguments)]
pub fn run(
    trace: &HarvardTrace,
    base_cfg: &ClusterConfig,
    failure_model: &FailureModel,
    inters: &[SimTime],
    trials: usize,
    warmup_days: f64,
    failure_seed: u64,
) -> Fig7 {
    let failures = FailureTrace::generate(
        base_cfg.nodes,
        failure_model,
        &mut StdRng::seed_from_u64(failure_seed),
    );
    let max_dur = SimTime::from_secs(300);
    let systems = [
        SystemKind::D2,
        SystemKind::Traditional,
        SystemKind::TraditionalFile,
    ];
    let mut cells: Vec<Fig7Cell> = systems
        .iter()
        .flat_map(|&s| {
            inters.iter().map(move |&i| Fig7Cell {
                system: s,
                inter: i,
                trials: vec![],
            })
        })
        .collect();

    for trial in 0..trials {
        let cfg = ClusterConfig {
            seed: base_cfg.seed + 1000 * trial as u64,
            ..*base_cfg
        };
        for &system in &systems {
            let mut sim = AvailabilitySim::build(system, &cfg, trace, warmup_days);
            for &inter in inters {
                let tasks = split_tasks(&trace.accesses, inter, max_dur);
                // Clone the warmed sim per inter so failures replay from
                // the same initial state.
                let mut run_sim = sim.clone();
                let report = run_sim.run(trace, &tasks, &failures);
                let cell = cells
                    .iter_mut()
                    .find(|c| c.system == system && c.inter == inter)
                    .expect("cell exists");
                cell.trials.push(report.task_unavailability());
            }
            // Keep `sim` warm state untouched for clarity.
            let _ = &mut sim;
        }
    }
    Fig7 { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn d2_mean_unavailability_is_lowest() {
        let trace = HarvardTrace::generate(&Scale::Quick.harvard(), &mut StdRng::seed_from_u64(5));
        let cfg = Scale::Quick.cluster(3);
        // A deliberately harsh failure model so the quick test separates
        // the systems.
        let model = FailureModel {
            mttf_secs: 86_400.0,
            mttr_secs: 4.0 * 3600.0,
            correlated_events: 3.0,
            correlated_fraction: 0.2,
            correlated_mttr_secs: 2.0 * 3600.0,
            duration_secs: trace.config.days * 86_400.0,
        };
        let fig = run(&trace, &cfg, &model, &[SimTime::from_secs(5)], 2, 0.05, 99);
        let d2 = fig
            .cell(SystemKind::D2, SimTime::from_secs(5))
            .unwrap()
            .mean();
        let trad = fig
            .cell(SystemKind::Traditional, SimTime::from_secs(5))
            .unwrap()
            .mean();
        assert!(
            d2 <= trad,
            "d2 unavailability {d2} must not exceed traditional {trad}"
        );
        assert!(!fig.render().is_empty());
    }
}
