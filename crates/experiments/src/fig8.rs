//! Figure 8: unavailability experienced by individual users, ranked by
//! decreasing unavailability (inter = 5 s). D2's failures affect fewer
//! users, each more deeply — the trade-off Section 4.3 discusses.

use crate::report::{fmt, render_table};
use d2_core::{AvailabilitySim, ClusterConfig, SystemKind};
use d2_sim::{FailureModel, FailureTrace, SimTime};
use d2_workload::{split_tasks, HarvardTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ranked per-user unavailability for one system.
#[derive(Clone, Debug)]
pub struct Fig8Series {
    /// System measured.
    pub system: SystemKind,
    /// `(user, unavailability)`, worst first; zero-unavailability users
    /// included at the tail.
    pub ranked: Vec<(u32, f64)>,
}

impl Fig8Series {
    /// Users with nonzero unavailability (the points the paper plots).
    pub fn affected(&self) -> usize {
        self.ranked.iter().filter(|(_, u)| *u > 0.0).count()
    }
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// One series per system.
    pub series: Vec<Fig8Series>,
}

impl Fig8 {
    /// Renders the ranked points.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for s in &self.series {
            for (rank, (user, unavail)) in s.ranked.iter().filter(|(_, u)| *u > 0.0).enumerate() {
                rows.push(vec![
                    s.system.label().to_string(),
                    rank.to_string(),
                    format!("u{user}"),
                    fmt(*unavail),
                ]);
            }
            rows.push(vec![
                s.system.label().to_string(),
                "-".into(),
                format!("({} affected users)", s.affected()),
                "".into(),
            ]);
        }
        render_table(
            "Figure 8: per-user task unavailability, ranked (inter = 5s)",
            &["system", "rank", "user", "unavailability"],
            &rows,
        )
    }
}

/// Runs the Figure 8 experiment (single trial, inter = 5 s).
pub fn run(
    trace: &HarvardTrace,
    cfg: &ClusterConfig,
    failure_model: &FailureModel,
    warmup_days: f64,
    failure_seed: u64,
) -> Fig8 {
    let failures = FailureTrace::generate(
        cfg.nodes,
        failure_model,
        &mut StdRng::seed_from_u64(failure_seed),
    );
    let tasks = split_tasks(
        &trace.accesses,
        SimTime::from_secs(5),
        SimTime::from_secs(300),
    );
    let mut series = Vec::new();
    for system in [
        SystemKind::D2,
        SystemKind::Traditional,
        SystemKind::TraditionalFile,
    ] {
        let mut sim = AvailabilitySim::build(system, cfg, trace, warmup_days);
        let report = sim.run(trace, &tasks, &failures);
        series.push(Fig8Series {
            system,
            ranked: report.ranked_user_unavailability(),
        });
    }
    Fig8 { series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fewer_users_affected_under_d2() {
        let trace = HarvardTrace::generate(&Scale::Quick.harvard(), &mut StdRng::seed_from_u64(5));
        let cfg = Scale::Quick.cluster(3);
        let model = FailureModel {
            mttf_secs: 86_400.0,
            mttr_secs: 4.0 * 3600.0,
            correlated_events: 3.0,
            correlated_fraction: 0.2,
            correlated_mttr_secs: 2.0 * 3600.0,
            duration_secs: trace.config.days * 86_400.0,
        };
        let fig = run(&trace, &cfg, &model, 0.05, 42);
        assert_eq!(fig.series.len(), 3);
        let d2 = fig
            .series
            .iter()
            .find(|s| s.system == SystemKind::D2)
            .unwrap();
        let trad = fig
            .series
            .iter()
            .find(|s| s.system == SystemKind::Traditional)
            .unwrap();
        assert!(
            d2.affected() <= trad.affected(),
            "d2 affects {} users vs traditional {}",
            d2.affected(),
            trad.affected()
        );
        // Rankings are sorted descending.
        for s in &fig.series {
            for w in s.ranked.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
        assert!(!fig.render().is_empty());
    }
}
