//! Figure 9: average DHT lookup messages per node vs system size, for
//! the seq and para replay modes.
//!
//! Paper shape: traditional lookup traffic *grows* with system size
//! (cache miss rate rises); D2 and traditional-file traffic *shrink*
//! (miss rates stay flat while nodes multiply), with D2 well below both.

use crate::perf_suite::SuiteResult;
use crate::report::{fmt, render_table};
use d2_core::{Parallelism, SystemKind};

/// Mode label helper shared by the Section 9 figures.
pub fn mode_label(mode: Parallelism) -> &'static str {
    match mode {
        Parallelism::Seq => "seq",
        Parallelism::Para => "para",
    }
}

/// One measured point.
#[derive(Clone, Debug)]
pub struct Fig9Point {
    /// System.
    pub system: SystemKind,
    /// System size (nodes).
    pub size: usize,
    /// Replay mode.
    pub mode: Parallelism,
    /// Lookup messages per node.
    pub msgs_per_node: f64,
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig9 {
    /// All measured points.
    pub points: Vec<Fig9Point>,
}

impl Fig9 {
    /// The value for one configuration.
    pub fn value(&self, system: SystemKind, size: usize, mode: Parallelism) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.system == system && p.size == size && p.mode == mode)
            .map(|p| p.msgs_per_node)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.system.label().to_string(),
                    p.size.to_string(),
                    mode_label(p.mode).to_string(),
                    fmt(p.msgs_per_node),
                ]
            })
            .collect();
        render_table(
            "Figure 9: DHT lookup messages per node",
            &["system", "nodes", "mode", "msgs/node"],
            &rows,
        )
    }
}

/// Extracts Figure 9 from a suite run (uses the first bandwidth swept).
pub fn from_suite(suite: &SuiteResult) -> Fig9 {
    let mut points = Vec::new();
    for (&(system, size, _kbps, mode), report) in &suite.cells {
        // One point per (system, size, mode): keep the first bandwidth.
        if points
            .iter()
            .any(|p: &Fig9Point| p.system == system && p.size == size && p.mode == mode)
        {
            continue;
        }
        points.push(Fig9Point {
            system,
            size,
            mode,
            msgs_per_node: report.lookup_messages_per_node(),
        });
    }
    points.sort_by_key(|p| (p.system.label(), p.size, mode_label(p.mode)));
    Fig9 { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_suite::{self, SuiteConfig};
    use crate::Scale;
    use d2_workload::HarvardTrace;
    use rand::SeedableRng;

    #[test]
    fn d2_sends_far_fewer_lookup_messages() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = SuiteConfig {
            sizes: vec![16],
            kbps: vec![1500],
            measure_groups: 80,
            ..SuiteConfig::default()
        };
        let suite = perf_suite::run(&trace, &cfg);
        let fig = from_suite(&suite);
        let d2 = fig.value(SystemKind::D2, 16, Parallelism::Seq).unwrap();
        let trad = fig
            .value(SystemKind::Traditional, 16, Parallelism::Seq)
            .unwrap();
        assert!(
            d2 < trad / 2.0,
            "d2 msgs/node {d2} should be far below traditional {trad}"
        );
        assert!(!fig.render().is_empty());
    }
}
