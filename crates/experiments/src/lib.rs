//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation (Sections 4, 8, 9, 10).
//!
//! Each module regenerates one artifact with the same *rows/series* the
//! paper reports, at laptop-scale parameters (see [`params`] and
//! EXPERIMENTS.md for the scaled-down defaults and the paper-vs-measured
//! record):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig3`] | Fig. 3 — mean nodes accessed per user-hour, normalized |
//! | [`table2`] | Table 2 — mean blocks/files/nodes per task |
//! | [`fig7`] | Fig. 7 — task unavailability per system and `inter` |
//! | [`fig8`] | Fig. 8 — ranked per-user unavailability |
//! | [`perf_suite`] | shared Section 9 testbed driver |
//! | [`fig9`] | Fig. 9 — lookup messages per node vs system size |
//! | [`fig10`] | Fig. 10 — speedup over the traditional DHT |
//! | [`fig11`] | Fig. 11 — speedup over the traditional-file DHT |
//! | [`fig12`] | Fig. 12 — per-user speedup breakdown |
//! | [`fig13`] | Fig. 13 — mean lookup-cache miss rate |
//! | [`fig14_15`] | Figs. 14/15 — access-group latency scatter |
//! | [`table3`] | Table 3 — daily write/remove ratios (Harvard, Webcache) |
//! | [`table4`] | Table 4 — write vs load-balancing traffic per day |
//! | [`fig16_17`] | Figs. 16/17 — load imbalance over time |
//!
//! [`obs_summary`] is not a paper artifact: it folds a `d2-obs` trace
//! (the `--obs-out` export) into the percentile summary the binary
//! prints. [`churn`] is not a paper figure either — it *checks a paper
//! assumption*: that lookups keep succeeding (Section 8's simulators
//! take this for granted) while the failure trace crashes and rejoins
//! nodes, by driving fault-injected lookups with retries against a ring
//! whose routing tables decay and self-stabilize. [`redundancy`] is the
//! PR 9 ablation of the paper's Section 3 redundancy choice: replication
//! at r = 3/4 vs erasure coding at several (k, n) shapes, all paired on
//! one churn trace, reporting availability vs storage overhead vs lazy
//! repair bandwidth.
//!
//! Every driver returns plain data structures *and* renders the
//! paper-style text table via its `render` function, so the binaries and
//! benches print comparable output.

pub mod balance_sim;
pub mod churn;
pub mod exec;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14_15;
pub mod fig16_17;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs_summary;
pub mod params;
pub mod perf_suite;
pub mod redundancy;
pub mod report;
pub mod table2;
pub mod table3;
pub mod table4;

pub use params::Scale;
