//! Aggregates a drained trace into a [`Registry`] and renders the
//! percentile summary table the `d2-exp` binary prints alongside an
//! `--obs-out` export.
//!
//! The summary is computed *from the events themselves* (not from the
//! simulator's internal counters), so it doubles as a consistency check:
//! if the trace says 3% stale hits, that is what actually got recorded.

use crate::report::{fmt, render_table};
use d2_obs::{CacheResult, Registry, TraceEvent};

/// Folds a trace into named metrics:
///
/// - histograms `lookup.hops`, `lookup.latency_us`, `fetch.transfer_us`,
///   `fetch.total_us`, `span.dur_us`, `churn.retries`, `churn.latency_us`;
/// - counters `cache.<tier>.<hit|miss|stale>`, `fetch.count`,
///   `fetch.bytes`, `migration.<kind>.count`, `migration.<kind>.bytes`,
///   `balance.moves`, `marks`, `churn.lookups`, `churn.failed`,
///   `churn.timeouts`, `stabilize.rounds`, `stabilize.repaired`,
///   `stabilize.evicted`;
/// - gauges `cache.<tier>.hit_rate`.
pub fn registry_from_events(events: &[TraceEvent]) -> Registry {
    let mut reg = Registry::new();
    for ev in events {
        match ev {
            TraceEvent::Mark { .. } => reg.inc("marks"),
            TraceEvent::Route { hops, .. } => {
                reg.observe("lookup.hops", *hops as u64);
            }
            TraceEvent::Fetch {
                result,
                lookup_us,
                transfer_us,
                total_us,
                len,
                ..
            } => {
                reg.inc("fetch.count");
                reg.add("fetch.bytes", *len as u64);
                if *result != CacheResult::Hit {
                    reg.observe("lookup.latency_us", *lookup_us);
                }
                reg.observe("fetch.transfer_us", *transfer_us);
                reg.observe("fetch.total_us", *total_us);
            }
            TraceEvent::CacheProbe { tier, result, .. } => {
                reg.inc(&format!("cache.{}.{}", tier.label(), result.label()));
            }
            TraceEvent::Migration { kind, bytes, .. } => {
                reg.inc(&format!("migration.{}.count", kind.label()));
                reg.add(&format!("migration.{}.bytes", kind.label()), *bytes);
            }
            TraceEvent::BalanceMove { .. } => reg.inc("balance.moves"),
            TraceEvent::ChurnLookup {
                ok,
                retries,
                latency_us,
                timeouts,
                ..
            } => {
                reg.inc("churn.lookups");
                if !*ok {
                    reg.inc("churn.failed");
                }
                reg.add("churn.timeouts", *timeouts as u64);
                reg.observe("churn.retries", *retries as u64);
                reg.observe("churn.latency_us", *latency_us);
            }
            TraceEvent::Stabilize {
                repaired, evicted, ..
            } => {
                reg.inc("stabilize.rounds");
                reg.add("stabilize.repaired", *repaired as u64);
                reg.add("stabilize.evicted", *evicted as u64);
            }
            TraceEvent::WireSpan { dur_us, ok, .. } => {
                reg.inc("wire.spans");
                if !*ok {
                    reg.inc("wire.spans_failed");
                }
                reg.observe("wire.span_dur_us", *dur_us);
            }
            TraceEvent::Span { dur_us, .. } => reg.observe("span.dur_us", *dur_us),
        }
    }
    for tier in ["lookup", "block"] {
        let hit = reg.counter(&format!("cache.{tier}.hit"));
        let miss = reg.counter(&format!("cache.{tier}.miss"));
        let stale = reg.counter(&format!("cache.{tier}.stale"));
        let total = hit + miss + stale;
        if total > 0 {
            reg.set_gauge(&format!("cache.{tier}.hit_rate"), hit as f64 / total as f64);
        }
    }
    reg
}

/// Renders the percentile summary: one distribution table (count, mean,
/// p50/p90/p99, max per histogram) followed by the counter/rate lines.
pub fn render_summary(events: &[TraceEvent]) -> String {
    let reg = registry_from_events(events);
    let mut rows = Vec::new();
    for (name, h) in reg.histograms() {
        let s = h.snapshot();
        rows.push(vec![
            name.to_string(),
            s.count.to_string(),
            fmt(h.mean()),
            s.p50.to_string(),
            s.p90.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
        ]);
    }
    let mut out = render_table(
        "Trace summary: distributions",
        &["metric", "count", "mean", "p50", "p90", "p99", "max"],
        &rows,
    );
    out.push('\n');
    for tier in ["lookup", "block"] {
        if let Some(rate) = reg.gauge(&format!("cache.{tier}.hit_rate")) {
            out.push_str(&format!("{tier}-cache hit rate: {:.1}%\n", rate * 100.0));
        }
    }
    let migrated: u64 = ["balance", "repair", "pointer_resolve"]
        .iter()
        .map(|k| reg.counter(&format!("migration.{k}.bytes")))
        .sum();
    if migrated > 0 {
        out.push_str(&format!(
            "bytes migrated: {migrated} (balance {}, repair {}, pointer_resolve {})\n",
            reg.counter("migration.balance.bytes"),
            reg.counter("migration.repair.bytes"),
            reg.counter("migration.pointer_resolve.bytes"),
        ));
    }
    if reg.counter("balance.moves") > 0 {
        out.push_str(&format!(
            "balance moves: {}\n",
            reg.counter("balance.moves")
        ));
    }
    out.push_str(&format!("events: {}\n", events.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2_obs::{CacheTier, MigrationKind};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Mark {
                t_us: 0,
                label: "cell".into(),
            },
            TraceEvent::Route {
                t_us: 1,
                user: 0,
                key: 1,
                from: 0,
                owner: 2,
                hops: 3,
                messages: 4,
                path: vec![0, 1, 2],
            },
            TraceEvent::CacheProbe {
                t_us: 2,
                user: 0,
                tier: CacheTier::Lookup,
                result: CacheResult::Hit,
                key: 1,
            },
            TraceEvent::CacheProbe {
                t_us: 2,
                user: 0,
                tier: CacheTier::Lookup,
                result: CacheResult::Miss,
                key: 2,
            },
            TraceEvent::CacheProbe {
                t_us: 2,
                user: 0,
                tier: CacheTier::Lookup,
                result: CacheResult::Stale,
                key: 3,
            },
            TraceEvent::Fetch {
                t_us: 3,
                user: 0,
                key: 1,
                result: CacheResult::Miss,
                lookup_us: 500,
                hop_us: vec![250, 250],
                transfer_us: 1500,
                total_us: 2000,
                server: 2,
                len: 8192,
            },
            TraceEvent::Fetch {
                t_us: 4,
                user: 0,
                key: 2,
                result: CacheResult::Hit,
                lookup_us: 0,
                hop_us: vec![],
                transfer_us: 1000,
                total_us: 1000,
                server: 2,
                len: 8192,
            },
            TraceEvent::Migration {
                t_us: 5,
                kind: MigrationKind::Balance,
                src: 1,
                dst: 2,
                key: 9,
                bytes: 4096,
            },
            TraceEvent::BalanceMove {
                t_us: 6,
                mover: 3,
                heavy: 1,
            },
            TraceEvent::Span {
                t_us: 7,
                name: "group".into(),
                user: 0,
                dur_us: 2500,
                items: 2,
            },
            TraceEvent::ChurnLookup {
                t_us: 8,
                from: 0,
                key: 4,
                ok: true,
                hops: 5,
                retries: 2,
                timeouts: 2,
                latency_us: 1_200_000,
            },
            TraceEvent::ChurnLookup {
                t_us: 9,
                from: 1,
                key: 5,
                ok: false,
                hops: 0,
                retries: 8,
                timeouts: 9,
                latency_us: 4_000_000,
            },
            TraceEvent::Stabilize {
                t_us: 10,
                nodes: 64,
                repaired: 3,
                evicted: 4,
            },
        ]
    }

    #[test]
    fn registry_aggregates_all_event_kinds() {
        let reg = registry_from_events(&sample_events());
        assert_eq!(reg.counter("marks"), 1);
        assert_eq!(reg.histogram("lookup.hops").unwrap().max(), 3);
        assert_eq!(reg.counter("cache.lookup.hit"), 1);
        assert_eq!(reg.counter("cache.lookup.miss"), 1);
        assert_eq!(reg.counter("cache.lookup.stale"), 1);
        assert_eq!(reg.counter("fetch.count"), 2);
        assert_eq!(reg.counter("fetch.bytes"), 16_384);
        // Cached fetches don't pollute the lookup-latency distribution.
        assert_eq!(reg.histogram("lookup.latency_us").unwrap().count(), 1);
        assert_eq!(reg.histogram("fetch.total_us").unwrap().count(), 2);
        assert_eq!(reg.counter("migration.balance.bytes"), 4096);
        assert_eq!(reg.counter("balance.moves"), 1);
        let rate = reg.gauge("cache.lookup.hit_rate").unwrap();
        assert!((rate - 1.0 / 3.0).abs() < 1e-9);
        assert!(reg.gauge("cache.block.hit_rate").is_none());
        assert_eq!(reg.counter("churn.lookups"), 2);
        assert_eq!(reg.counter("churn.failed"), 1);
        assert_eq!(reg.counter("churn.timeouts"), 11);
        assert_eq!(reg.histogram("churn.retries").unwrap().max(), 8);
        assert_eq!(reg.histogram("churn.latency_us").unwrap().count(), 2);
        assert_eq!(reg.counter("stabilize.rounds"), 1);
        assert_eq!(reg.counter("stabilize.repaired"), 3);
        assert_eq!(reg.counter("stabilize.evicted"), 4);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let s = render_summary(&sample_events());
        assert!(s.contains("lookup.hops"));
        assert!(s.contains("fetch.total_us"));
        assert!(s.contains("lookup-cache hit rate: 33.3%"));
        assert!(s.contains("bytes migrated: 4096"));
        assert!(s.contains("balance moves: 1"));
        assert!(s.contains("events: 13"));
    }

    #[test]
    fn summary_of_empty_trace_is_still_renderable() {
        let s = render_summary(&[]);
        assert!(s.contains("events: 0"));
        assert!(!s.contains("hit rate"));
    }
}
