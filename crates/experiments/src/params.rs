//! Shared experiment scales.
//!
//! The paper runs 247-node week-long simulations over an 83 GB trace and
//! 1,000-node Emulab deployments over 27.5 M blocks. The same experiment
//! *shapes* run here at laptop scale; EXPERIMENTS.md records the mapping.
//! `Scale::Quick` keeps unit tests fast; `Scale::Full` is what the bench
//! harness and examples use.

use d2_core::ClusterConfig;
use d2_workload::{HarvardConfig, WebConfig};
use serde::{Deserialize, Serialize};

/// Experiment size preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-fast parameters for CI and unit tests.
    Quick,
    /// The scaled-down reproduction defaults (minutes on a laptop).
    Full,
}

impl Scale {
    /// Harvard-like trace parameters for this scale.
    pub fn harvard(&self) -> HarvardConfig {
        match self {
            Scale::Quick => HarvardConfig {
                users: 8,
                days: 1.0,
                initial_bytes: 48 << 20,
                reads_per_user_hour: 60.0,
                ..HarvardConfig::default()
            },
            Scale::Full => HarvardConfig {
                users: 40,
                days: 7.0,
                initial_bytes: 1 << 30,
                reads_per_user_hour: 120.0,
                ..HarvardConfig::default()
            },
        }
    }

    /// Web trace parameters for this scale.
    pub fn web(&self) -> WebConfig {
        match self {
            // Large object universes relative to the request rate, so most
            // objects are one-hit wonders and daily cache churn approaches
            // the paper's near-total turnover (Table 3, Webcache rows).
            Scale::Quick => WebConfig {
                domains: 1500,
                pages_per_domain: 6.0,
                users: 12,
                days: 2.0,
                requests_per_user_hour: 80.0,
                ..WebConfig::default()
            },
            Scale::Full => WebConfig {
                domains: 6000,
                pages_per_domain: 15.0,
                days: 6.0,
                ..WebConfig::default()
            },
        }
    }

    /// Cluster parameters (availability/balance experiments; the paper
    /// uses 247 nodes and r = 3).
    pub fn cluster(&self, seed: u64) -> ClusterConfig {
        match self {
            Scale::Quick => ClusterConfig {
                nodes: 24,
                replicas: 3,
                seed,
                ..Default::default()
            },
            Scale::Full => ClusterConfig {
                nodes: 96,
                replicas: 3,
                seed,
                ..Default::default()
            },
        }
    }

    /// System sizes for the performance sweep (the paper uses 200 / 500 /
    /// 1,000 virtual nodes).
    pub fn perf_sizes(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![16, 32],
            Scale::Full => vec![50, 125, 250],
        }
    }

    /// Warm-up days of balancing before measurements (paper: 3).
    pub fn warmup_days(&self) -> f64 {
        match self {
            Scale::Quick => 1.0,
            Scale::Full => 1.0,
        }
    }

    /// Trials per availability configuration (paper: 5).
    pub fn trials(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 5,
        }
    }
}
