//! The shared Section 9 testbed driver behind Figures 9–15.
//!
//! One [`run`] call sweeps system kind × system size × access bandwidth ×
//! parallelism mode over a single Harvard trace, warming each user's
//! lookup cache from the trace prefix before measuring the suffix — the
//! paper's methodology of simulating cache content "from the beginning of
//! the workload to the start of the time period" (Section 9.1).

use crate::exec;
use d2_core::{ClusterConfig, Parallelism, PerfConfig, PerfReport, PerfSim, SystemKind};
use d2_obs::{SharedSink, TraceEvent};
use d2_sim::{geometric_mean, SimTime};
use d2_workload::{split_access_groups, HarvardTrace, Task};
use std::collections::HashMap;

/// One measured configuration.
pub type CellKey = (SystemKind, usize, u64, Parallelism);

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// System sizes (node counts) to sweep.
    pub sizes: Vec<usize>,
    /// Access-link bandwidths in kbps (paper: 1500 and 384).
    pub kbps: Vec<u64>,
    /// Parallelism modes to measure.
    pub modes: Vec<Parallelism>,
    /// Systems to measure.
    pub systems: Vec<SystemKind>,
    /// Replicas per block (paper: 4 in the performance runs).
    pub replicas: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of access groups measured (from the end of the trace).
    pub measure_groups: usize,
    /// Days of balance warm-up before measuring.
    pub warmup_days: f64,
    /// Trace sink attached to every measured cell (cells are delimited
    /// by [`TraceEvent::Mark`] events). Disabled by default.
    pub sink: SharedSink,
    /// Worker threads for the cell fan-out. `1` (the default) runs the
    /// cells sequentially on the calling thread; any value produces
    /// byte-identical results (see [`run`]).
    pub jobs: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            sizes: vec![16, 32],
            kbps: vec![1500, 384],
            modes: vec![Parallelism::Seq, Parallelism::Para],
            systems: vec![
                SystemKind::D2,
                SystemKind::Traditional,
                SystemKind::TraditionalFile,
            ],
            replicas: 4,
            seed: 11,
            measure_groups: 200,
            warmup_days: 0.1,
            sink: SharedSink::null(),
            jobs: 1,
        }
    }
}

/// Results of a sweep.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Report per measured configuration.
    pub cells: HashMap<CellKey, PerfReport>,
    /// The measured access groups (aligned with each report's latencies).
    pub groups: Vec<Task>,
}

impl SuiteResult {
    /// The report for a configuration.
    pub fn cell(
        &self,
        system: SystemKind,
        size: usize,
        kbps: u64,
        mode: Parallelism,
    ) -> Option<&PerfReport> {
        self.cells.get(&(system, size, kbps, mode))
    }

    /// Overall speedup of `num` over `base` for one configuration: the
    /// geometric mean over users of each user's geometric-mean per-group
    /// ratio `base_latency / num_latency` (Section 9.3's metric).
    pub fn speedup(
        &self,
        num: SystemKind,
        base: SystemKind,
        size: usize,
        kbps: u64,
        mode: Parallelism,
    ) -> Option<f64> {
        let per_user = self.per_user_speedup(num, base, size, kbps, mode)?;
        let means: Vec<f64> = per_user.values().copied().collect();
        Some(geometric_mean(&means))
    }

    /// Per-user geometric-mean speedups of `num` over `base`.
    pub fn per_user_speedup(
        &self,
        num: SystemKind,
        base: SystemKind,
        size: usize,
        kbps: u64,
        mode: Parallelism,
    ) -> Option<HashMap<u32, f64>> {
        let a = self.cell(base, size, kbps, mode)?;
        let b = self.cell(num, size, kbps, mode)?;
        let mut ratios: HashMap<u32, Vec<f64>> = HashMap::new();
        for ((&user, &base_lat), &num_lat) in a
            .group_users
            .iter()
            .zip(&a.group_latencies)
            .zip(&b.group_latencies)
        {
            if base_lat > 0.0 && num_lat > 0.0 {
                ratios.entry(user).or_default().push(base_lat / num_lat);
            }
        }
        Some(
            ratios
                .into_iter()
                .map(|(u, rs)| (u, geometric_mean(&rs)))
                .collect(),
        )
    }

    /// Per-group latency pairs `(base, num)` for the scatter plots
    /// (Figures 14–15).
    pub fn latency_pairs(
        &self,
        num: SystemKind,
        base: SystemKind,
        size: usize,
        kbps: u64,
        mode: Parallelism,
    ) -> Vec<(f64, f64)> {
        let (Some(a), Some(b)) = (
            self.cell(base, size, kbps, mode),
            self.cell(num, size, kbps, mode),
        ) else {
            return vec![];
        };
        a.group_latencies
            .iter()
            .zip(&b.group_latencies)
            .filter(|(&x, &y)| x > 0.0 && y > 0.0)
            .map(|(&x, &y)| (x, y))
            .collect()
    }
}

/// Coordinate value for a parallelism mode in [`exec::derive_seed`].
fn mode_coord(mode: Parallelism) -> u64 {
    match mode {
        Parallelism::Seq => 0,
        Parallelism::Para => 1,
    }
}

/// Runs the sweep.
///
/// Every cell is an independent simulation: it derives its own RNG seed
/// from `cfg.seed` and its `(size, kbps, mode)` coordinates — the system
/// kind is deliberately excluded so all systems in a sweep build the
/// same ring layout and the cross-system speedup comparisons stay
/// paired — and it buffers its trace events in a private sink. With
/// `cfg.jobs > 1` the cells fan out over [`exec::parallel_map`]; the
/// per-cell buffers are merged into `cfg.sink` in canonical sweep order
/// afterwards, so reports and the trace stream are byte-identical to the
/// `jobs = 1` run at any worker count.
pub fn run(trace: &HarvardTrace, cfg: &SuiteConfig) -> SuiteResult {
    let groups = split_access_groups(&trace.accesses, SimTime::from_secs(1));
    let measure_start = groups.len().saturating_sub(cfg.measure_groups);
    let (warm, measure) = groups.split_at(measure_start);

    // Canonical cell order: the nesting the sequential sweep always used.
    let mut cell_keys: Vec<CellKey> = Vec::new();
    for &system in &cfg.systems {
        for &size in &cfg.sizes {
            for &kbps in &cfg.kbps {
                for &mode in &cfg.modes {
                    cell_keys.push((system, size, kbps, mode));
                }
            }
        }
    }

    // Only `Sync` data crosses into the workers — the shared sink is
    // single-threaded by design, so each worker records into a private
    // per-cell sink instead.
    let sink_enabled = cfg.sink.enabled();
    let replicas = cfg.replicas;
    let seed = cfg.seed;
    let warmup_days = cfg.warmup_days;

    let outcomes = exec::parallel_map(&cell_keys, cfg.jobs, |_, &(system, size, kbps, mode)| {
        let cell_sink = if sink_enabled {
            SharedSink::memory(0)
        } else {
            SharedSink::null()
        };
        let ccfg = ClusterConfig {
            nodes: size,
            replicas,
            seed: exec::derive_seed(seed, &[size as u64, kbps, mode_coord(mode)]),
            ..ClusterConfig::default()
        };
        let pcfg = PerfConfig::default();
        let mut sim = PerfSim::build(system, &ccfg, &pcfg, trace, warmup_days);
        sim.warm_caches(trace, warm);
        sim.set_access_kbps(kbps);
        cell_sink.record_with(|| TraceEvent::Mark {
            t_us: 0,
            label: format!("cell system={system:?} size={size} kbps={kbps} mode={mode:?}"),
        });
        sim.set_trace_sink(cell_sink.clone());
        let report = sim.run(trace, measure, mode);
        (report, cell_sink.drain())
    });

    let mut cells = HashMap::new();
    for (&key, (report, events)) in cell_keys.iter().zip(outcomes) {
        cfg.sink.extend(events);
        cells.insert(key, report);
    }
    SuiteResult {
        cells,
        groups: measure.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rand::SeedableRng;

    fn quick_suite() -> (HarvardTrace, SuiteResult) {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = SuiteConfig {
            sizes: vec![16],
            kbps: vec![1500],
            measure_groups: 80,
            ..SuiteConfig::default()
        };
        let result = run(&trace, &cfg);
        (trace, result)
    }

    #[test]
    fn suite_produces_all_cells() {
        let (_trace, result) = quick_suite();
        // 3 systems × 1 size × 1 kbps × 2 modes.
        assert_eq!(result.cells.len(), 6);
        for report in result.cells.values() {
            assert_eq!(report.group_latencies.len(), result.groups.len());
        }
    }

    #[test]
    fn d2_speedup_over_traditional_in_seq() {
        let (_trace, result) = quick_suite();
        let s = result
            .speedup(
                SystemKind::D2,
                SystemKind::Traditional,
                16,
                1500,
                Parallelism::Seq,
            )
            .unwrap();
        assert!(s > 1.0, "seq speedup should exceed 1, got {s}");
    }

    #[test]
    fn suite_sink_sees_marks_routes_and_fetches() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let sink = SharedSink::memory(0);
        let cfg = SuiteConfig {
            sizes: vec![16],
            kbps: vec![1500],
            measure_groups: 40,
            sink: sink.clone(),
            ..SuiteConfig::default()
        };
        let result = run(&trace, &cfg);
        let events = sink.drain();
        let marks = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Mark { .. }))
            .count();
        assert_eq!(marks, result.cells.len(), "one mark per measured cell");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Fetch { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Route { .. })));
        // Marks name the swept dimensions.
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Mark { label, .. } if label.contains("size=16") && label.contains("kbps=1500")
        )));
    }

    #[test]
    fn latency_pairs_nonempty() {
        let (_trace, result) = quick_suite();
        let pairs = result.latency_pairs(
            SystemKind::D2,
            SystemKind::Traditional,
            16,
            1500,
            Parallelism::Seq,
        );
        assert!(!pairs.is_empty());
        for (a, b) in pairs {
            assert!(a > 0.0 && b > 0.0);
        }
    }
}
