//! The `redundancy` ablation: replication vs erasure coding under the
//! same churn, measuring the three-way trade the paper's Section 3
//! gestures at when it picks whole-block replication — availability,
//! storage overhead, and repair bandwidth.
//!
//! Every cell replays the *same* failure trace, node placement, and
//! block set (the policy under test is deliberately left out of the
//! seed coordinates, so comparisons stay paired — see [`exec`]) against
//! a [`SimCluster`] configured with one [`RedundancyPolicy`]:
//! whole-block replication at `r` copies, or systematic `(k, n)`
//! Reed–Solomon fragments on `n` consecutive successors. Replication
//! repairs eagerly at the crash instant; erasure cells use the lazy
//! queue — a key is regenerated only once its survivor count drops
//! below the threshold `m`, and regeneration traffic is metered by a
//! per-node token bucket refilled at `repair_budget_bps`.
//!
//! Reported per policy: the trace's node unavailability (identical
//! across cells, a sanity anchor), block availability over periodic
//! whole-population probes, ideal and measured storage factors, bytes
//! spent on lazy repair, bytes deferred by the budget, repairs the
//! threshold made unnecessary, and the end-of-run repair backlog. The
//! acceptance check for the PR rides on this table: at least one
//! erasure configuration must match `r = 3` availability at strictly
//! lower storage.
//!
//! Cells are independent and the per-cell trace buffers are merged in
//! sweep order, so output is byte-identical at any `--jobs` value.

use crate::exec;
use crate::report::{fmt, render_table};
use crate::Scale;
use d2_core::{ClusterConfig, RedundancyPolicy, SimCluster, SystemKind};
use d2_obs::SharedSink;
use d2_ring::NodeIdx;
use d2_sim::{FailureModel, FailureTrace, SimTime};
use d2_types::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one redundancy sweep.
#[derive(Clone, Debug)]
pub struct RedundancyConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Simulated horizon.
    pub duration: SimTime,
    /// Blocks preloaded before the churn starts.
    pub blocks: usize,
    /// Logical bytes per block.
    pub block_len: u32,
    /// Every block's availability is probed this often.
    pub probe_interval: SimTime,
    /// Lazy-repair rounds (token refill + queue drain) run this often.
    pub repair_interval: SimTime,
    /// Policies swept, one cell each.
    pub policies: Vec<RedundancyPolicy>,
    /// Per-node lazy-repair budget, bytes/sec (erasure cells only;
    /// 0 = unthrottled).
    pub repair_budget_bps: u64,
    /// Churn multiplier scaling the baseline [`FailureModel`].
    pub churn: f64,
    /// Base seed. The failure trace, placement, and block keys derive
    /// from it *without* the cell index, so cells are paired.
    pub seed: u64,
}

impl RedundancyConfig {
    /// The sweep for a given scale preset: the ISSUE's five cells —
    /// replication at the paper's two replica counts against three
    /// erasure shapes spanning 1.5×–3× storage.
    pub fn at_scale(scale: Scale, seed: u64) -> RedundancyConfig {
        let (nodes, days, blocks) = match scale {
            Scale::Quick => (48, 1.5, 96),
            Scale::Full => (96, 4.0, 256),
        };
        RedundancyConfig {
            nodes,
            duration: SimTime::from_secs_f64(days * 86_400.0),
            blocks,
            block_len: 64 << 10,
            probe_interval: SimTime::from_secs(900),
            repair_interval: SimTime::from_secs(300),
            policies: vec![
                RedundancyPolicy::Replicate { r: 3 },
                RedundancyPolicy::Replicate { r: 4 },
                RedundancyPolicy::ErasureCode { k: 2, n: 4 },
                RedundancyPolicy::ErasureCode { k: 4, n: 8 },
                RedundancyPolicy::ErasureCode { k: 8, n: 12 },
            ],
            repair_budget_bps: 24 << 10,
            churn: 6.0,
            seed,
        }
    }
}

/// Aggregate results for one redundancy policy.
#[derive(Clone, Debug, PartialEq)]
pub struct RedundancyRow {
    /// Policy measured.
    pub policy: RedundancyPolicy,
    /// Mean node unavailability of the shared failure trace.
    pub trace_unavailability: f64,
    /// Availability probes issued (blocks × probe ticks).
    pub probes: u64,
    /// Probes that found the block unreadable (fewer than `k`
    /// fragments — or zero replicas — reachable).
    pub unavailable: u64,
    /// Bytes a fault-free run would store per logical byte.
    pub ideal_storage_factor: f64,
    /// Bytes actually on disk at the end per logical byte (stale copies
    /// on crashed nodes keep counting, as disks do).
    pub stored_factor: f64,
    /// Bytes spent regenerating fragments from the lazy repair queue.
    pub repair_bytes: u64,
    /// Repair bytes deferred because a token bucket was empty.
    pub repair_throttled_bytes: u64,
    /// Repairs the lazy threshold made unnecessary.
    pub repairs_skipped_lazy: u64,
    /// Blocks regenerated by budgeted repair rounds.
    pub repaired_blocks: u64,
    /// Keys still below the repair threshold when the run ended.
    pub backlog: u64,
    /// All migration/regeneration traffic (repair bytes are a subset).
    pub migration_bytes: u64,
}

impl RedundancyRow {
    /// Fraction of probes that found the block readable.
    pub fn availability(&self) -> f64 {
        if self.probes == 0 {
            return 1.0;
        }
        1.0 - self.unavailable as f64 / self.probes as f64
    }
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Redundancy {
    /// One row per policy, in sweep order.
    pub rows: Vec<RedundancyRow>,
}

impl Redundancy {
    /// The row for a given policy, if present.
    pub fn row(&self, policy: RedundancyPolicy) -> Option<&RedundancyRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.label(),
                    fmt(r.ideal_storage_factor),
                    fmt(r.stored_factor),
                    format!("{:.3}%", r.trace_unavailability * 100.0),
                    format!("{:.4}%", r.availability() * 100.0),
                    format!("{:.1}", r.repair_bytes as f64 / 1024.0),
                    format!("{:.1}", r.repair_throttled_bytes as f64 / 1024.0),
                    r.repairs_skipped_lazy.to_string(),
                    r.repaired_blocks.to_string(),
                    r.backlog.to_string(),
                ]
            })
            .collect();
        render_table(
            "Redundancy: availability vs storage vs repair bandwidth (shared churn trace)",
            &[
                "policy",
                "ideal-x",
                "stored-x",
                "node-unavail",
                "avail",
                "repair-KiB",
                "throttled-KiB",
                "lazy-skips",
                "repaired",
                "backlog",
            ],
            &rows,
        )
    }
}

/// Runs the sweep at a scale preset (no tracing).
pub fn run(scale: Scale, seed: u64, jobs: usize) -> Redundancy {
    run_traced(scale, seed, jobs, &SharedSink::null())
}

/// Runs the sweep at a scale preset, recording the clusters'
/// migration/repair trace events into `sink`.
pub fn run_traced(scale: Scale, seed: u64, jobs: usize, sink: &SharedSink) -> Redundancy {
    run_cfg(&RedundancyConfig::at_scale(scale, seed), jobs, sink)
}

/// Runs the sweep for an explicit configuration. Cells fan out over
/// `jobs` workers; each buffers its events privately and the buffers
/// are merged in sweep order, so all output is byte-identical at any
/// worker count.
pub fn run_cfg(cfg: &RedundancyConfig, jobs: usize, sink: &SharedSink) -> Redundancy {
    let cells: Vec<usize> = (0..cfg.policies.len()).collect();
    let enabled = sink.enabled();
    let outcomes = exec::parallel_map(&cells, jobs, |i, _| {
        let cell_sink = if enabled {
            SharedSink::memory(0)
        } else {
            SharedSink::null()
        };
        let row = run_cell(cfg, cfg.policies[i], &cell_sink);
        (row, cell_sink.drain())
    });
    let mut rows = Vec::with_capacity(outcomes.len());
    for (row, events) in outcomes {
        sink.extend(events);
        rows.push(row);
    }
    Redundancy { rows }
}

/// What happens at one instant of the cell's event loop. Ordering at
/// equal times: membership transitions first (the world changes), then
/// repair rounds (the protocol reacts), then probes (the user observes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Transition(usize, bool),
    Repair,
    Probe,
}

fn run_cell(cfg: &RedundancyConfig, policy: RedundancyPolicy, sink: &SharedSink) -> RedundancyRow {
    // Shared streams: the failure trace (coord 1) and the block keys
    // (coord 2) never include the cell index, so every policy faces the
    // same world.
    let trace = if cfg.churn > 0.0 {
        let base = FailureModel::default();
        let model = FailureModel {
            mttf_secs: base.mttf_secs / cfg.churn,
            correlated_events: base.correlated_events * cfg.churn,
            duration_secs: cfg.duration.as_micros() as f64 / 1e6,
            ..base
        };
        FailureTrace::generate(
            cfg.nodes,
            &model,
            &mut StdRng::seed_from_u64(exec::derive_seed(cfg.seed, &[1])),
        )
    } else {
        FailureTrace::none(cfg.nodes, cfg.duration)
    };

    let (replicas, redundancy) = match policy {
        RedundancyPolicy::Replicate { r } => (r, None),
        ec => (3, Some(ec)),
    };
    let ccfg = ClusterConfig {
        nodes: cfg.nodes,
        replicas,
        redundancy,
        repair_budget_bps: cfg.repair_budget_bps,
        seed: exec::derive_seed(cfg.seed, &[3]),
        ..ClusterConfig::default()
    };
    let mut cluster = SimCluster::new(SystemKind::D2, &ccfg);
    cluster.set_trace_sink(sink.clone());

    // Ring positions, captured while everyone is up, so a returning
    // node rejoins where it left (as its disk would make it).
    let ids: Vec<Key> = (0..cfg.nodes)
        .map(|i| cluster.ring.id_of(NodeIdx(i)).expect("node starts live"))
        .collect();

    let mut keyrng = StdRng::seed_from_u64(exec::derive_seed(cfg.seed, &[2]));
    let keys: Vec<Key> = (0..cfg.blocks).map(|_| Key::random(&mut keyrng)).collect();
    cluster.preload(keys.iter().map(|&k| (k, cfg.block_len)));

    let mut row = RedundancyRow {
        policy,
        trace_unavailability: trace.mean_unavailability(),
        probes: 0,
        unavailable: 0,
        ideal_storage_factor: policy.storage_factor(),
        stored_factor: 0.0,
        repair_bytes: 0,
        repair_throttled_bytes: 0,
        repairs_skipped_lazy: 0,
        repaired_blocks: 0,
        backlog: 0,
        migration_bytes: 0,
    };

    // Merge the three event streams into one sorted schedule.
    let mut events: Vec<(u64, Ev)> = Vec::new();
    for (t, node, up) in trace.transitions() {
        events.push((t.as_micros(), Ev::Transition(node, up)));
    }
    let horizon = cfg.duration.as_micros();
    let mut t = cfg.repair_interval.as_micros();
    while t < horizon {
        events.push((t, Ev::Repair));
        t += cfg.repair_interval.as_micros();
    }
    let mut t = cfg.probe_interval.as_micros();
    while t < horizon {
        events.push((t, Ev::Probe));
        t += cfg.probe_interval.as_micros();
    }
    events.sort();

    for (t_us, ev) in events {
        let now = SimTime::from_micros(t_us);
        match ev {
            Ev::Transition(node, up) => {
                if up {
                    cluster.node_up_at(NodeIdx(node), ids[node], now);
                } else {
                    cluster.node_down(NodeIdx(node), now);
                }
            }
            Ev::Repair => {
                cluster.process_observed_failures(now);
                row.repaired_blocks += cluster.run_repair_round(now) as u64;
            }
            Ev::Probe => {
                for key in &keys {
                    row.probes += 1;
                    if !cluster.is_available(key, now) {
                        row.unavailable += 1;
                    }
                }
            }
        }
    }

    let stored: u64 = cluster.total_load_bytes().iter().sum();
    let logical = cfg.blocks as u64 * cfg.block_len as u64;
    row.stored_factor = if logical == 0 {
        0.0
    } else {
        stored as f64 / logical as f64
    };
    row.repair_bytes = cluster.stats.repair_bytes;
    row.repair_throttled_bytes = cluster.stats.repair_throttled_bytes;
    row.repairs_skipped_lazy = cluster.stats.repairs_skipped_lazy;
    row.backlog = cluster.repair_queue_len() as u64;
    row.migration_bytes = cluster.stats.migration_bytes;
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(policies: Vec<RedundancyPolicy>) -> RedundancyConfig {
        RedundancyConfig {
            nodes: 32,
            duration: SimTime::from_secs_f64(0.5 * 86_400.0),
            blocks: 48,
            block_len: 16 << 10,
            probe_interval: SimTime::from_secs(900),
            repair_interval: SimTime::from_secs(300),
            policies,
            repair_budget_bps: 8 << 10,
            churn: 6.0,
            seed: 11,
        }
    }

    #[test]
    fn replication_cell_repairs_eagerly() {
        let r = run_cfg(
            &tiny_cfg(vec![RedundancyPolicy::Replicate { r: 3 }]),
            1,
            &SharedSink::null(),
        );
        let row = &r.rows[0];
        assert!(row.trace_unavailability > 0.01, "8x churn must bite");
        assert!(row.probes > 0);
        assert!(row.availability() > 0.9, "got {}", row.availability());
        // Replication never uses the lazy queue or its budget.
        assert_eq!(row.repair_bytes, 0);
        assert_eq!(row.repair_throttled_bytes, 0);
        assert_eq!(row.backlog, 0);
        // But crashes must have forced eager regeneration traffic.
        assert!(row.migration_bytes > 0);
        // A fault-free run stores exactly 3x; stale copies on downed
        // nodes can only push the measured factor up.
        assert!(row.stored_factor >= 2.5, "got {}", row.stored_factor);
    }

    #[test]
    fn erasure_cell_exercises_the_lazy_budgeted_path() {
        let r = run_cfg(
            &tiny_cfg(vec![RedundancyPolicy::ErasureCode { k: 4, n: 8 }]),
            1,
            &SharedSink::null(),
        );
        let row = &r.rows[0];
        assert!(
            row.repairs_skipped_lazy > 0 || row.repair_bytes > 0,
            "churn must reach the lazy-repair triage"
        );
        assert!(row.availability() > 0.9, "got {}", row.availability());
        assert!(
            row.stored_factor < 2.8,
            "ec(4,8) should store ~2x, got {}",
            row.stored_factor
        );
    }

    #[test]
    fn an_erasure_shape_matches_r3_availability_at_lower_storage() {
        // The PR's acceptance check, at test scale: some EC cell is at
        // least as available as r = 3 while storing strictly less.
        // Harsher churn than the other tests so replication actually
        // loses whole groups — at mild churn every policy sits at 100%
        // and the comparison is vacuous.
        let mut cfg = tiny_cfg(vec![
            RedundancyPolicy::Replicate { r: 3 },
            RedundancyPolicy::ErasureCode { k: 2, n: 4 },
            RedundancyPolicy::ErasureCode { k: 4, n: 8 },
            RedundancyPolicy::ErasureCode { k: 8, n: 12 },
        ]);
        cfg.churn = 8.0;
        let red = run_cfg(&cfg, 2, &SharedSink::null());
        let r3 = red
            .row(RedundancyPolicy::Replicate { r: 3 })
            .expect("r=3 row");
        let winner = red.rows.iter().find(|r| {
            r.policy.is_erasure()
                && r.availability() + 1e-9 >= r3.availability()
                && r.stored_factor < r3.stored_factor
        });
        assert!(
            winner.is_some(),
            "no EC shape matched r=3: r3 avail {} stored {}; rows: {:?}",
            r3.availability(),
            r3.stored_factor,
            red.rows
                .iter()
                .map(|r| (r.policy.label(), r.availability(), r.stored_factor))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn rows_and_render_are_deterministic_across_jobs() {
        let cfg = tiny_cfg(vec![
            RedundancyPolicy::Replicate { r: 3 },
            RedundancyPolicy::ErasureCode { k: 2, n: 4 },
            RedundancyPolicy::ErasureCode { k: 4, n: 8 },
        ]);
        let sink1 = SharedSink::memory(0);
        let a = run_cfg(&cfg, 1, &sink1);
        let ev1 = sink1.drain();
        let mut last = (a.rows.clone(), a.render(), d2_obs::to_jsonl(&ev1));
        for jobs in [2usize, 8] {
            let sink = SharedSink::memory(0);
            let b = run_cfg(&cfg, jobs, &sink);
            let ev = sink.drain();
            let cur = (b.rows.clone(), b.render(), d2_obs::to_jsonl(&ev));
            assert_eq!(last.0, cur.0, "rows diverge at jobs={jobs}");
            assert_eq!(last.1, cur.1, "render diverges at jobs={jobs}");
            assert_eq!(last.2, cur.2, "trace diverges at jobs={jobs}");
            last = cur;
        }
        assert!(!last.2.is_empty(), "clusters must record trace events");
    }

    #[test]
    fn render_has_one_row_per_policy() {
        let red = run_cfg(
            &tiny_cfg(vec![
                RedundancyPolicy::Replicate { r: 3 },
                RedundancyPolicy::ErasureCode { k: 2, n: 4 },
            ]),
            2,
            &SharedSink::null(),
        );
        let table = red.render();
        assert_eq!(red.rows.len(), 2);
        assert!(table.contains("r=3"));
        assert!(table.contains("ec(2,4)"));
        assert_eq!(table.lines().count(), 5, "title + header + rule + 2 rows");
    }
}
