//! Plain-text table rendering shared by the experiment drivers.

/// Renders a table: header row plus data rows, columns padded to fit.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            s.push_str(&format!("{c:>w$}  "));
        }
        s.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let s = render_table(
            "Demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        assert!(s.contains("Demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(1.5), "1.50");
        assert_eq!(fmt(0.0032), "3.20e-3");
    }
}
