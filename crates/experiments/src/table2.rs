//! Table 2: mean blocks, files, and nodes accessed per task, for the
//! traditional (block), traditional-file, and D2 systems, across
//! inter-arrival thresholds of 1 s, 5 s, 15 s, and 1 min.

use crate::report::render_table;
use d2_core::{AvailabilitySim, ClusterConfig, SystemKind};
use d2_sim::SimTime;
use d2_workload::{split_tasks, HarvardTrace};

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// The inter-arrival threshold.
    pub inter: SimTime,
    /// Mean blocks per task.
    pub mean_blocks: f64,
    /// Mean files per task.
    pub mean_files: f64,
    /// Mean nodes per task, traditional (block) DHT.
    pub nodes_block: f64,
    /// Mean nodes per task, traditional-file DHT.
    pub nodes_file: f64,
    /// Mean nodes per task, D2.
    pub nodes_d2: f64,
}

/// The full table.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// One row per `inter` value.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}s", r.inter.as_secs()),
                    format!("{:.0}", r.mean_blocks),
                    format!("{:.0}", r.mean_files),
                    format!("{:.1}", r.nodes_block),
                    format!("{:.1}", r.nodes_file),
                    format!("{:.1}", r.nodes_d2),
                ]
            })
            .collect();
        render_table(
            "Table 2: mean objects and nodes accessed per task",
            &[
                "inter",
                "blocks",
                "files",
                "nodes(block)",
                "nodes(file)",
                "nodes(D2)",
            ],
            &rows,
        )
    }
}

/// Runs the Table 2 analysis with a warmed-up placement per system.
pub fn run(
    trace: &HarvardTrace,
    cfg: &ClusterConfig,
    inters: &[SimTime],
    warmup_days: f64,
) -> Table2 {
    let max_dur = SimTime::from_secs(300);
    let d2 = AvailabilitySim::build(SystemKind::D2, cfg, trace, warmup_days);
    let trad = AvailabilitySim::build(SystemKind::Traditional, cfg, trace, 0.0);
    let file = AvailabilitySim::build(SystemKind::TraditionalFile, cfg, trace, 0.0);

    let mut rows = Vec::new();
    for &inter in inters {
        let tasks = split_tasks(&trace.accesses, inter, max_dur);
        let p_d2 = d2.task_profile(trace, &tasks);
        let p_trad = trad.task_profile(trace, &tasks);
        let p_file = file.task_profile(trace, &tasks);
        rows.push(Table2Row {
            inter,
            mean_blocks: p_trad.mean_blocks,
            mean_files: p_trad.mean_files,
            nodes_block: p_trad.mean_nodes,
            nodes_file: p_file.mean_nodes,
            nodes_d2: p_d2.mean_nodes,
        });
    }
    Table2 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rand::SeedableRng;

    #[test]
    fn table2_ordering_matches_paper() {
        let trace = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let cfg = Scale::Quick.cluster(3);
        let inters = [SimTime::from_secs(1), SimTime::from_secs(15)];
        let t = run(&trace, &cfg, &inters, 0.05);
        assert_eq!(t.rows.len(), 2);
        for r in &t.rows {
            // The paper's ordering: block >= file >= D2 node counts.
            assert!(
                r.nodes_block >= r.nodes_file * 0.9,
                "block {} vs file {}",
                r.nodes_block,
                r.nodes_file
            );
            assert!(
                r.nodes_d2 < r.nodes_block,
                "d2 {} must beat block {}",
                r.nodes_d2,
                r.nodes_block
            );
            assert!(r.mean_blocks >= r.mean_files);
        }
        // Longer inter => more objects per task.
        assert!(t.rows[1].mean_blocks >= t.rows[0].mean_blocks);
        assert!(!t.render().is_empty());
    }
}
