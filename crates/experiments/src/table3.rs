//! Table 3: per-day data churn — bytes written (`W_i`) and removed
//! (`R_i`) relative to the bytes present at the start of the day (`T_i`)
//! — for the Harvard and Webcache workloads.
//!
//! Paper shape: Harvard writes and removes 10–22% of its data per day;
//! Webcache churns its entire contents daily (ratios ≈ 1, with cold-start
//! spikes).

use crate::balance_sim::webcache_intervals;
use crate::report::render_table;
use d2_sim::SimTime;
use d2_workload::{HarvardTrace, WebTrace};

/// Per-day churn ratios for one workload.
#[derive(Clone, Debug)]
pub struct ChurnRatios {
    /// Workload label.
    pub workload: String,
    /// `W_i / T_i` per day.
    pub write_ratio: Vec<f64>,
    /// `R_i / T_i` per day.
    pub remove_ratio: Vec<f64>,
}

/// The full table.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// One entry per workload.
    pub workloads: Vec<ChurnRatios>,
}

impl Table3 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let days = self
            .workloads
            .iter()
            .map(|w| w.write_ratio.len())
            .max()
            .unwrap_or(0);
        let mut header: Vec<String> = vec!["ratio".into()];
        header.extend((1..=days).map(|d| format!("day{d}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        let fmt_ratio = |r: &f64| {
            if r.is_nan() {
                // The cache was empty at the day's start (cold start):
                // the ratio is undefined, as on the paper's first day.
                "-".to_string()
            } else {
                format!("{r:.2}")
            }
        };
        for w in &self.workloads {
            let mut row = vec![format!("{} W/T", w.workload)];
            row.extend(w.write_ratio.iter().map(fmt_ratio));
            row.resize(days + 1, String::new());
            rows.push(row);
            let mut row = vec![format!("{} R/T", w.workload)];
            row.extend(w.remove_ratio.iter().map(fmt_ratio));
            row.resize(days + 1, String::new());
            rows.push(row);
        }
        render_table(
            "Table 3: daily churn (bytes written/removed vs stored)",
            &header_refs,
            &rows,
        )
    }
}

/// Computes Harvard's churn ratios straight from the trace.
pub fn harvard_ratios(trace: &HarvardTrace) -> ChurnRatios {
    let writes = trace.write_bytes_by_day();
    let removes = trace.removed_bytes_by_day();
    let stored = trace.stored_bytes_by_day();
    let ratio = |num: &[u64]| -> Vec<f64> {
        num.iter()
            .zip(&stored)
            .map(|(&n, &t)| n as f64 / t.max(1) as f64)
            .collect()
    };
    ChurnRatios {
        workload: "Harvard".into(),
        write_ratio: ratio(&writes),
        remove_ratio: ratio(&removes),
    }
}

/// Computes Webcache churn ratios from the cached-interval model.
pub fn webcache_ratios(trace: &WebTrace) -> ChurnRatios {
    let days = trace.config.days.ceil() as usize;
    let mut written = vec![0u64; days];
    let mut removed = vec![0u64; days];
    let mut stored = vec![0u64; days];
    for (obj, intervals) in webcache_intervals(trace) {
        let size = trace.objects[obj as usize].size;
        for (start, end) in intervals {
            let sd = (start.as_secs() / 86_400) as usize;
            let ed = (end.as_secs() / 86_400) as usize;
            if sd < days {
                written[sd] += size;
            }
            if ed < days {
                removed[ed] += size;
            }
            // Present at the start of every day strictly inside the
            // interval.
            let last = ed.min(days.saturating_sub(1));
            for (d, slot) in stored.iter_mut().enumerate().take(last + 1).skip(sd + 1) {
                let day_start = SimTime::from_secs(d as u64 * 86_400);
                if start <= day_start && day_start < end {
                    *slot += size;
                }
            }
        }
    }
    let ratio = |num: &[u64]| -> Vec<f64> {
        num.iter()
            .zip(&stored)
            .map(|(&n, &t)| {
                if t == 0 {
                    f64::NAN
                } else {
                    n as f64 / t as f64
                }
            })
            .collect()
    };
    ChurnRatios {
        workload: "Webcache".into(),
        write_ratio: ratio(&written),
        remove_ratio: ratio(&removed),
    }
}

/// Builds Table 3 from both workloads.
pub fn run(harvard: &HarvardTrace, web: &WebTrace) -> Table3 {
    Table3 {
        workloads: vec![harvard_ratios(harvard), webcache_ratios(web)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use d2_workload::{HarvardConfig, WebConfig};
    use rand::SeedableRng;

    #[test]
    fn harvard_ratios_in_paper_band() {
        let trace = HarvardTrace::generate(
            &HarvardConfig {
                days: 4.0,
                ..Scale::Quick.harvard()
            },
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let r = harvard_ratios(&trace);
        // Skip the final (partially generated) day.
        for d in 0..r.write_ratio.len() - 1 {
            assert!(
                (0.03..0.6).contains(&r.write_ratio[d]),
                "day {d} W/T {} out of band",
                r.write_ratio[d]
            );
            assert!(
                r.remove_ratio[d] < 0.6,
                "day {d} R/T {} out of band",
                r.remove_ratio[d]
            );
        }
    }

    #[test]
    fn webcache_churns_roughly_everything_daily() {
        // A larger object universe relative to the request rate than
        // Scale::Quick: the churn property ("most of what a day starts
        // with is gone by its end") holds only when most objects are
        // one-hit wonders, and Quick's 1500-domain universe sits right
        // on the 0.4 threshold — which side it lands on depends on the
        // RNG backend's exact stream. 6000 domains puts the ratio near
        // 0.75 with margin under any stream.
        let trace = WebTrace::generate(
            &WebConfig {
                days: 4.0,
                domains: 6000,
                users: 8,
                requests_per_user_hour: 50.0,
                ..Scale::Quick.web()
            },
            &mut rand::rngs::StdRng::seed_from_u64(6),
        );
        let r = webcache_ratios(&trace);
        // After the cold-start day, removal churn is near-total: most data
        // present at a day's start is gone by its end (paper: R/T ≈ 1).
        for d in 1..r.remove_ratio.len() - 1 {
            assert!(
                r.remove_ratio[d] > 0.4,
                "day {d} webcache R/T {} should be large",
                r.remove_ratio[d]
            );
        }
        // Webcache W/T exceeds Harvard-like steady ratios.
        assert!(r.write_ratio[1] > 0.3, "day-1 W/T {}", r.write_ratio[1]);
    }

    #[test]
    fn renders() {
        let harvard = HarvardTrace::generate(
            &HarvardConfig {
                days: 2.0,
                ..Scale::Quick.harvard()
            },
            &mut rand::rngs::StdRng::seed_from_u64(7),
        );
        let web = WebTrace::generate(
            &WebConfig {
                days: 2.0,
                ..Scale::Quick.web()
            },
            &mut rand::rngs::StdRng::seed_from_u64(8),
        );
        let t = run(&harvard, &web);
        let text = t.render();
        assert!(text.contains("Harvard W/T"));
        assert!(text.contains("Webcache R/T"));
    }
}
