//! Table 4: mean per-day write traffic (`W_i`) vs load-balancing
//! (migration) traffic (`L_i`) for D2 on the Harvard and Webcache
//! workloads, in MB.
//!
//! Paper shape: for Harvard, total migration ≈ 50% of total writes ("for
//! every 2 bytes written, 1 byte is migrated later"); for Webcache the
//! two are comparable (migration slightly above writes).

use crate::balance_sim::{self, BalanceRun, BalanceSystem};
use crate::exec;
use crate::report::render_table;
use d2_core::ClusterConfig;
use d2_obs::SharedSink;
use d2_types::SystemKind;
use d2_workload::{HarvardTrace, WebTrace};

/// Per-day W/L traffic for one workload.
#[derive(Clone, Debug)]
pub struct Table4Rows {
    /// Workload label.
    pub workload: String,
    /// Write MB per day.
    pub write_mb: Vec<f64>,
    /// Migration MB per day.
    pub balance_mb: Vec<f64>,
}

impl Table4Rows {
    /// Total write MB.
    pub fn total_write(&self) -> f64 {
        self.write_mb.iter().sum()
    }

    /// Total migration MB.
    pub fn total_balance(&self) -> f64 {
        self.balance_mb.iter().sum()
    }

    /// Migration as a fraction of writes (paper: ≈ 0.5 for Harvard,
    /// ≈ 1.2 for Webcache).
    pub fn overhead_ratio(&self) -> f64 {
        self.total_balance() / self.total_write().max(1e-9)
    }
}

/// The full table.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// One entry per workload.
    pub workloads: Vec<Table4Rows>,
}

impl Table4 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let days = self
            .workloads
            .iter()
            .map(|w| w.write_mb.len())
            .max()
            .unwrap_or(0);
        let mut header: Vec<String> = vec!["traffic (MB)".into()];
        header.extend((1..=days).map(|d| format!("day{d}")));
        header.push("total".into());
        header.push("L/W".into());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        for w in &self.workloads {
            let mut row = vec![format!("{} W", w.workload)];
            row.extend(w.write_mb.iter().map(|v| format!("{v:.0}")));
            row.resize(days + 1, String::new()); // pad short workloads
            row.push(format!("{:.0}", w.total_write()));
            row.push(String::new());
            rows.push(row);
            let mut row = vec![format!("{} L", w.workload)];
            row.extend(w.balance_mb.iter().map(|v| format!("{v:.0}")));
            row.resize(days + 1, String::new());
            row.push(format!("{:.0}", w.total_balance()));
            row.push(format!("{:.2}", w.overhead_ratio()));
            rows.push(row);
        }
        render_table(
            "Table 4: write traffic vs load-balancing traffic",
            &header_refs,
            &rows,
        )
    }
}

fn to_rows(label: &str, run: &BalanceRun) -> Table4Rows {
    let mb = |v: &[u64]| v.iter().map(|&b| b as f64 / 1e6).collect();
    Table4Rows {
        workload: label.into(),
        write_mb: mb(&run.write_bytes_per_day),
        balance_mb: mb(&run.migration_bytes_per_day),
    }
}

/// Runs the Table 4 experiment for D2 on both workloads.
pub fn run(
    harvard: &HarvardTrace,
    web: &WebTrace,
    cfg: &ClusterConfig,
    warmup: d2_sim::SimTime,
) -> Table4 {
    run_traced(harvard, web, cfg, warmup, &SharedSink::null(), 1)
}

/// [`run`] with both workload runs traced into `sink`, using up to
/// `jobs` worker threads. The two workload simulations are independent,
/// so they fan out like any other cell pair: private trace buffers,
/// merged Harvard-then-Webcache regardless of completion order.
pub fn run_traced(
    harvard: &HarvardTrace,
    web: &WebTrace,
    cfg: &ClusterConfig,
    warmup: d2_sim::SimTime,
    sink: &SharedSink,
    jobs: usize,
) -> Table4 {
    let sink_enabled = sink.enabled();
    let labels = ["Harvard", "Webcache"];
    let outcomes = exec::parallel_map(&labels, jobs, |_, &label| {
        let run_sink = if sink_enabled {
            SharedSink::memory(0)
        } else {
            SharedSink::null()
        };
        let stream = match label {
            "Harvard" => balance_sim::harvard_churn(harvard, SystemKind::D2),
            _ => balance_sim::webcache_churn(web, SystemKind::D2),
        };
        let run = balance_sim::run_traced(BalanceSystem::D2, cfg, &stream, warmup, &run_sink);
        (to_rows(label, &run), run_sink.drain())
    });
    let mut workloads = Vec::with_capacity(outcomes.len());
    for (rows, events) in outcomes {
        sink.extend(events);
        workloads.push(rows);
    }
    Table4 { workloads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rand::SeedableRng;

    #[test]
    fn migration_overhead_in_a_sane_band() {
        let harvard = HarvardTrace::generate(
            &Scale::Quick.harvard(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let web = WebTrace::generate(
            &Scale::Quick.web(),
            &mut rand::rngs::StdRng::seed_from_u64(6),
        );
        let cfg = Scale::Quick.cluster(3);
        let t = run(&harvard, &web, &cfg, d2_sim::SimTime::from_secs(6 * 3600));
        assert_eq!(t.workloads.len(), 2);
        for w in &t.workloads {
            assert!(w.total_write() > 0.0, "{} wrote nothing", w.workload);
            // Migration exists but is not orders of magnitude above
            // writes (Table 4's qualitative claim).
            assert!(
                w.overhead_ratio() < 10.0,
                "{} overhead ratio {}",
                w.workload,
                w.overhead_ratio()
            );
        }
        assert!(!t.render().is_empty());
    }
}
