//! End-to-end checks for the `d2-exp churn` experiment: the rendered
//! report and the `--obs-out` trace must be byte-identical at every
//! `--jobs` value, and the retry/stabilization machinery must hold the
//! lookup success rate at its acceptance floor under the default
//! failure trace.

use d2_experiments::churn;
use d2_experiments::Scale;
use d2_obs::{to_jsonl, SharedSink};
use d2_ring::RetryPolicy;

#[test]
fn churn_report_and_trace_are_byte_identical_across_jobs() {
    let mut renders = Vec::new();
    let mut traces = Vec::new();
    for jobs in [1usize, 2, 8] {
        let sink = SharedSink::memory(0);
        let churn = churn::run_traced(Scale::Quick, 42, jobs, &sink);
        renders.push(churn.render());
        traces.push(to_jsonl(&sink.drain()));
    }
    assert_eq!(renders[0], renders[1], "--jobs 1 vs 2 report diverged");
    assert_eq!(renders[0], renders[2], "--jobs 1 vs 8 report diverged");
    assert_eq!(traces[0], traces[1], "--jobs 1 vs 2 trace diverged");
    assert_eq!(traces[0], traces[2], "--jobs 1 vs 8 trace diverged");
    assert!(!traces[0].is_empty(), "traced run must emit events");
}

#[test]
fn default_failure_trace_meets_the_availability_floor() {
    let churn = churn::run(Scale::Quick, 42, 4);
    let cap = RetryPolicy::default().max_retries;

    let calm = churn.row(0.0).expect("0x row present");
    assert_eq!(calm.failed, 0, "message drops alone must never fail");

    let paper = churn.row(1.0).expect("1x row present");
    assert!(
        paper.success_rate() >= 0.999,
        "1x churn success rate {} below the 99.9% floor",
        paper.success_rate()
    );
    assert!(paper.max_retries <= cap, "retry cap exceeded");

    for row in &churn.rows {
        assert!(row.max_retries <= cap);
        assert!(row.lookups > 0);
    }
}
