//! The executor's central contract: a parallel run is **byte-identical**
//! to the sequential run — same `PerfReport`s, same trace JSONL — at any
//! worker count. These tests pin that for the perf suite and the balance
//! figures, plus a property test over arbitrary worker counts.

use d2_core::{Parallelism, SystemKind};
use d2_experiments::fig16_17::{self, ALL_SYSTEMS};
use d2_experiments::perf_suite::{self, SuiteConfig, SuiteResult};
use d2_experiments::{table4, Scale};
use d2_obs::{to_jsonl, SharedSink};
use d2_workload::{HarvardTrace, WebTrace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn harvard() -> HarvardTrace {
    HarvardTrace::generate(&Scale::Quick.harvard(), &mut StdRng::seed_from_u64(5))
}

fn web() -> WebTrace {
    WebTrace::generate(&Scale::Quick.web(), &mut StdRng::seed_from_u64(6))
}

/// Runs the perf suite at a given worker count, returning the result and
/// the trace serialized exactly as `--obs-out` would write it.
fn suite_at(trace: &HarvardTrace, jobs: usize, seed: u64) -> (SuiteResult, String) {
    let sink = SharedSink::memory(0);
    let cfg = SuiteConfig {
        sizes: vec![16],
        kbps: vec![1500],
        measure_groups: 40,
        seed,
        sink: sink.clone(),
        jobs,
        ..SuiteConfig::default()
    };
    let result = perf_suite::run(trace, &cfg);
    (result, to_jsonl(&sink.drain()))
}

#[test]
fn suite_reports_and_jsonl_identical_at_any_worker_count() {
    let trace = harvard();
    let (base, base_jsonl) = suite_at(&trace, 1, 11);
    assert!(!base.cells.is_empty());
    assert!(!base_jsonl.is_empty());
    for jobs in [2, 8] {
        let (par, par_jsonl) = suite_at(&trace, jobs, 11);
        assert_eq!(par.cells, base.cells, "reports differ at jobs={jobs}");
        assert_eq!(par.groups.len(), base.groups.len());
        assert_eq!(par_jsonl, base_jsonl, "trace differs at jobs={jobs}");
    }
}

#[test]
fn suite_cross_system_pairing_survives_parallelism() {
    // The per-cell seeds exclude the system kind, so the D2-vs-traditional
    // speedup stays a paired comparison — and therefore > 1 — no matter
    // how many workers ran the cells.
    let trace = harvard();
    for jobs in [1, 4] {
        let (result, _) = suite_at(&trace, jobs, 11);
        let s = result
            .speedup(
                SystemKind::D2,
                SystemKind::Traditional,
                16,
                1500,
                Parallelism::Seq,
            )
            .unwrap();
        assert!(
            s > 1.0,
            "jobs={jobs}: paired speedup should exceed 1, got {s}"
        );
    }
}

#[test]
fn balance_figures_identical_at_any_worker_count() {
    let trace = harvard();
    let cfg = Scale::Quick.cluster(3);
    let warmup = d2_sim::SimTime::from_secs(6 * 3600);
    let run_at = |jobs: usize| {
        let sink = SharedSink::memory(0);
        let fig = fig16_17::fig16_traced(&trace, &cfg, &ALL_SYSTEMS, warmup, &sink, jobs);
        (fig.render(), to_jsonl(&sink.drain()))
    };
    let (base_render, base_jsonl) = run_at(1);
    for jobs in [2, 4] {
        let (render, jsonl) = run_at(jobs);
        assert_eq!(render, base_render, "fig16 output differs at jobs={jobs}");
        assert_eq!(jsonl, base_jsonl, "fig16 trace differs at jobs={jobs}");
    }
}

#[test]
fn table4_identical_at_any_worker_count() {
    let h = harvard();
    let w = web();
    let cfg = Scale::Quick.cluster(3);
    let warmup = d2_sim::SimTime::from_secs(6 * 3600);
    let run_at = |jobs: usize| {
        let sink = SharedSink::memory(0);
        let t = table4::run_traced(&h, &w, &cfg, warmup, &sink, jobs);
        (t.render(), to_jsonl(&sink.drain()))
    };
    let (base_render, base_jsonl) = run_at(1);
    let (par_render, par_jsonl) = run_at(2);
    assert_eq!(par_render, base_render);
    assert_eq!(par_jsonl, base_jsonl);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Reports and traces are invariant to the worker count — and hence
    /// to completion order, since with `jobs > 1` the cells finish in
    /// whatever order the scheduler produces.
    #[test]
    fn suite_invariant_to_worker_count(jobs in 2usize..9, seed in 0u64..3) {
        let trace = harvard();
        let (base, base_jsonl) = suite_at(&trace, 1, 20 + seed);
        let (par, par_jsonl) = suite_at(&trace, jobs, 20 + seed);
        prop_assert_eq!(par.cells, base.cells);
        prop_assert_eq!(par_jsonl, base_jsonl);
    }
}
