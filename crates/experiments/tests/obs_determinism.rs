//! Same seed ⇒ byte-identical trace export.
//!
//! The `--obs-out` JSONL is meant to be committed and diffed, so the
//! whole pipeline — workload generation, simulation, event recording,
//! serialization — must be a pure function of the seed. This exercises
//! both traced drivers (the Section 9 performance suite and the
//! Section 10 balance simulation) end to end, twice each.

use d2_experiments::balance_sim::{self, BalanceSystem};
use d2_experiments::perf_suite::{self, SuiteConfig};
use d2_experiments::Scale;
use d2_obs::{to_jsonl, SharedSink};
use d2_sim::SimTime;
use d2_types::SystemKind;
use d2_workload::HarvardTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn perf_trace_jsonl(seed: u64) -> String {
    let trace = HarvardTrace::generate(&Scale::Quick.harvard(), &mut StdRng::seed_from_u64(seed));
    let sink = SharedSink::memory(0);
    let cfg = SuiteConfig {
        sizes: vec![16],
        kbps: vec![1500],
        measure_groups: 40,
        seed,
        sink: sink.clone(),
        ..SuiteConfig::default()
    };
    perf_suite::run(&trace, &cfg);
    to_jsonl(&sink.drain())
}

fn balance_trace_jsonl(seed: u64) -> String {
    let trace = HarvardTrace::generate(&Scale::Quick.harvard(), &mut StdRng::seed_from_u64(seed));
    let stream = balance_sim::harvard_churn(&trace, SystemKind::D2);
    let cfg = Scale::Quick.cluster(seed);
    let sink = SharedSink::memory(0);
    balance_sim::run_traced(
        BalanceSystem::D2,
        &cfg,
        &stream,
        SimTime::from_secs(6 * 3600),
        &sink,
    );
    to_jsonl(&sink.drain())
}

#[test]
fn perf_suite_trace_is_byte_identical_across_runs() {
    let a = perf_trace_jsonl(11);
    let b = perf_trace_jsonl(11);
    assert!(!a.is_empty(), "the traced suite must record events");
    assert_eq!(a, b, "same seed must export byte-identical JSONL");
    for line in a.lines().take(50) {
        assert!(
            line.starts_with("{\"ev\":\"") && line.ends_with('}'),
            "bad JSONL line: {line}"
        );
    }
}

#[test]
fn balance_trace_is_byte_identical_across_runs() {
    let a = balance_trace_jsonl(3);
    let b = balance_trace_jsonl(3);
    assert!(a.lines().count() > 1, "balance run must record migrations");
    assert_eq!(a, b, "same seed must export byte-identical JSONL");
}

#[test]
fn different_seeds_diverge() {
    // Guards against the trivial failure mode where determinism holds
    // because nothing seed-dependent is recorded at all.
    assert_ne!(perf_trace_jsonl(11), perf_trace_jsonl(12));
}
