//! On-DHT block formats (paper Figure 2) and their binary codecs.

use crate::codec::{Reader, Writer};
use d2_types::hash::keyed_mac;
use d2_types::{sha256, ContentHash, D2Error, Key, Result, VolumeId};

/// The mutable, publisher-signed volume root. Updated in place; everything
/// else is reachable (and integrity-protected) from here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootBlock {
    /// The volume this root describes.
    pub volume: VolumeId,
    /// Monotonic publication sequence number.
    pub seq: u64,
    /// DHT key of the root directory block.
    pub dir_key: Key,
    /// Content hash of the root directory block.
    pub dir_hash: ContentHash,
    /// Keyed MAC over the above, standing in for the publisher's
    /// public-key signature (see DESIGN.md §3).
    pub signature: ContentHash,
}

impl RootBlock {
    /// Builds and signs a root block with the publisher `secret`.
    pub fn signed(
        volume: VolumeId,
        seq: u64,
        dir_key: Key,
        dir_hash: ContentHash,
        secret: &[u8],
    ) -> Self {
        let mut root = RootBlock {
            volume,
            seq,
            dir_key,
            dir_hash,
            signature: ContentHash::default(),
        };
        root.signature = keyed_mac(secret, &root.signable());
        root
    }

    fn signable(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&self.volume.0);
        w.put_u64(self.seq);
        w.put_key(&self.dir_key);
        w.put_hash(&self.dir_hash);
        w.finish()
    }

    /// Verifies the signature with the publisher `secret`.
    pub fn verify(&self, secret: &[u8]) -> Result<()> {
        if keyed_mac(secret, &self.signable()) == self.signature {
            Ok(())
        } else {
            Err(D2Error::BadSignature)
        }
    }

    /// Serializes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(b'R');
        w.put_bytes(&self.volume.0);
        w.put_u64(self.seq);
        w.put_key(&self.dir_key);
        w.put_hash(&self.dir_hash);
        w.put_hash(&self.signature);
        w.finish()
    }

    /// Parses from bytes.
    pub fn decode(data: &[u8]) -> Result<RootBlock> {
        let mut r = Reader::new(data);
        if r.get_u8()? != b'R' {
            return Err(D2Error::Codec("not a root block".into()));
        }
        let vol_bytes = r.get_bytes()?;
        let mut vol = [0u8; 20];
        if vol_bytes.len() != 20 {
            return Err(D2Error::Codec("volume id must be 20 bytes".into()));
        }
        vol.copy_from_slice(&vol_bytes);
        Ok(RootBlock {
            volume: VolumeId(vol),
            seq: r.get_u64()?,
            dir_key: r.get_key()?,
            dir_hash: r.get_hash()?,
            signature: r.get_hash()?,
        })
    }
}

/// What a directory entry names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// A subdirectory (target is its directory block).
    Dir,
    /// A regular file (target is its inode block).
    File,
    /// A small file stored inline in this directory block — no inode or
    /// data blocks exist (Section 3).
    InlineFile,
}

/// One entry of a directory block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// File or directory name within this directory.
    pub name: String,
    /// The 2-byte slot assigned to this entry (drives the key encoding).
    pub slot: u16,
    /// What the entry is.
    pub kind: EntryKind,
    /// DHT key of the child's metadata block (dir block or inode). For
    /// renamed entries this is the child's *original* location — D2 keeps
    /// keys stable across renames. Zero key for inline files.
    pub target_key: Key,
    /// Content hash of the child's metadata block (zero for inline).
    pub target_hash: ContentHash,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Inline contents for [`EntryKind::InlineFile`].
    pub inline: Vec<u8>,
}

/// An immutable directory metadata block.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DirBlock {
    /// Version of this directory block (bumped on every re-publication).
    pub version: u32,
    /// Next unused slot value (slots of removed entries are not reused).
    pub next_slot: u16,
    /// Entries in this directory.
    pub entries: Vec<DirEntry>,
}

impl DirBlock {
    /// Serializes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(b'D');
        w.put_u32(self.version);
        w.put_u16(self.next_slot);
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_str(&e.name);
            w.put_u16(e.slot);
            w.put_u8(match e.kind {
                EntryKind::Dir => 0,
                EntryKind::File => 1,
                EntryKind::InlineFile => 2,
            });
            w.put_key(&e.target_key);
            w.put_hash(&e.target_hash);
            w.put_u64(e.size);
            w.put_bytes(&e.inline);
        }
        w.finish()
    }

    /// Parses from bytes.
    pub fn decode(data: &[u8]) -> Result<DirBlock> {
        let mut r = Reader::new(data);
        if r.get_u8()? != b'D' {
            return Err(D2Error::Codec("not a directory block".into()));
        }
        let version = r.get_u32()?;
        let next_slot = r.get_u16()?;
        let n = r.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let name = r.get_str()?;
            let slot = r.get_u16()?;
            let kind = match r.get_u8()? {
                0 => EntryKind::Dir,
                1 => EntryKind::File,
                2 => EntryKind::InlineFile,
                k => return Err(D2Error::Codec(format!("bad entry kind {k}"))),
            };
            entries.push(DirEntry {
                name,
                slot,
                kind,
                target_key: r.get_key()?,
                target_hash: r.get_hash()?,
                size: r.get_u64()?,
                inline: r.get_bytes()?,
            });
        }
        Ok(DirBlock {
            version,
            next_slot,
            entries,
        })
    }

    /// Content hash of the encoded block (what the parent records).
    pub fn content_hash(&self) -> ContentHash {
        sha256(&self.encode())
    }

    /// Finds an entry by name.
    pub fn find(&self, name: &str) -> Option<&DirEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// A file inode: the ordered list of the file's data blocks.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct InodeBlock {
    /// Version of the file (matches the data blocks' key version field).
    pub version: u32,
    /// Total file size in bytes.
    pub size: u64,
    /// `(key, content hash, length)` of each data block, in order.
    pub blocks: Vec<(Key, ContentHash, u32)>,
}

impl InodeBlock {
    /// Serializes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(b'I');
        w.put_u32(self.version);
        w.put_u64(self.size);
        w.put_u32(self.blocks.len() as u32);
        for (k, h, len) in &self.blocks {
            w.put_key(k);
            w.put_hash(h);
            w.put_u32(*len);
        }
        w.finish()
    }

    /// Parses from bytes.
    pub fn decode(data: &[u8]) -> Result<InodeBlock> {
        let mut r = Reader::new(data);
        if r.get_u8()? != b'I' {
            return Err(D2Error::Codec("not an inode block".into()));
        }
        let version = r.get_u32()?;
        let size = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut blocks = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            blocks.push((r.get_key()?, r.get_hash()?, r.get_u32()?));
        }
        Ok(InodeBlock {
            version,
            size,
            blocks,
        })
    }

    /// Content hash of the encoded block.
    pub fn content_hash(&self) -> ContentHash {
        sha256(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_block_roundtrip_and_verify() {
        let root = RootBlock::signed(
            VolumeId::from_name("v"),
            3,
            Key::from_u64(9),
            sha256(b"dir"),
            b"publisher-secret",
        );
        let enc = root.encode();
        let dec = RootBlock::decode(&enc).unwrap();
        assert_eq!(dec, root);
        assert!(dec.verify(b"publisher-secret").is_ok());
        assert_eq!(dec.verify(b"wrong"), Err(D2Error::BadSignature));
    }

    #[test]
    fn tampered_root_fails_verification() {
        let mut root = RootBlock::signed(
            VolumeId::from_name("v"),
            1,
            Key::from_u64(9),
            sha256(b"dir"),
            b"s",
        );
        root.seq = 2; // forge a newer version
        assert_eq!(root.verify(b"s"), Err(D2Error::BadSignature));
    }

    #[test]
    fn dir_block_roundtrip() {
        let dir = DirBlock {
            version: 7,
            next_slot: 4,
            entries: vec![
                DirEntry {
                    name: "src".into(),
                    slot: 1,
                    kind: EntryKind::Dir,
                    target_key: Key::from_u64(1),
                    target_hash: sha256(b"src"),
                    size: 0,
                    inline: vec![],
                },
                DirEntry {
                    name: "README.md".into(),
                    slot: 2,
                    kind: EntryKind::File,
                    target_key: Key::from_u64(2),
                    target_hash: sha256(b"readme"),
                    size: 1234,
                    inline: vec![],
                },
                DirEntry {
                    name: ".gitignore".into(),
                    slot: 3,
                    kind: EntryKind::InlineFile,
                    target_key: Key::MIN,
                    target_hash: ContentHash::default(),
                    size: 7,
                    inline: b"target/".to_vec(),
                },
            ],
        };
        let dec = DirBlock::decode(&dir.encode()).unwrap();
        assert_eq!(dec, dir);
        assert_eq!(dec.find("src").unwrap().kind, EntryKind::Dir);
        assert!(dec.find("missing").is_none());
    }

    #[test]
    fn dir_hash_changes_with_content() {
        let mut dir = DirBlock {
            version: 1,
            next_slot: 1,
            entries: vec![],
        };
        let h1 = dir.content_hash();
        dir.version = 2;
        assert_ne!(h1, dir.content_hash());
    }

    #[test]
    fn inode_roundtrip() {
        let inode = InodeBlock {
            version: 2,
            size: 20000,
            blocks: vec![
                (Key::from_u64(1), sha256(b"b0"), 8192),
                (Key::from_u64(2), sha256(b"b1"), 8192),
                (Key::from_u64(3), sha256(b"b2"), 3616),
            ],
        };
        let dec = InodeBlock::decode(&inode.encode()).unwrap();
        assert_eq!(dec, inode);
    }

    #[test]
    fn decode_rejects_wrong_tag() {
        let inode = InodeBlock::default().encode();
        assert!(DirBlock::decode(&inode).is_err());
        assert!(RootBlock::decode(&inode).is_err());
        let dir = DirBlock::default().encode();
        assert!(InodeBlock::decode(&dir).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(DirBlock::decode(&[]).is_err());
        assert!(DirBlock::decode(&[b'D', 1]).is_err());
        assert!(RootBlock::decode(b"Rxxxx").is_err());
    }
}
