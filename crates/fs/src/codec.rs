//! A compact hand-rolled binary codec for on-DHT block formats.
//!
//! No general-purpose binary serde backend is in the allowed dependency
//! set, so the block formats encode/decode through this small helper. All
//! integers are big-endian; byte strings and lists are length-prefixed.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use d2_types::{ContentHash, D2Error, Key, Result, KEY_BYTES};

/// Writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Appends a length-prefixed byte string (max `u32::MAX`).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a 64-byte key.
    pub fn put_key(&mut self, k: &Key) {
        self.buf.put_slice(k.as_bytes());
    }

    /// Appends a 32-byte content hash.
    pub fn put_hash(&mut self, h: &ContentHash) {
        self.buf.put_slice(h.as_bytes());
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// Reader over an encoded buffer.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Wraps `data` for decoding.
    pub fn new(data: &[u8]) -> Self {
        Reader {
            buf: Bytes::copy_from_slice(data),
        }
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            return Err(D2Error::Codec(format!(
                "truncated block: need {n} bytes, have {}",
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.get_u32()? as usize;
        self.need(n)?;
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|_| D2Error::Codec("invalid utf-8 in block".into()))
    }

    /// Reads a 64-byte key.
    pub fn get_key(&mut self) -> Result<Key> {
        self.need(KEY_BYTES)?;
        let mut b = [0u8; KEY_BYTES];
        self.buf.copy_to_slice(&mut b);
        Ok(Key::from_bytes(b))
    }

    /// Reads a 32-byte content hash.
    pub fn get_hash(&mut self) -> Result<ContentHash> {
        self.need(32)?;
        let mut b = [0u8; 32];
        self.buf.copy_to_slice(&mut b);
        Ok(ContentHash(b))
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2_types::sha256;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 1);
        let enc = w.finish();
        let mut r = Reader::new(&enc);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_compound() {
        let key = Key::from_u64(42);
        let hash = sha256(b"h");
        let mut w = Writer::new();
        w.put_str("hello/world.txt");
        w.put_key(&key);
        w.put_hash(&hash);
        w.put_bytes(&[1, 2, 3]);
        let enc = w.finish();
        let mut r = Reader::new(&enc);
        assert_eq!(r.get_str().unwrap(), "hello/world.txt");
        assert_eq!(r.get_key().unwrap(), key);
        assert_eq!(r.get_hash().unwrap(), hash);
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(1);
        let enc = w.finish();
        let mut r = Reader::new(&enc[..4]);
        assert!(r.get_u64().is_err());
        let mut r2 = Reader::new(&enc);
        let _ = r2.get_u32();
        assert!(r2.get_u64().is_err());
    }

    #[test]
    fn bad_utf8_is_an_error() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let enc = w.finish();
        let mut r = Reader::new(&enc);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn empty_bytes_roundtrip() {
        let mut w = Writer::new();
        w.put_bytes(&[]);
        let enc = w.finish();
        let mut r = Reader::new(&enc);
        assert_eq!(r.get_bytes().unwrap(), Vec::<u8>::new());
    }
}
