//! The writer-side file system: in-memory mirror, write-back cache, and
//! block publication.
//!
//! D2's usage model (inherited from CFS) is single-writer, multi-reader
//! per volume. The writer therefore keeps an authoritative in-memory
//! mirror of the tree; mutations buffer in a 30-second write-back cache
//! and [`Fs::flush`] publishes dirty state as immutable blocks: data
//! blocks first, then new versions of every metadata block up the path,
//! then the in-place root update — exactly the publication order of
//! Section 3.

use crate::blocks::{DirBlock, DirEntry, EntryKind, InodeBlock, RootBlock};
use d2_sim::SimTime;
use d2_types::{
    sha256, BlockKind, BlockName, ContentHash, D2Error, Key, PathSlots, Result, SystemKind,
    VolumeId, BLOCK_SIZE, INLINE_DATA_MAX,
};
use std::collections::{BTreeMap, HashMap};

/// Where published blocks go. Implemented by the in-memory test store
/// here, by the simulated cluster in `d2-core`, and by the networked
/// deployment in `d2-net`.
pub trait BlockIo {
    /// Stores a block under the key derived from `name` by the active
    /// system's encoding.
    fn put(&mut self, name: &BlockName, data: Vec<u8>, now: SimTime) -> Result<()>;

    /// Fetches a block by key.
    fn get(&mut self, key: &Key, now: SimTime) -> Result<Vec<u8>>;

    /// Removes a block after `delay` (the `remove(key, delay)` of
    /// Section 3).
    fn remove(&mut self, key: &Key, now: SimTime, delay: SimTime) -> Result<()>;
}

/// A trivial in-memory [`BlockIo`] for tests and examples.
#[derive(Clone, Debug)]
pub struct MemStore {
    system: SystemKind,
    blocks: HashMap<Key, Vec<u8>>,
    tombstones: Vec<(Key, SimTime)>,
    /// Total bytes ever written (for accounting tests).
    pub bytes_written: u64,
}

impl MemStore {
    /// Creates an empty store using `system`'s key encoding.
    pub fn new(system: SystemKind) -> Self {
        MemStore {
            system,
            blocks: HashMap::new(),
            tombstones: Vec::new(),
            bytes_written: 0,
        }
    }

    /// Number of live blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Applies delayed removals that are due at `now`.
    pub fn gc(&mut self, now: SimTime) {
        let due: Vec<Key> = self
            .tombstones
            .iter()
            .filter(|(_, at)| *at <= now)
            .map(|(k, _)| *k)
            .collect();
        self.tombstones.retain(|(_, at)| *at > now);
        for k in due {
            self.blocks.remove(&k);
        }
    }

    /// Directly replaces a block under `key`, bypassing name-based keying —
    /// a hook for corruption / fault-injection tests.
    pub fn insert_raw(&mut self, key: Key, data: Vec<u8>) {
        self.blocks.insert(key, data);
    }

    /// All stored keys (sorted), for locality assertions in tests.
    pub fn sorted_keys(&self) -> Vec<Key> {
        let mut ks: Vec<Key> = self.blocks.keys().copied().collect();
        ks.sort();
        ks
    }
}

impl BlockIo for MemStore {
    fn put(&mut self, name: &BlockName, data: Vec<u8>, _now: SimTime) -> Result<()> {
        self.bytes_written += data.len() as u64;
        self.blocks.insert(self.system.key_of(name), data);
        Ok(())
    }

    fn get(&mut self, key: &Key, _now: SimTime) -> Result<Vec<u8>> {
        self.blocks.get(key).cloned().ok_or(D2Error::NotFound(*key))
    }

    fn remove(&mut self, key: &Key, now: SimTime, delay: SimTime) -> Result<()> {
        self.tombstones.push((*key, now + delay));
        Ok(())
    }
}

/// Tunables for the file-system layer.
#[derive(Clone, Copy, Debug)]
pub struct FsConfig {
    /// Which system's key encoding publishes use.
    pub system: SystemKind,
    /// Write-back window (paper: 30 s).
    pub writeback_delay: SimTime,
    /// Delay before removed/replaced blocks disappear (paper: 30 s).
    pub remove_delay: SimTime,
    /// Files at or below this size are inlined into the parent directory
    /// block.
    pub inline_max: usize,
    /// Maximum data block size (paper: 8 KB).
    pub block_size: usize,
}

impl FsConfig {
    /// Paper defaults for the given system.
    pub fn new(system: SystemKind) -> Self {
        FsConfig {
            system,
            writeback_delay: SimTime::from_secs(30),
            remove_delay: SimTime::from_secs(30),
            inline_max: INLINE_DATA_MAX,
            block_size: BLOCK_SIZE,
        }
    }
}

/// Counters over the life of an [`Fs`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Blocks published (data + metadata + root).
    pub blocks_written: u64,
    /// Bytes published.
    pub bytes_written: u64,
    /// Blocks scheduled for removal.
    pub blocks_removed: u64,
    /// Flush invocations that published at least one block.
    pub flushes: u64,
    /// Files currently stored inline.
    pub inline_files: u64,
}

/// One publication action, reported by [`Fs::flush`] for accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteOp {
    /// A block was stored.
    Put {
        /// Logical block name.
        name: BlockName,
        /// Key it was stored under.
        key: Key,
        /// Encoded length.
        len: usize,
    },
    /// A block was scheduled for removal.
    Remove {
        /// Key being removed.
        key: Key,
    },
}

#[derive(Clone, Debug)]
enum NodeKind {
    Dir {
        children: BTreeMap<String, usize>,
        next_slot: u16,
    },
    File {
        data: Vec<u8>,
    },
}

#[derive(Clone, Debug)]
struct Node {
    /// Display name in the current parent.
    name: String,
    /// Path used for key *encoding* — fixed at creation (renames keep the
    /// original keys, Section 4.2).
    enc_path: String,
    /// Slot path used for the D2 encoding — also fixed at creation.
    slots: PathSlots,
    /// Current metadata version (in the key's version field).
    version: u32,
    parent: Option<usize>,
    dirty: bool,
    /// `(key, hash, encoded len)` of the last published metadata block.
    published: Option<(Key, ContentHash, u32)>,
    kind: NodeKind,
}

/// The single-writer file system for one volume.
///
/// # Examples
///
/// ```
/// use d2_fs::{Fs, FsConfig, MemStore};
/// use d2_sim::SimTime;
/// use d2_types::SystemKind;
///
/// # fn main() -> d2_types::Result<()> {
/// let mut store = MemStore::new(SystemKind::D2);
/// let mut fs = Fs::new("myvol", b"secret", FsConfig::new(SystemKind::D2));
/// fs.write(&mut store, "/docs/notes.txt", b"hello".to_vec(), SimTime::ZERO)?;
/// assert_eq!(fs.read("/docs/notes.txt")?, b"hello");
/// fs.flush(&mut store, SimTime::from_secs(30))?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Fs {
    volume: VolumeId,
    secret: Vec<u8>,
    cfg: FsConfig,
    nodes: Vec<Node>,
    root_seq: u64,
    last_flush: SimTime,
    pending_removes: Vec<Key>,
    stats: FsStats,
}

impl Fs {
    /// Creates an empty volume named `volume_name`, signed with `secret`.
    pub fn new(volume_name: &str, secret: &[u8], cfg: FsConfig) -> Self {
        let root = Node {
            name: String::new(),
            enc_path: String::new(),
            slots: PathSlots::root(),
            version: 0,
            parent: None,
            dirty: true,
            published: None,
            kind: NodeKind::Dir {
                children: BTreeMap::new(),
                next_slot: 1,
            },
        };
        Fs {
            volume: VolumeId::from_name(volume_name),
            secret: secret.to_vec(),
            cfg,
            nodes: vec![root],
            root_seq: 0,
            last_flush: SimTime::ZERO,
            pending_removes: Vec::new(),
            stats: FsStats::default(),
        }
    }

    /// The volume id.
    pub fn volume(&self) -> VolumeId {
        self.volume
    }

    /// The active configuration.
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Whether unpublished changes are buffered.
    pub fn is_dirty(&self) -> bool {
        self.nodes.iter().any(|n| n.dirty) || !self.pending_removes.is_empty()
    }

    // ---- path resolution -------------------------------------------------

    fn components(path: &str) -> Vec<&str> {
        path.split('/').filter(|c| !c.is_empty()).collect()
    }

    fn resolve(&self, path: &str) -> Option<usize> {
        let mut cur = 0usize;
        for comp in Self::components(path) {
            match &self.nodes[cur].kind {
                NodeKind::Dir { children, .. } => {
                    cur = *children.get(comp)?;
                }
                NodeKind::File { .. } => return None,
            }
        }
        Some(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(usize, &'p str)> {
        let comps = Self::components(path);
        let Some((&leaf, dirs)) = comps.split_last() else {
            return Err(D2Error::InvalidOperation("empty path".into()));
        };
        let mut cur = 0usize;
        for comp in dirs {
            match &self.nodes[cur].kind {
                NodeKind::Dir { children, .. } => match children.get(*comp) {
                    Some(&c) => cur = c,
                    None => return Err(D2Error::NoSuchPath(path.to_string())),
                },
                NodeKind::File { .. } => return Err(D2Error::NoSuchPath(path.to_string())),
            }
        }
        Ok((cur, leaf))
    }

    fn mark_dirty_up(&mut self, mut idx: usize) {
        loop {
            self.nodes[idx].dirty = true;
            match self.nodes[idx].parent {
                Some(p) => idx = p,
                None => break,
            }
        }
    }

    fn alloc_child(&mut self, parent: usize, name: &str, is_dir: bool) -> Result<usize> {
        let (parent_slots, parent_path) = (
            self.nodes[parent].slots,
            self.nodes[parent].enc_path.clone(),
        );
        let slot = match &mut self.nodes[parent].kind {
            NodeKind::Dir { next_slot, .. } => {
                if *next_slot == 0 {
                    return Err(D2Error::DirectoryFull(parent_path));
                }
                let s = *next_slot;
                *next_slot = next_slot.wrapping_add(1);
                s
            }
            NodeKind::File { .. } => {
                return Err(D2Error::InvalidOperation("parent is a file".into()))
            }
        };
        // The encoding path carries a creation nonce: two files that
        // successively occupy the same name (delete-then-recreate, or
        // rename-then-recreate) must not collide in the *hashed* key
        // encodings. (D2 keys are already collision-free via fresh slots;
        // CFS's real traditional keys are content hashes, which cannot
        // collide this way either.)
        let enc_path = format!("{parent_path}/{name}#{}", self.nodes.len());
        let node = Node {
            name: name.to_string(),
            enc_path,
            slots: parent_slots.child(slot, name),
            version: 0,
            parent: Some(parent),
            dirty: true,
            published: None,
            kind: if is_dir {
                NodeKind::Dir {
                    children: BTreeMap::new(),
                    next_slot: 1,
                }
            } else {
                NodeKind::File { data: Vec::new() }
            },
        };
        let idx = self.nodes.len();
        self.nodes.push(node);
        match &mut self.nodes[parent].kind {
            NodeKind::Dir { children, .. } => {
                children.insert(name.to_string(), idx);
            }
            NodeKind::File { .. } => unreachable!(),
        }
        Ok(idx)
    }

    // ---- mutation API ----------------------------------------------------

    /// Creates a directory (and any missing ancestors).
    pub fn mkdir_p(&mut self, path: &str) -> Result<()> {
        let mut cur = 0usize;
        for comp in Self::components(path) {
            let existing = match &self.nodes[cur].kind {
                NodeKind::Dir { children, .. } => children.get(comp).copied(),
                NodeKind::File { .. } => {
                    return Err(D2Error::InvalidOperation(format!(
                        "{comp} is a file, not a directory"
                    )))
                }
            };
            cur = match existing {
                Some(c) => match self.nodes[c].kind {
                    NodeKind::Dir { .. } => c,
                    NodeKind::File { .. } => return Err(D2Error::AlreadyExists(path.to_string())),
                },
                None => {
                    let c = self.alloc_child(cur, comp, true)?;
                    self.mark_dirty_up(cur);
                    c
                }
            };
        }
        Ok(())
    }

    /// Writes (creates or overwrites) a file, creating missing parent
    /// directories. Publication happens at the next [`Fs::flush`] /
    /// [`Fs::maybe_flush`].
    ///
    /// # Errors
    ///
    /// Fails if a path component is a file, or a directory runs out of
    /// slots.
    pub fn write<S: BlockIo>(
        &mut self,
        _io: &mut S,
        path: &str,
        data: Vec<u8>,
        _now: SimTime,
    ) -> Result<()> {
        let comps = Self::components(path);
        let Some((_, dirs)) = comps.split_last() else {
            return Err(D2Error::InvalidOperation("empty path".into()));
        };
        if !dirs.is_empty() {
            let dir_path = dirs.join("/");
            self.mkdir_p(&dir_path)?;
        }
        let (parent, leaf) = self.resolve_parent(path)?;
        let existing = match &self.nodes[parent].kind {
            NodeKind::Dir { children, .. } => children.get(leaf).copied(),
            NodeKind::File { .. } => unreachable!(),
        };
        let idx = match existing {
            Some(i) => {
                if matches!(self.nodes[i].kind, NodeKind::Dir { .. }) {
                    return Err(D2Error::AlreadyExists(format!("{path} is a directory")));
                }
                // Overwrite: retire the old version's blocks (computed
                // from the OLD data length), then install the new data.
                self.retire_file_blocks(i);
                match &mut self.nodes[i].kind {
                    NodeKind::File { data: d } => *d = data,
                    NodeKind::Dir { .. } => unreachable!(),
                }
                self.nodes[i].version += 1;
                i
            }
            None => {
                let i = self.alloc_child(parent, leaf, false)?;
                match &mut self.nodes[i].kind {
                    NodeKind::File { data: d } => *d = data,
                    NodeKind::Dir { .. } => unreachable!(),
                }
                i
            }
        };
        self.mark_dirty_up(idx);
        Ok(())
    }

    /// Reads a file through the writer's mirror (write-back cache
    /// semantics: the writer always sees its own latest data).
    pub fn read(&self, path: &str) -> Result<Vec<u8>> {
        let idx = self
            .resolve(path)
            .ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?;
        match &self.nodes[idx].kind {
            NodeKind::File { data } => Ok(data.clone()),
            NodeKind::Dir { .. } => {
                Err(D2Error::InvalidOperation(format!("{path} is a directory")))
            }
        }
    }

    /// Lists the names in a directory.
    pub fn list(&self, path: &str) -> Result<Vec<String>> {
        let idx = self
            .resolve(path)
            .ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?;
        match &self.nodes[idx].kind {
            NodeKind::Dir { children, .. } => Ok(children.keys().cloned().collect()),
            NodeKind::File { .. } => Err(D2Error::InvalidOperation(format!("{path} is a file"))),
        }
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_some()
    }

    /// File size, if `path` is a file.
    pub fn size_of(&self, path: &str) -> Result<u64> {
        let idx = self
            .resolve(path)
            .ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?;
        match &self.nodes[idx].kind {
            NodeKind::File { data } => Ok(data.len() as u64),
            NodeKind::Dir { .. } => Err(D2Error::InvalidOperation("is a directory".into())),
        }
    }

    /// Removes a file; its published blocks are retired with the 30 s
    /// removal delay at the next flush.
    pub fn remove_file(&mut self, path: &str) -> Result<()> {
        let (parent, leaf) = self.resolve_parent(path)?;
        let idx = match &self.nodes[parent].kind {
            NodeKind::Dir { children, .. } => children
                .get(leaf)
                .copied()
                .ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?,
            NodeKind::File { .. } => unreachable!(),
        };
        if matches!(self.nodes[idx].kind, NodeKind::Dir { .. }) {
            return Err(D2Error::InvalidOperation(format!("{path} is a directory")));
        }
        self.retire_file_blocks(idx);
        match &mut self.nodes[parent].kind {
            NodeKind::Dir { children, .. } => {
                children.remove(leaf);
            }
            NodeKind::File { .. } => unreachable!(),
        }
        self.mark_dirty_up(parent);
        Ok(())
    }

    /// Recursively removes a directory.
    pub fn remove_dir(&mut self, path: &str) -> Result<()> {
        let idx = self
            .resolve(path)
            .ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?;
        if idx == 0 {
            return Err(D2Error::InvalidOperation(
                "cannot remove volume root".into(),
            ));
        }
        let NodeKind::Dir { children, .. } = &self.nodes[idx].kind else {
            return Err(D2Error::InvalidOperation(format!("{path} is a file")));
        };
        // Retire the whole subtree.
        let child_names: Vec<String> = children.keys().cloned().collect();
        for name in child_names {
            let sub = format!("{path}/{name}");
            let cidx = self.resolve(&sub).expect("child exists");
            match self.nodes[cidx].kind {
                NodeKind::Dir { .. } => self.remove_dir(&sub)?,
                NodeKind::File { .. } => self.remove_file(&sub)?,
            }
        }
        // Retire the directory's own metadata block.
        if let Some((key, _, _)) = self.nodes[idx].published {
            self.pending_removes.push(key);
        }
        let parent = self.nodes[idx].parent.expect("non-root has parent");
        let leaf = self.nodes[idx].name.clone();
        match &mut self.nodes[parent].kind {
            NodeKind::Dir { children, .. } => {
                children.remove(&leaf);
            }
            NodeKind::File { .. } => unreachable!(),
        }
        self.mark_dirty_up(parent);
        Ok(())
    }

    /// Renames/moves a file or directory. The moved subtree **keeps its
    /// original block keys** (Section 4.2): only the parent directories'
    /// metadata is re-published.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        let idx = self
            .resolve(from)
            .ok_or_else(|| D2Error::NoSuchPath(from.to_string()))?;
        if idx == 0 {
            return Err(D2Error::InvalidOperation("cannot move volume root".into()));
        }
        if self.resolve(to).is_some() {
            return Err(D2Error::AlreadyExists(to.to_string()));
        }
        let (new_parent, new_leaf) = self.resolve_parent(to)?;
        if !matches!(self.nodes[new_parent].kind, NodeKind::Dir { .. }) {
            return Err(D2Error::NoSuchPath(to.to_string()));
        }
        // Guard against moving a directory under itself.
        let mut p = Some(new_parent);
        while let Some(a) = p {
            if a == idx {
                return Err(D2Error::InvalidOperation(
                    "cannot move a directory into itself".into(),
                ));
            }
            p = self.nodes[a].parent;
        }
        let old_parent = self.nodes[idx].parent.expect("non-root");
        let old_leaf = self.nodes[idx].name.clone();
        match &mut self.nodes[old_parent].kind {
            NodeKind::Dir { children, .. } => {
                children.remove(&old_leaf);
            }
            NodeKind::File { .. } => unreachable!(),
        }
        match &mut self.nodes[new_parent].kind {
            NodeKind::Dir { children, .. } => {
                children.insert(new_leaf.to_string(), idx);
            }
            NodeKind::File { .. } => unreachable!(),
        }
        // Display name changes; enc_path and slots intentionally do NOT.
        self.nodes[idx].name = new_leaf.to_string();
        self.nodes[idx].parent = Some(new_parent);
        self.mark_dirty_up(old_parent);
        self.mark_dirty_up(new_parent);
        Ok(())
    }

    // ---- publication -----------------------------------------------------

    /// Flushes if the write-back window has elapsed since the last flush.
    pub fn maybe_flush<S: BlockIo>(&mut self, io: &mut S, now: SimTime) -> Result<Vec<WriteOp>> {
        if now.saturating_sub(self.last_flush) >= self.cfg.writeback_delay && self.is_dirty() {
            self.flush(io, now)
        } else {
            Ok(Vec::new())
        }
    }

    /// Publishes all dirty state: data blocks, new metadata block versions
    /// bottom-up, then the signed in-place root update. Returns the
    /// publication log for accounting.
    pub fn flush<S: BlockIo>(&mut self, io: &mut S, now: SimTime) -> Result<Vec<WriteOp>> {
        if !self.is_dirty() {
            return Ok(Vec::new());
        }
        let mut ops = Vec::new();

        // Publish the tree bottom-up starting from the root (post-order).
        self.publish_node(io, 0, now, &mut ops)?;

        // Root block, updated in place.
        let (dir_key, dir_hash, _) = self.nodes[0].published.expect("root just published");
        self.root_seq += 1;
        let root = RootBlock::signed(self.volume, self.root_seq, dir_key, dir_hash, &self.secret);
        let name = self.root_block_name();
        let data = root.encode();
        self.record_put(io, &name, data, now, &mut ops)?;

        // Retire replaced/deleted blocks with the removal delay.
        for key in std::mem::take(&mut self.pending_removes) {
            io.remove(&key, now, self.cfg.remove_delay)?;
            self.stats.blocks_removed += 1;
            ops.push(WriteOp::Remove { key });
        }

        self.last_flush = now;
        self.stats.flushes += 1;
        Ok(ops)
    }

    /// The name of the volume's root block (fixed key; updated in place).
    pub fn root_block_name(&self) -> BlockName {
        BlockName {
            volume: self.volume,
            slots: PathSlots::root(),
            path: String::new(),
            block_no: u64::MAX,
            version: 0,
            kind: BlockKind::Root,
        }
    }

    fn publish_node<S: BlockIo>(
        &mut self,
        io: &mut S,
        idx: usize,
        now: SimTime,
        ops: &mut Vec<WriteOp>,
    ) -> Result<()> {
        if !self.nodes[idx].dirty {
            return Ok(());
        }
        match &self.nodes[idx].kind {
            NodeKind::File { .. } => self.publish_file(io, idx, now, ops),
            NodeKind::Dir { children, .. } => {
                let child_idxs: Vec<usize> = children.values().copied().collect();
                for c in child_idxs {
                    self.publish_node(io, c, now, ops)?;
                }
                self.publish_dir(io, idx, now, ops)
            }
        }
    }

    fn publish_file<S: BlockIo>(
        &mut self,
        io: &mut S,
        idx: usize,
        now: SimTime,
        ops: &mut Vec<WriteOp>,
    ) -> Result<()> {
        let NodeKind::File { data } = &self.nodes[idx].kind else {
            unreachable!()
        };
        let data = data.clone();
        if data.len() <= self.cfg.inline_max {
            // Inline in the parent directory block: nothing to publish
            // here; the parent embeds the bytes.
            self.nodes[idx].published = None;
            self.nodes[idx].dirty = false;
            return Ok(());
        }
        let version = self.nodes[idx].version;
        let mut inode = InodeBlock {
            version,
            size: data.len() as u64,
            blocks: Vec::new(),
        };
        for (i, chunk) in data.chunks(self.cfg.block_size).enumerate() {
            let name = self.block_name(idx, 1 + i as u64, version, BlockKind::Data);
            let key = self.cfg.system.key_of(&name);
            inode.blocks.push((key, sha256(chunk), chunk.len() as u32));
            self.record_put(io, &name, chunk.to_vec(), now, ops)?;
        }
        let name = self.block_name(idx, 0, version, BlockKind::Inode);
        let key = self.cfg.system.key_of(&name);
        let encoded = inode.encode();
        let hash = sha256(&encoded);
        let len = encoded.len() as u32;
        self.record_put(io, &name, encoded, now, ops)?;
        self.nodes[idx].published = Some((key, hash, len));
        self.nodes[idx].dirty = false;
        Ok(())
    }

    fn publish_dir<S: BlockIo>(
        &mut self,
        io: &mut S,
        idx: usize,
        now: SimTime,
        ops: &mut Vec<WriteOp>,
    ) -> Result<()> {
        // Retire the previous version of this directory block.
        if let Some((old_key, _, _)) = self.nodes[idx].published {
            self.pending_removes.push(old_key);
        }
        self.nodes[idx].version += 1;
        let version = self.nodes[idx].version;

        let NodeKind::Dir {
            children,
            next_slot,
        } = &self.nodes[idx].kind
        else {
            unreachable!()
        };
        let next_slot = *next_slot;
        let mut inline_count = 0u64;
        let mut entries = Vec::with_capacity(children.len());
        for (name, &cidx) in children.clone().iter() {
            let child = &self.nodes[cidx];
            let slot = last_slot(&child.slots);
            let entry = match &child.kind {
                NodeKind::Dir { .. } => {
                    let (k, h, _) = child.published.expect("child dir published first");
                    DirEntry {
                        name: name.clone(),
                        slot,
                        kind: EntryKind::Dir,
                        target_key: k,
                        target_hash: h,
                        size: 0,
                        inline: vec![],
                    }
                }
                NodeKind::File { data } if data.len() <= self.cfg.inline_max => {
                    inline_count += 1;
                    DirEntry {
                        name: name.clone(),
                        slot,
                        kind: EntryKind::InlineFile,
                        target_key: Key::MIN,
                        target_hash: ContentHash::default(),
                        size: data.len() as u64,
                        inline: data.clone(),
                    }
                }
                NodeKind::File { data } => {
                    let (k, h, _) = child.published.expect("child file published first");
                    DirEntry {
                        name: name.clone(),
                        slot,
                        kind: EntryKind::File,
                        target_key: k,
                        target_hash: h,
                        size: data.len() as u64,
                        inline: vec![],
                    }
                }
            };
            entries.push(entry);
        }
        self.stats.inline_files = inline_count;

        let block = DirBlock {
            version,
            next_slot,
            entries,
        };
        let name = self.block_name(idx, 0, version, BlockKind::Directory);
        let key = self.cfg.system.key_of(&name);
        let encoded = block.encode();
        let hash = sha256(&encoded);
        let len = encoded.len() as u32;
        self.record_put(io, &name, encoded, now, ops)?;
        self.nodes[idx].published = Some((key, hash, len));
        self.nodes[idx].dirty = false;
        Ok(())
    }

    fn record_put<S: BlockIo>(
        &mut self,
        io: &mut S,
        name: &BlockName,
        data: Vec<u8>,
        now: SimTime,
        ops: &mut Vec<WriteOp>,
    ) -> Result<()> {
        let key = self.cfg.system.key_of(name);
        let len = data.len();
        io.put(name, data, now)?;
        self.stats.blocks_written += 1;
        self.stats.bytes_written += len as u64;
        ops.push(WriteOp::Put {
            name: name.clone(),
            key,
            len,
        });
        Ok(())
    }

    fn block_name(&self, idx: usize, block_no: u64, version: u32, kind: BlockKind) -> BlockName {
        let n = &self.nodes[idx];
        BlockName {
            volume: self.volume,
            slots: n.slots,
            path: n.enc_path.clone(),
            block_no,
            version,
            kind,
        }
    }

    /// Schedules removal of a file's published inode and data blocks
    /// (called on overwrite and delete).
    fn retire_file_blocks(&mut self, idx: usize) {
        let version = self.nodes[idx].version;
        if let Some((inode_key, _, _)) = self.nodes[idx].published.take() {
            self.pending_removes.push(inode_key);
            // Data block keys of the retired version.
            let NodeKind::File { data } = &self.nodes[idx].kind else {
                return;
            };
            let nblocks = data.len().div_ceil(self.cfg.block_size);
            for i in 0..nblocks {
                let name = self.block_name(idx, 1 + i as u64, version, BlockKind::Data);
                self.pending_removes.push(self.cfg.system.key_of(&name));
            }
        }
    }
}

fn last_slot(slots: &PathSlots) -> u16 {
    let d = slots.depth();
    if d == 0 {
        0
    } else {
        slots.slots()[d - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Fs, MemStore) {
        (
            Fs::new("vol", b"secret", FsConfig::new(SystemKind::D2)),
            MemStore::new(SystemKind::D2),
        )
    }

    #[test]
    fn write_read_roundtrip_in_mirror() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/a/b.txt", b"hello".to_vec(), SimTime::ZERO)
            .unwrap();
        assert_eq!(fs.read("/a/b.txt").unwrap(), b"hello");
        assert!(fs.exists("/a"));
        assert_eq!(fs.size_of("/a/b.txt").unwrap(), 5);
    }

    #[test]
    fn writeback_cache_defers_publication() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/f", vec![0u8; 10_000], SimTime::ZERO)
            .unwrap();
        assert!(io.is_empty(), "nothing published before flush");
        // Not yet 30 s.
        let ops = fs.maybe_flush(&mut io, SimTime::from_secs(29)).unwrap();
        assert!(ops.is_empty());
        // Window elapsed.
        let ops = fs.maybe_flush(&mut io, SimTime::from_secs(30)).unwrap();
        assert!(!ops.is_empty());
        assert!(!fs.is_dirty());
    }

    #[test]
    fn temp_files_never_hit_the_store() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/tmp/scratch", vec![1u8; 9000], SimTime::ZERO)
            .unwrap();
        fs.remove_file("/tmp/scratch").unwrap();
        fs.flush(&mut io, SimTime::from_secs(30)).unwrap();
        // Only metadata (root block, root dir, tmp dir) was published —
        // no inode or data blocks for the scratch file.
        assert_eq!(io.len(), 3);
    }

    #[test]
    fn flush_publishes_data_then_metadata_then_root() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/docs/a.txt", vec![7u8; 20_000], SimTime::ZERO)
            .unwrap();
        let ops = fs.flush(&mut io, SimTime::ZERO).unwrap();
        let kinds: Vec<BlockKind> = ops
            .iter()
            .filter_map(|op| match op {
                WriteOp::Put { name, .. } => Some(name.kind),
                _ => None,
            })
            .collect();
        // 3 data blocks, inode, docs dir, root dir, root block.
        assert_eq!(
            kinds,
            vec![
                BlockKind::Data,
                BlockKind::Data,
                BlockKind::Data,
                BlockKind::Inode,
                BlockKind::Directory,
                BlockKind::Directory,
                BlockKind::Root
            ]
        );
    }

    #[test]
    fn small_files_are_inlined() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/small", vec![1u8; 100], SimTime::ZERO)
            .unwrap();
        let ops = fs.flush(&mut io, SimTime::ZERO).unwrap();
        // Root dir + root block only; no inode/data blocks.
        let put_kinds: Vec<BlockKind> = ops
            .iter()
            .filter_map(|op| match op {
                WriteOp::Put { name, .. } => Some(name.kind),
                _ => None,
            })
            .collect();
        assert_eq!(put_kinds, vec![BlockKind::Directory, BlockKind::Root]);
        assert_eq!(fs.stats().inline_files, 1);
    }

    #[test]
    fn overwrite_bumps_version_and_retires_old_blocks() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/f", vec![1u8; 9000], SimTime::ZERO)
            .unwrap();
        fs.flush(&mut io, SimTime::ZERO).unwrap();
        let blocks_before = io.len();
        fs.write(&mut io, "/f", vec![2u8; 9000], SimTime::from_secs(60))
            .unwrap();
        let ops = fs.flush(&mut io, SimTime::from_secs(60)).unwrap();
        let removes = ops
            .iter()
            .filter(|o| matches!(o, WriteOp::Remove { .. }))
            .count();
        // Old inode + 2 old data blocks + old root-dir version retired.
        assert_eq!(removes, 4);
        // Before GC both versions coexist (stale readers still succeed).
        assert!(io.len() > blocks_before);
        io.gc(SimTime::from_secs(91));
        // After the removal delay the old version is gone.
        assert_eq!(io.len(), blocks_before);
        assert_eq!(fs.read("/f").unwrap(), vec![2u8; 9000]);
    }

    #[test]
    fn d2_keys_of_a_flushed_tree_are_locality_ordered() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/a/x.dat", vec![1u8; 20_000], SimTime::ZERO)
            .unwrap();
        fs.write(&mut io, "/a/y.dat", vec![2u8; 20_000], SimTime::ZERO)
            .unwrap();
        fs.write(&mut io, "/b/z.dat", vec![3u8; 20_000], SimTime::ZERO)
            .unwrap();
        let ops = fs.flush(&mut io, SimTime::ZERO).unwrap();
        // Collect data block keys per file; each file's keys must form a
        // contiguous run in the global sorted order.
        let mut file_keys: HashMap<String, Vec<Key>> = HashMap::new();
        for op in &ops {
            if let WriteOp::Put { name, key, .. } = op {
                if name.kind == BlockKind::Data || name.kind == BlockKind::Inode {
                    file_keys.entry(name.path.clone()).or_default().push(*key);
                }
            }
        }
        let mut all: Vec<(Key, String)> = file_keys
            .iter()
            .flat_map(|(p, ks)| ks.iter().map(move |k| (*k, p.clone())))
            .collect();
        all.sort();
        // Check each file's blocks are contiguous.
        for (path, keys) in &file_keys {
            let positions: Vec<usize> = all
                .iter()
                .enumerate()
                .filter(|(_, (_, p))| p == path)
                .map(|(i, _)| i)
                .collect();
            let span = positions.last().unwrap() - positions.first().unwrap() + 1;
            assert_eq!(span, keys.len(), "{path} blocks are fragmented");
        }
    }

    #[test]
    fn rename_keeps_block_keys() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/old/big.bin", vec![9u8; 30_000], SimTime::ZERO)
            .unwrap();
        let ops1 = fs.flush(&mut io, SimTime::ZERO).unwrap();
        let data_keys_before: Vec<Key> = ops1
            .iter()
            .filter_map(|op| match op {
                WriteOp::Put { name, key, .. } if name.kind == BlockKind::Data => Some(*key),
                _ => None,
            })
            .collect();
        fs.mkdir_p("/new").unwrap();
        fs.rename("/old/big.bin", "/new/big.bin").unwrap();
        let ops2 = fs.flush(&mut io, SimTime::from_secs(60)).unwrap();
        // The rename re-publishes only directory metadata + root: no new
        // data blocks.
        assert!(ops2.iter().all(|op| match op {
            WriteOp::Put { name, .. } =>
                name.kind == BlockKind::Directory || name.kind == BlockKind::Root,
            WriteOp::Remove { .. } => true,
        }));
        // And the file still reads back.
        assert_eq!(fs.read("/new/big.bin").unwrap(), vec![9u8; 30_000]);
        assert!(!fs.exists("/old/big.bin"));
        // Old data keys still live in the store (not retired).
        for k in data_keys_before {
            assert!(io.get(&k, SimTime::from_secs(60)).is_ok());
        }
    }

    #[test]
    fn rename_into_itself_rejected() {
        let (mut fs, _io) = setup();
        fs.mkdir_p("/a/b").unwrap();
        assert!(matches!(
            fs.rename("/a", "/a/b/c"),
            Err(D2Error::InvalidOperation(_))
        ));
    }

    #[test]
    fn remove_dir_recursive() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/proj/src/main.rs", vec![1u8; 9000], SimTime::ZERO)
            .unwrap();
        fs.write(&mut io, "/proj/doc.md", vec![2u8; 9000], SimTime::ZERO)
            .unwrap();
        fs.flush(&mut io, SimTime::ZERO).unwrap();
        fs.remove_dir("/proj").unwrap();
        assert!(!fs.exists("/proj"));
        let ops = fs.flush(&mut io, SimTime::from_secs(60)).unwrap();
        let removes = ops
            .iter()
            .filter(|o| matches!(o, WriteOp::Remove { .. }))
            .count();
        // 2 inodes + 2+2 data blocks + src dir + proj dir + old root dir.
        assert!(removes >= 7, "expected at least 7 removals, got {removes}");
    }

    #[test]
    fn path_errors() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/f", b"x".to_vec(), SimTime::ZERO)
            .unwrap();
        assert!(matches!(fs.read("/missing"), Err(D2Error::NoSuchPath(_))));
        assert!(matches!(
            fs.write(&mut io, "/f/child", b"y".to_vec(), SimTime::ZERO),
            Err(D2Error::InvalidOperation(_) | D2Error::NoSuchPath(_) | D2Error::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.remove_file("/nope"),
            Err(D2Error::NoSuchPath(_))
        ));
        assert!(matches!(fs.list("/f"), Err(D2Error::InvalidOperation(_))));
        assert!(fs.read("/").is_err());
    }

    #[test]
    fn flush_without_changes_is_empty() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/f", b"abc".to_vec(), SimTime::ZERO)
            .unwrap();
        fs.flush(&mut io, SimTime::ZERO).unwrap();
        assert!(fs
            .flush(&mut io, SimTime::from_secs(60))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let (mut fs, mut io) = setup();
        fs.write(&mut io, "/f", vec![0u8; 9000], SimTime::ZERO)
            .unwrap();
        fs.flush(&mut io, SimTime::ZERO).unwrap();
        let s = fs.stats();
        assert!(s.blocks_written >= 4); // 2 data + inode + root dir + root
        assert!(s.bytes_written >= 9000);
        assert_eq!(s.flushes, 1);
    }

    #[test]
    fn traditional_encoding_scatters_flushed_tree() {
        let mut fs = Fs::new("vol", b"s", FsConfig::new(SystemKind::Traditional));
        let mut io = MemStore::new(SystemKind::Traditional);
        fs.write(&mut io, "/a/x.dat", vec![1u8; 30_000], SimTime::ZERO)
            .unwrap();
        let ops = fs.flush(&mut io, SimTime::ZERO).unwrap();
        let data_keys: Vec<Key> = ops
            .iter()
            .filter_map(|op| match op {
                WriteOp::Put { name, key, .. } if name.kind == BlockKind::Data => Some(*key),
                _ => None,
            })
            .collect();
        assert_eq!(data_keys.len(), 4);
        // With hashed keys, consecutive blocks do NOT share a prefix.
        let mut sorted = data_keys.clone();
        sorted.sort();
        assert_ne!(
            sorted, data_keys,
            "hashed keys should not come out pre-sorted"
        );
    }
}
