//! D2-FS: the CFS-style file-system layer with locality-preserving keys
//! (paper Sections 3 and 4).
//!
//! Block types (Figure 2): a mutable, signed **root block**; immutable
//! **directory blocks**; **file inodes**; and 8 KB **data blocks**. Every
//! metadata block stores, for each block it points to, the child's DHT key
//! *and its content hash*, because D2 keys are no longer content hashes —
//! signing the root therefore still signs the whole tree.
//!
//! Reproduced behaviours:
//!
//! - per-directory 2-byte slot assignment feeding the Figure 4 key
//!   encoding;
//! - small files inlined in the parent metadata block;
//! - whole-path metadata re-publication on every update (new versions of
//!   every metadata block up to the root, root updated in place);
//! - a 30-second **write-back cache** that absorbs temporary files and
//!   doubles as a read buffer;
//! - `remove(key, delay=30 s)` for replaced/deleted blocks so stale-by-30 s
//!   readers still succeed;
//! - **renames keep original keys**: the new parent simply points at the
//!   file's original block locations (Section 4.2).
//!
//! The writer owns an in-memory mirror of its volume (single-writer,
//! multi-reader — the CFS usage model); independent readers fetch and
//! verify blocks through [`reader::VolumeReader`].

pub mod blocks;
pub mod codec;
pub mod fs;
pub mod reader;

pub use blocks::{DirBlock, DirEntry, EntryKind, InodeBlock, RootBlock};
pub use fs::{BlockIo, Fs, FsConfig, FsStats, MemStore, WriteOp};
pub use reader::VolumeReader;
