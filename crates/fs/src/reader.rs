//! The reader side: fetch-and-verify traversal from the signed root.
//!
//! Readers are independent of the writer: they locate the volume's root
//! block by its well-known key, verify the publisher signature, and then
//! follow `(key, content-hash)` pointers downward, verifying every block
//! against the hash recorded in its parent — the integrity chain that
//! replaces content-hash keys in D2 (Section 3).

use crate::blocks::{DirBlock, EntryKind, InodeBlock, RootBlock};
use crate::fs::BlockIo;
use d2_sim::SimTime;
use d2_types::{
    sha256, BlockKind, BlockName, D2Error, Key, PathSlots, Result, SystemKind, VolumeId,
};

/// A verifying reader for one volume.
#[derive(Clone, Debug)]
pub struct VolumeReader {
    volume: VolumeId,
    system: SystemKind,
    secret: Vec<u8>,
}

impl VolumeReader {
    /// Creates a reader for `volume_name` published under `system`'s
    /// encoding and signed with `secret`.
    pub fn new(volume_name: &str, secret: &[u8], system: SystemKind) -> Self {
        VolumeReader {
            volume: VolumeId::from_name(volume_name),
            system,
            secret: secret.to_vec(),
        }
    }

    /// The well-known key of the volume's root block.
    pub fn root_key(&self) -> Key {
        let name = BlockName {
            volume: self.volume,
            slots: PathSlots::root(),
            path: String::new(),
            block_no: u64::MAX,
            version: 0,
            kind: BlockKind::Root,
        };
        self.system.key_of(&name)
    }

    /// Fetches and verifies the root block.
    ///
    /// # Errors
    ///
    /// [`D2Error::BadSignature`] if the root fails signature verification;
    /// [`D2Error::NotFound`] if the volume has never been flushed.
    pub fn root<S: BlockIo>(&self, io: &mut S, now: SimTime) -> Result<RootBlock> {
        let data = io.get(&self.root_key(), now)?;
        let root = RootBlock::decode(&data)?;
        root.verify(&self.secret)?;
        if root.volume != self.volume {
            return Err(D2Error::BadSignature);
        }
        Ok(root)
    }

    fn fetch_dir<S: BlockIo>(
        &self,
        io: &mut S,
        key: &Key,
        expect: &d2_types::ContentHash,
        now: SimTime,
    ) -> Result<DirBlock> {
        let data = io.get(key, now)?;
        if sha256(&data) != *expect {
            return Err(D2Error::IntegrityFailure(*key));
        }
        DirBlock::decode(&data)
    }

    /// Walks `path` and returns the final directory block plus the entry
    /// for the leaf component (or the root dir and `None` for `/`).
    fn walk<S: BlockIo>(
        &self,
        io: &mut S,
        path: &str,
        now: SimTime,
    ) -> Result<(DirBlock, Option<crate::blocks::DirEntry>)> {
        let root = self.root(io, now)?;
        let mut dir = self.fetch_dir(io, &root.dir_key, &root.dir_hash, now)?;
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.is_empty() {
            return Ok((dir, None));
        }
        for (i, comp) in comps.iter().enumerate() {
            let entry = dir
                .find(comp)
                .ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?
                .clone();
            if i + 1 == comps.len() {
                return Ok((dir, Some(entry)));
            }
            match entry.kind {
                EntryKind::Dir => {
                    dir = self.fetch_dir(io, &entry.target_key, &entry.target_hash, now)?;
                }
                _ => return Err(D2Error::NoSuchPath(path.to_string())),
            }
        }
        unreachable!()
    }

    /// Reads and verifies a whole file.
    ///
    /// # Errors
    ///
    /// [`D2Error::IntegrityFailure`] if any fetched block does not match
    /// the hash its parent recorded for it.
    pub fn read_file<S: BlockIo>(&self, io: &mut S, path: &str, now: SimTime) -> Result<Vec<u8>> {
        let (_, entry) = self.walk(io, path, now)?;
        let entry = entry.ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?;
        match entry.kind {
            EntryKind::InlineFile => Ok(entry.inline),
            EntryKind::File => {
                let inode_bytes = io.get(&entry.target_key, now)?;
                if sha256(&inode_bytes) != entry.target_hash {
                    return Err(D2Error::IntegrityFailure(entry.target_key));
                }
                let inode = InodeBlock::decode(&inode_bytes)?;
                let mut out = Vec::with_capacity(inode.size as usize);
                for (key, hash, _len) in &inode.blocks {
                    let data = io.get(key, now)?;
                    if sha256(&data) != *hash {
                        return Err(D2Error::IntegrityFailure(*key));
                    }
                    out.extend_from_slice(&data);
                }
                Ok(out)
            }
            EntryKind::Dir => Err(D2Error::InvalidOperation(format!("{path} is a directory"))),
        }
    }

    /// Reads `len` bytes starting at byte `offset`, fetching (and
    /// verifying) only the data blocks that overlap the range — the
    /// partial reads the paper grants the traditional-file baseline
    /// (Section 9.1) and that any block-granular system gets for free.
    ///
    /// # Errors
    ///
    /// [`D2Error::InvalidOperation`] if the range starts past the end of
    /// the file; short reads (range extending past EOF) return the
    /// available prefix.
    pub fn read_range<S: BlockIo>(
        &self,
        io: &mut S,
        path: &str,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<Vec<u8>> {
        let (_, entry) = self.walk(io, path, now)?;
        let entry = entry.ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?;
        match entry.kind {
            EntryKind::InlineFile => {
                if offset > entry.inline.len() as u64 {
                    return Err(D2Error::InvalidOperation("offset past EOF".into()));
                }
                let end = offset.saturating_add(len).min(entry.inline.len() as u64);
                Ok(entry.inline[offset as usize..end as usize].to_vec())
            }
            EntryKind::File => {
                let inode_bytes = io.get(&entry.target_key, now)?;
                if sha256(&inode_bytes) != entry.target_hash {
                    return Err(D2Error::IntegrityFailure(entry.target_key));
                }
                let inode = InodeBlock::decode(&inode_bytes)?;
                if offset > inode.size {
                    return Err(D2Error::InvalidOperation("offset past EOF".into()));
                }
                let end = offset.saturating_add(len).min(inode.size);
                let mut out = Vec::with_capacity((end - offset) as usize);
                let mut pos = 0u64; // byte offset of the current block
                for (key, hash, blen) in &inode.blocks {
                    let bstart = pos;
                    let bend = pos + *blen as u64;
                    pos = bend;
                    if bend <= offset {
                        continue; // wholly before the range
                    }
                    if bstart >= end {
                        break; // wholly after the range
                    }
                    let data = io.get(key, now)?;
                    if sha256(&data) != *hash {
                        return Err(D2Error::IntegrityFailure(*key));
                    }
                    let from = offset.saturating_sub(bstart) as usize;
                    let to = (end - bstart).min(*blen as u64) as usize;
                    out.extend_from_slice(&data[from..to]);
                }
                Ok(out)
            }
            EntryKind::Dir => Err(D2Error::InvalidOperation(format!("{path} is a directory"))),
        }
    }

    /// Lists the entry names of a directory.
    pub fn list_dir<S: BlockIo>(
        &self,
        io: &mut S,
        path: &str,
        now: SimTime,
    ) -> Result<Vec<String>> {
        let (dir, entry) = self.walk(io, path, now)?;
        match entry {
            None => Ok(dir.entries.iter().map(|e| e.name.clone()).collect()),
            Some(e) if e.kind == EntryKind::Dir => {
                let sub = self.fetch_dir(io, &e.target_key, &e.target_hash, now)?;
                Ok(sub.entries.iter().map(|en| en.name.clone()).collect())
            }
            Some(_) => Err(D2Error::InvalidOperation(format!("{path} is a file"))),
        }
    }

    /// Size of a file in bytes.
    pub fn stat_size<S: BlockIo>(&self, io: &mut S, path: &str, now: SimTime) -> Result<u64> {
        let (_, entry) = self.walk(io, path, now)?;
        let entry = entry.ok_or_else(|| D2Error::NoSuchPath(path.to_string()))?;
        Ok(entry.size)
    }

    /// Collects every block key reachable from the root (for availability
    /// experiments: the set of keys a full-volume task would touch).
    pub fn all_keys<S: BlockIo>(&self, io: &mut S, now: SimTime) -> Result<Vec<Key>> {
        let root = self.root(io, now)?;
        let mut keys = vec![self.root_key(), root.dir_key];
        let mut stack = vec![(root.dir_key, root.dir_hash)];
        while let Some((key, hash)) = stack.pop() {
            let dir = self.fetch_dir(io, &key, &hash, now)?;
            for e in &dir.entries {
                match e.kind {
                    EntryKind::Dir => {
                        keys.push(e.target_key);
                        stack.push((e.target_key, e.target_hash));
                    }
                    EntryKind::File => {
                        keys.push(e.target_key);
                        let inode_bytes = io.get(&e.target_key, now)?;
                        let inode = InodeBlock::decode(&inode_bytes)?;
                        keys.extend(inode.blocks.iter().map(|(k, _, _)| *k));
                    }
                    EntryKind::InlineFile => {}
                }
            }
        }
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{Fs, FsConfig, MemStore};

    fn publish(system: SystemKind) -> (Fs, MemStore, VolumeReader) {
        let mut fs = Fs::new("vol", b"secret", FsConfig::new(system));
        let mut io = MemStore::new(system);
        fs.write(&mut io, "/docs/a.txt", vec![b'a'; 20_000], SimTime::ZERO)
            .unwrap();
        fs.write(&mut io, "/docs/tiny", b"inline!".to_vec(), SimTime::ZERO)
            .unwrap();
        fs.write(&mut io, "/bin/tool", vec![b'b'; 9_000], SimTime::ZERO)
            .unwrap();
        fs.flush(&mut io, SimTime::ZERO).unwrap();
        let reader = VolumeReader::new("vol", b"secret", system);
        (fs, io, reader)
    }

    #[test]
    fn reader_sees_writer_data() {
        for system in [
            SystemKind::D2,
            SystemKind::Traditional,
            SystemKind::TraditionalFile,
        ] {
            let (_fs, mut io, reader) = publish(system);
            assert_eq!(
                reader
                    .read_file(&mut io, "/docs/a.txt", SimTime::ZERO)
                    .unwrap(),
                vec![b'a'; 20_000],
                "system {system}"
            );
            assert_eq!(
                reader
                    .read_file(&mut io, "/docs/tiny", SimTime::ZERO)
                    .unwrap(),
                b"inline!"
            );
        }
    }

    #[test]
    fn wrong_secret_rejected() {
        let (_fs, mut io, _) = publish(SystemKind::D2);
        let bad = VolumeReader::new("vol", b"wrong", SystemKind::D2);
        assert_eq!(
            bad.read_file(&mut io, "/docs/a.txt", SimTime::ZERO),
            Err(D2Error::BadSignature)
        );
    }

    #[test]
    fn tampered_data_block_detected() {
        let (_fs, mut io, reader) = publish(SystemKind::D2);
        // Find one full 8 KB data block of /docs/a.txt and flip a byte.
        let keys = reader.all_keys(&mut io, SimTime::ZERO).unwrap();
        let corrupted = keys
            .iter()
            .find(|k| {
                io.get(k, SimTime::ZERO)
                    .map(|d| d.len() == 8192)
                    .unwrap_or(false)
            })
            .copied()
            .expect("found a data block");
        let mut data = io.get(&corrupted, SimTime::ZERO).unwrap();
        data[0] ^= 0xff;
        io.insert_raw(corrupted, data);
        let err = reader.read_file(&mut io, "/docs/a.txt", SimTime::ZERO);
        assert_eq!(err, Err(D2Error::IntegrityFailure(corrupted)));
    }

    #[test]
    fn list_and_stat() {
        let (_fs, mut io, reader) = publish(SystemKind::D2);
        let mut names = reader.list_dir(&mut io, "/docs", SimTime::ZERO).unwrap();
        names.sort();
        assert_eq!(names, vec!["a.txt", "tiny"]);
        let root_names = reader.list_dir(&mut io, "/", SimTime::ZERO).unwrap();
        assert_eq!(root_names.len(), 2);
        assert_eq!(
            reader
                .stat_size(&mut io, "/bin/tool", SimTime::ZERO)
                .unwrap(),
            9000
        );
    }

    #[test]
    fn missing_paths_error() {
        let (_fs, mut io, reader) = publish(SystemKind::D2);
        assert!(matches!(
            reader.read_file(&mut io, "/nope", SimTime::ZERO),
            Err(D2Error::NoSuchPath(_))
        ));
        assert!(matches!(
            reader.read_file(&mut io, "/docs/a.txt/deeper", SimTime::ZERO),
            Err(D2Error::NoSuchPath(_))
        ));
    }

    #[test]
    fn all_keys_covers_tree() {
        let (_fs, mut io, reader) = publish(SystemKind::D2);
        let keys = reader.all_keys(&mut io, SimTime::ZERO).unwrap();
        // root block + root dir + 2 dirs + 2 inodes + 3 + 2 data blocks.
        assert!(keys.len() >= 9, "got {}", keys.len());
        // Every key resolves.
        for k in &keys {
            assert!(io.get(k, SimTime::ZERO).is_ok());
        }
    }

    #[test]
    fn unflushed_volume_not_found() {
        let mut io = MemStore::new(SystemKind::D2);
        let reader = VolumeReader::new("vol", b"secret", SystemKind::D2);
        assert!(matches!(
            reader.root(&mut io, SimTime::ZERO),
            Err(D2Error::NotFound(_))
        ));
    }

    #[test]
    fn read_range_fetches_only_needed_blocks() {
        let (_fs, mut io, reader) = publish(SystemKind::D2);
        // /docs/a.txt is 20,000 bytes of 'a': 3 data blocks.
        let mid = reader
            .read_range(&mut io, "/docs/a.txt", 8192, 100, SimTime::ZERO)
            .unwrap();
        assert_eq!(mid, vec![b'a'; 100]);
        // Spanning a block boundary.
        let span = reader
            .read_range(&mut io, "/docs/a.txt", 8000, 400, SimTime::ZERO)
            .unwrap();
        assert_eq!(span, vec![b'a'; 400]);
        // Short read at EOF.
        let tail = reader
            .read_range(&mut io, "/docs/a.txt", 19_990, 100, SimTime::ZERO)
            .unwrap();
        assert_eq!(tail.len(), 10);
        // Offset past EOF errors.
        assert!(reader
            .read_range(&mut io, "/docs/a.txt", 20_001, 1, SimTime::ZERO)
            .is_err());
        // Inline files work too.
        let inl = reader
            .read_range(&mut io, "/docs/tiny", 2, 3, SimTime::ZERO)
            .unwrap();
        assert_eq!(inl, b"lin");
        // Whole-range read equals read_file.
        let all = reader
            .read_range(&mut io, "/docs/a.txt", 0, u64::MAX, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            all,
            reader
                .read_file(&mut io, "/docs/a.txt", SimTime::ZERO)
                .unwrap()
        );
    }

    #[test]
    fn deep_paths_publish_and_read_back() {
        // 16 directory levels: beyond the 12 slot levels, the remainder
        // hash takes over — correctness must be unaffected.
        let mut fs = Fs::new("deep", b"s", FsConfig::new(SystemKind::D2));
        let mut io = MemStore::new(SystemKind::D2);
        let path = format!(
            "{}/leaf.txt",
            (0..16).map(|i| format!("/d{i}")).collect::<String>()
        );
        fs.write(&mut io, &path, b"deep!".to_vec(), SimTime::ZERO)
            .unwrap();
        fs.write(&mut io, "/shallow", b"s".to_vec(), SimTime::ZERO)
            .unwrap();
        fs.flush(&mut io, SimTime::ZERO).unwrap();
        let reader = VolumeReader::new("deep", b"s", SystemKind::D2);
        assert_eq!(
            reader.read_file(&mut io, &path, SimTime::ZERO).unwrap(),
            b"deep!"
        );
        assert_eq!(
            reader
                .read_file(&mut io, "/shallow", SimTime::ZERO)
                .unwrap(),
            b"s"
        );
    }

    #[test]
    fn reader_sees_renamed_file_after_flush() {
        let (mut fs, mut io, reader) = publish(SystemKind::D2);
        fs.mkdir_p("/archive").unwrap();
        fs.rename("/docs/a.txt", "/archive/a.txt").unwrap();
        fs.flush(&mut io, SimTime::from_secs(60)).unwrap();
        assert_eq!(
            reader
                .read_file(&mut io, "/archive/a.txt", SimTime::from_secs(60))
                .unwrap(),
            vec![b'a'; 20_000]
        );
        assert!(reader
            .read_file(&mut io, "/docs/a.txt", SimTime::from_secs(60))
            .is_err());
    }
}
