//! Property tests: random operation sequences keep writer, store, and
//! reader consistent, under all three key encodings.

use d2_fs::{Fs, FsConfig, MemStore, VolumeReader};
use d2_sim::SimTime;
use d2_types::SystemKind;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Write(u8, Vec<u8>),
    Remove(u8),
    Rename(u8, u8),
    Flush,
}

fn path_of(id: u8) -> String {
    // A small fixed namespace: 4 dirs x 8 files.
    format!("/d{}/f{}", id % 4, id % 8)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..2000))
            .prop_map(|(p, d)| Op::Write(p, d)),
        any::<u8>().prop_map(Op::Remove),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        Just(Op::Flush),
    ]
}

fn run_model(system: SystemKind, ops: &[Op]) {
    let mut fs = Fs::new("pv", b"k", FsConfig::new(system));
    let mut io = MemStore::new(system);
    let mut model: HashMap<String, Vec<u8>> = HashMap::new();
    let mut now = SimTime::ZERO;

    for op in ops {
        now += SimTime::from_secs(1);
        match op {
            Op::Write(p, data) => {
                let path = path_of(*p);
                if fs.write(&mut io, &path, data.clone(), now).is_ok() {
                    model.insert(path, data.clone());
                }
            }
            Op::Remove(p) => {
                let path = path_of(*p);
                let fs_result = fs.remove_file(&path);
                assert_eq!(fs_result.is_ok(), model.remove(&path).is_some());
            }
            Op::Rename(a, b) => {
                let from = path_of(*a);
                let to = path_of(*b);
                if fs.rename(&from, &to).is_ok() {
                    let data = model.remove(&from).expect("rename source tracked");
                    model.insert(to, data);
                }
            }
            Op::Flush => {
                fs.flush(&mut io, now).unwrap();
            }
        }
        // Writer mirror always agrees with the model.
        for (path, data) in &model {
            assert_eq!(&fs.read(path).unwrap(), data, "mirror diverged at {path}");
        }
    }

    // Final flush: independent verifying reader must agree with the model.
    now += SimTime::from_secs(60);
    fs.flush(&mut io, now).unwrap();
    let reader = VolumeReader::new("pv", b"k", system);
    for (path, data) in &model {
        let got = reader.read_file(&mut io, path, now).unwrap();
        assert_eq!(&got, data, "reader diverged at {path} under {system}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fs_matches_model_d2(ops in prop::collection::vec(arb_op(), 1..40)) {
        run_model(SystemKind::D2, &ops);
    }

    #[test]
    fn fs_matches_model_traditional(ops in prop::collection::vec(arb_op(), 1..25)) {
        run_model(SystemKind::Traditional, &ops);
    }

    #[test]
    fn fs_matches_model_traditional_file(ops in prop::collection::vec(arb_op(), 1..25)) {
        run_model(SystemKind::TraditionalFile, &ops);
    }
}
