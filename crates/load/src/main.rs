//! `d2-load`: a sustained-load generator for a live D2 cluster.
//!
//! ```text
//! d2-load --node IP:PORT [--workers N] [--window W] [--ops N] [--keys K]
//!         [--value-bytes B] [--get-ratio F] [--zipf-theta F]
//!         [--replicas R] [--mode pipelined|serial] [--seed S]
//!         [--timeout-ms T] [--json]
//! ```
//!
//! Connects to one member of a running cluster (`--node`), discovers the
//! whole ring, preloads `--keys` blocks, then drives `--ops` total
//! put/get operations from `--workers` closed-loop workers. Each worker
//! owns a private TCP socket and [`d2_net::ClusterOps`] handle and
//! samples keys Zipf-distributed ([`d2_workload::web::zipf`]) with
//! exponent `--zipf-theta` — the skewed access pattern of the paper's
//! web workload, so hot keys hammer their owner node.
//!
//! `--mode pipelined` (default) keeps `--window` operations in flight
//! per worker over the pipelined client ([`WireClient::submit`]);
//! `--mode serial` forces the window to one — the classic
//! one-round-trip-at-a-time client — so the two modes measure exactly
//! the same code path with and without pipelining.
//!
//! Reports throughput (ops/s), latency percentiles (p50/p90/p99/p999),
//! and the merged client-side `net.*` counters. `--json` emits one JSON
//! object (consumed by `scripts/bench_wire.sh` to build
//! `BENCH_wire.json`).

use d2_net::{ClusterOps, PipelineConfig};
use d2_obs::Registry;
use d2_types::Key;
use d2_wire::client::WireClient;
use d2_wire::metrics::NetMetrics;
use d2_wire::tcp::{pack_addr, TcpConfig, TcpTransport};
use d2_workload::web::zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: d2-load --node IP:PORT [--workers N] [--window W] [--ops N] [--keys K]\n\
         \x20              [--value-bytes B] [--get-ratio F] [--zipf-theta F] [--replicas R]\n\
         \x20              [--mode pipelined|serial] [--seed S] [--timeout-ms T] [--json]"
    );
    std::process::exit(2);
}

struct Args {
    node: SocketAddrV4,
    workers: usize,
    window: usize,
    ops: usize,
    keys: usize,
    value_bytes: usize,
    get_ratio: f64,
    zipf_theta: f64,
    replicas: usize,
    serial: bool,
    seed: u64,
    timeout: Duration,
    json: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut node = None;
    let mut out = Args {
        node: SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
        workers: 4,
        window: 32,
        ops: 2000,
        keys: 256,
        value_bytes: 256,
        get_ratio: 0.9,
        zipf_theta: 0.8,
        replicas: 1,
        serial: false,
        seed: 42,
        timeout: Duration::from_secs(5),
        json: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        fn num<T: std::str::FromStr>(s: String, flag: &str) -> T {
            s.parse().unwrap_or_else(|_| {
                eprintln!("{flag} wants a number, got {s:?}");
                std::process::exit(2);
            })
        }
        match a.as_str() {
            "--node" => {
                node = Some(val("--node").parse().unwrap_or_else(|_| {
                    eprintln!("--node wants IPv4 IP:PORT");
                    std::process::exit(2);
                }))
            }
            "--workers" => out.workers = num::<usize>(val("--workers"), "--workers").max(1),
            "--window" => out.window = num::<usize>(val("--window"), "--window").max(1),
            "--ops" => out.ops = num(val("--ops"), "--ops"),
            "--keys" => out.keys = num::<usize>(val("--keys"), "--keys").max(1),
            "--value-bytes" => out.value_bytes = num(val("--value-bytes"), "--value-bytes"),
            "--get-ratio" => out.get_ratio = num(val("--get-ratio"), "--get-ratio"),
            "--zipf-theta" => out.zipf_theta = num(val("--zipf-theta"), "--zipf-theta"),
            "--replicas" => out.replicas = num::<usize>(val("--replicas"), "--replicas").max(1),
            "--seed" => out.seed = num(val("--seed"), "--seed"),
            "--timeout-ms" => {
                out.timeout = Duration::from_millis(num(val("--timeout-ms"), "--timeout-ms"))
            }
            "--mode" => match val("--mode").as_str() {
                "pipelined" => out.serial = false,
                "serial" => out.serial = true,
                m => {
                    eprintln!("--mode wants pipelined|serial, got {m:?}");
                    std::process::exit(2);
                }
            },
            "--json" => out.json = true,
            _ => usage(),
        }
    }
    out.node = node.unwrap_or_else(|| usage());
    out
}

/// One worker's connection to the cluster over its own TCP socket.
fn open_ops(entries: &[usize]) -> (ClusterOps<TcpTransport>, Arc<NetMetrics>) {
    let metrics = Arc::new(NetMetrics::new());
    let transport = TcpTransport::bind(
        Ipv4Addr::LOCALHOST,
        0,
        TcpConfig::default(),
        Arc::clone(&metrics),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind client socket: {e}");
        std::process::exit(1);
    });
    let client = WireClient::new(transport, Arc::clone(&metrics));
    (ClusterOps::new(client, entries.to_vec()), metrics)
}

/// What one worker brings back: latency histograms + error count.
struct WorkerReport {
    reg: Registry,
    done: usize,
    errors: usize,
}

fn worker(
    id: usize,
    args: &Args,
    entries: &[usize],
    quota: usize,
    cfg: PipelineConfig,
) -> WorkerReport {
    let (ops, _metrics) = open_ops(entries);
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_add(id as u64));
    let mut reg = Registry::new();
    let mut done = 0usize;
    let mut errors = 0usize;
    let value = vec![0xD2u8; args.value_bytes];
    while done < quota {
        // Sample a chunk several windows deep, split by type (the batch
        // API is homogeneous), then run both batches back to back — a
        // closed loop: nothing new is issued until the chunk lands. The
        // chunk is deeper than the window so the pipeline spends its
        // time saturated, not draining at chunk boundaries.
        let chunk = (cfg.window * 8).min(quota - done);
        let mut puts: Vec<(Key, Vec<u8>)> = Vec::new();
        let mut gets: Vec<Key> = Vec::new();
        for _ in 0..chunk {
            let key = Key::from_u64(zipf(&mut rng, args.keys, args.zipf_theta) as u64);
            if rng.random::<f64>() < args.get_ratio {
                gets.push(key);
            } else {
                puts.push((key, value.clone()));
            }
        }
        for o in ops.put_many(puts, args.replicas, cfg) {
            let us = o.latency.as_micros() as u64;
            reg.observe("load.op_us", us);
            reg.observe("load.put_us", us);
            if o.result.is_err() {
                errors += 1;
            }
        }
        for o in ops.get_many(&gets, cfg) {
            let us = o.latency.as_micros() as u64;
            reg.observe("load.op_us", us);
            reg.observe("load.get_us", us);
            if o.result.is_err() {
                errors += 1;
            }
        }
        done += chunk;
    }
    // Fold this worker's client-side transport counters into the report
    // so the main thread can merge all workers into one net.* view.
    _metrics.snapshot_into(&mut reg);
    ops.client().shutdown();
    WorkerReport { reg, done, errors }
}

fn main() {
    let args = parse_args();
    let entry = pack_addr(args.node);

    // Probe connection: discover the ring and preload the key space.
    let (probe, _probe_metrics) = open_ops(&[entry]);
    let entries = probe.discover();
    if entries.is_empty() {
        eprintln!("no cluster reachable at {}", args.node);
        std::process::exit(1);
    }
    probe.set_entries(entries.clone());
    if !args.json {
        eprintln!(
            "discovered {} node(s); preloading {} keys",
            entries.len(),
            args.keys
        );
    }
    let preload: Vec<(Key, Vec<u8>)> = (0..args.keys as u64)
        .map(|i| (Key::from_u64(i), vec![0xD2u8; args.value_bytes]))
        .collect();
    let preload_cfg = PipelineConfig {
        window: 32,
        op_timeout: args.timeout,
    };
    let preload_errors = probe
        .put_many(preload, args.replicas, preload_cfg)
        .iter()
        .filter(|o| o.result.is_err())
        .count();
    if preload_errors > 0 {
        eprintln!("warning: {preload_errors} preload puts failed");
    }

    let cfg = PipelineConfig {
        window: if args.serial { 1 } else { args.window },
        op_timeout: args.timeout,
    };
    let per_worker = args.ops / args.workers;
    let quotas: Vec<usize> = (0..args.workers)
        .map(|i| per_worker + usize::from(i < args.ops % args.workers))
        .collect();

    let t0 = Instant::now();
    let reports: Vec<WorkerReport> = std::thread::scope(|s| {
        let handles: Vec<_> = quotas
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let args = &args;
                let entries = &entries;
                s.spawn(move || worker(i, args, entries, q, cfg))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let mut merged = Registry::new();
    let mut done = 0usize;
    let mut errors = 0usize;
    for r in &reports {
        merged.merge(&r.reg);
        done += r.done;
        errors += r.errors;
    }
    let throughput = done as f64 / wall.as_secs_f64().max(1e-9);
    let lat = merged.histogram("load.op_us").cloned().unwrap_or_default();
    let mode = if args.serial { "serial" } else { "pipelined" };

    let net_keys = [
        "net.bytes_out",
        "net.bytes_in",
        "net.msgs",
        "net.reconnects",
        "net.orphan_responses",
        "net.loopback_msgs",
        "net.coalesced_frames",
    ];
    if args.json {
        let net: Vec<String> = net_keys
            .iter()
            .map(|k| format!("\"{k}\": {}", merged.counter(k)))
            .collect();
        println!(
            "{{\"bench\": \"wire\", \"mode\": \"{mode}\", \"nodes\": {}, \"workers\": {}, \
             \"window\": {}, \
             \"ops\": {done}, \"errors\": {errors}, \"keys\": {}, \"value_bytes\": {}, \
             \"get_ratio\": {}, \"zipf_theta\": {}, \"replicas\": {}, \"wall_ms\": {}, \
             \"throughput_ops_s\": {:.1}, \"latency_us\": {{\"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"p999\": {}, \"mean\": {:.1}, \"max\": {}}}, \"net\": {{{}}}}}",
            entries.len(),
            args.workers,
            cfg.window,
            args.keys,
            args.value_bytes,
            args.get_ratio,
            args.zipf_theta,
            args.replicas,
            wall.as_millis(),
            throughput,
            lat.quantile(0.50),
            lat.quantile(0.90),
            lat.quantile(0.99),
            lat.quantile(0.999),
            lat.mean(),
            lat.max(),
            net.join(", "),
        );
    } else {
        println!(
            "mode {mode}: {done} ops ({errors} errors) in {:.2}s",
            wall.as_secs_f64()
        );
        println!(
            "throughput: {throughput:.0} ops/s ({} workers, window {})",
            args.workers, cfg.window
        );
        println!(
            "latency us: p50 {}  p90 {}  p99 {}  p999 {}  mean {:.0}  max {}",
            lat.quantile(0.50),
            lat.quantile(0.90),
            lat.quantile(0.99),
            lat.quantile(0.999),
            lat.mean(),
            lat.max()
        );
        for k in net_keys {
            println!("{k}: {}", merged.counter(k));
        }
    }
}
