//! One D2 node (or client operation) per OS process, over TCP.
//!
//! ```text
//! d2-node serve      --listen IP:PORT [--seed IP:PORT] --pos F [--replicas N] [--ec K/N] [--repair-threshold M] [--repair-budget BPS] [--obs-out PATH]
//! d2-node serve-many --nodes N [--port P] [--replicas R] [--ec K/N] [--repair-threshold M] [--repair-budget BPS] [--tick-ms T] [--join-batch B] [--obs-out PATH]
//! d2-node lookup     --node IP:PORT (--key-frac F | --key-u64 N)
//! d2-node put        --node IP:PORT (--key-frac F | --key-u64 N) --data S [--replicas N]
//! d2-node get        --node IP:PORT (--key-frac F | --key-u64 N)
//! d2-node status     --node IP:PORT
//! d2-node check      --node IP:PORT [--expect N]
//! d2-node top        --node IP:PORT [--watch]
//! d2-node trace      --node IP:PORT --id TRACE
//! d2-node stop       --node IP:PORT [--all]
//! ```
//!
//! `serve` binds the listener (port 0 picks a free port), prints
//! `LISTEN ip:port` on stdout, and runs the node until a `stop` request
//! arrives. Without `--seed` it bootstraps a new ring; with `--seed` it
//! joins through that address. With `--obs-out` it appends a JSONL
//! metric snapshot (`net.bytes_{in,out}`, `net.msgs`, `net.reconnects`,
//! RTT histograms) every second and once more on exit.
//!
//! `--ec K/N` switches the node to erasure-coded redundancy: puts are
//! encoded into N fragments (any K reconstruct), gets gather-and-decode,
//! and background repair becomes lazy — regenerating only keys whose
//! survivors drop below `--repair-threshold M` (default: the midpoint
//! between K and N), within `--repair-budget BPS` bytes/second per node
//! (0 = unlimited). Every node in a ring must agree on the policy.
//!
//! `serve-many` hosts a whole N-node cluster in this one process: one
//! reactor, one multiplexer thread, node `i` at virtual address
//! `127.0.0.1+i` on the shared port. It prints `LISTEN 127.0.0.1:port`,
//! `JOINED k/N` progress lines during the staged boot, `STABLE N` when
//! every node is a ring member, then runs until every node is stopped
//! (e.g. `d2-node stop --node 127.0.0.1:PORT --all`). This is the
//! 1,000-node deployment mode — see EXPERIMENTS.md ("Booting a
//! 1,000-node cluster on one machine") for FD-limit prerequisites.
//!
//! `check` discovers every ring member from `--node` and runs the Zave
//! ring-invariant suite over their status snapshots (joined, corpse-free,
//! ordered successor lists, one sorted cycle, consistent predecessors),
//! printing each violation; exit status 1 if anything fails (or fewer
//! than `--expect N` nodes are found), 0 on a clean bill.
//!
//! `top` discovers the ring from `--node`, scrapes every member's
//! metric registry and flight recorder over the wire, and prints the
//! merged cluster view: per-node counters, cluster-wide latency
//! percentiles, and the slowest recent operations with their trace
//! ids. `--watch` refreshes every 2 seconds until interrupted.
//!
//! `trace` collects every span of one trace id (as printed by `put` or
//! the top view) from all nodes and prints the operation's causal tree.
//!
//! See EXPERIMENTS.md ("A real cluster on localhost" and "Watching a
//! live cluster") for walkthroughs.

use d2_net::{check_ring, ClusterOps, ManyCluster, ManyConfig, NodeRuntime};
use d2_ring::node::NodeConfig;
use d2_types::Key;
use d2_wire::client::WireClient;
use d2_wire::metrics::NetMetrics;
use d2_wire::tcp::{pack_addr, unpack_addr, TcpConfig, TcpTransport};
use std::io::Write;
use std::net::SocketAddrV4;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: d2-node serve      --listen IP:PORT [--seed IP:PORT] --pos F [--replicas N] [--ec K/N] [--repair-threshold M] [--repair-budget BPS] [--obs-out PATH]\n\
         \x20      d2-node serve-many --nodes N [--port P] [--replicas R] [--ec K/N] [--repair-threshold M] [--repair-budget BPS] [--tick-ms T] [--join-batch B] [--obs-out PATH]\n\
         \x20      d2-node lookup     --node IP:PORT (--key-frac F | --key-u64 N)\n\
         \x20      d2-node put        --node IP:PORT (--key-frac F | --key-u64 N) --data S [--replicas N]\n\
         \x20      d2-node get        --node IP:PORT (--key-frac F | --key-u64 N)\n\
         \x20      d2-node status     --node IP:PORT\n\
         \x20      d2-node check      --node IP:PORT [--expect N]\n\
         \x20      d2-node top        --node IP:PORT [--watch]\n\
         \x20      d2-node trace      --node IP:PORT --id TRACE\n\
         \x20      d2-node stop       --node IP:PORT [--all]"
    );
    std::process::exit(2);
}

/// Flag values parsed from the command line.
#[derive(Default)]
struct Args {
    listen: Option<SocketAddrV4>,
    seed: Option<SocketAddrV4>,
    node: Option<SocketAddrV4>,
    pos: Option<f64>,
    key: Option<Key>,
    data: Option<String>,
    replicas: usize,
    obs_out: Option<String>,
    trace_id: Option<u64>,
    watch: bool,
    nodes: Option<usize>,
    port: u16,
    tick_ms: Option<u64>,
    join_batch: Option<usize>,
    expect: Option<usize>,
    all: bool,
    ec: Option<(usize, usize)>,
    repair_threshold: Option<usize>,
    repair_budget: u64,
}

/// Parses `--ec K/N` (e.g. `4/8`): K data fragments, N total, K < N.
fn parse_ec(s: &str) -> (usize, usize) {
    let parts: Vec<&str> = s.split('/').collect();
    if let [k, n] = parts[..] {
        if let (Ok(k), Ok(n)) = (k.parse::<usize>(), n.parse::<usize>()) {
            if (d2_net::RedundancyPolicy::ErasureCode { k, n })
                .validate()
                .is_ok()
            {
                return (k, n);
            }
        }
    }
    eprintln!("--ec wants K/N with 1 <= K < N <= 255 (e.g. --ec 4/8), got {s:?}");
    std::process::exit(2);
}

fn parse_sock(s: &str, flag: &str) -> SocketAddrV4 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} wants IPv4 IP:PORT, got {s:?}");
        std::process::exit(2);
    })
}

fn parse_args(args: &[String]) -> Args {
    let mut out = Args {
        replicas: 3,
        ..Args::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--listen" => out.listen = Some(parse_sock(&val("--listen"), "--listen")),
            "--seed" => out.seed = Some(parse_sock(&val("--seed"), "--seed")),
            "--node" => out.node = Some(parse_sock(&val("--node"), "--node")),
            "--pos" => match val("--pos").parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => out.pos = Some(f),
                _ => {
                    eprintln!("--pos wants a ring position in [0, 1]");
                    std::process::exit(2);
                }
            },
            "--key-frac" => match val("--key-frac").parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => out.key = Some(Key::from_fraction(f)),
                _ => {
                    eprintln!("--key-frac wants a fraction in [0, 1]");
                    std::process::exit(2);
                }
            },
            "--key-u64" => match val("--key-u64").parse::<u64>() {
                Ok(v) => out.key = Some(Key::from_u64(v)),
                Err(_) => {
                    eprintln!("--key-u64 wants an unsigned integer");
                    std::process::exit(2);
                }
            },
            "--data" => out.data = Some(val("--data")),
            "--replicas" => match val("--replicas").parse::<usize>() {
                Ok(n) if n >= 1 => out.replicas = n,
                _ => {
                    eprintln!("--replicas wants a positive integer");
                    std::process::exit(2);
                }
            },
            "--obs-out" => out.obs_out = Some(val("--obs-out")),
            "--id" => {
                // Trace ids print in hex; accept both spellings.
                let s = val("--id");
                let parsed = match s.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => s.parse(),
                };
                match parsed {
                    Ok(id) if id != 0 => out.trace_id = Some(id),
                    _ => {
                        eprintln!("--id wants a nonzero trace id (decimal or 0x-hex)");
                        std::process::exit(2);
                    }
                }
            }
            "--watch" => out.watch = true,
            "--nodes" => match val("--nodes").parse::<usize>() {
                Ok(n) if n >= 1 => out.nodes = Some(n),
                _ => {
                    eprintln!("--nodes wants a positive integer");
                    std::process::exit(2);
                }
            },
            "--port" => match val("--port").parse::<u16>() {
                Ok(p) => out.port = p,
                Err(_) => {
                    eprintln!("--port wants a port number");
                    std::process::exit(2);
                }
            },
            "--tick-ms" => match val("--tick-ms").parse::<u64>() {
                Ok(t) if t >= 1 => out.tick_ms = Some(t),
                _ => {
                    eprintln!("--tick-ms wants a positive integer");
                    std::process::exit(2);
                }
            },
            "--join-batch" => match val("--join-batch").parse::<usize>() {
                Ok(b) if b >= 1 => out.join_batch = Some(b),
                _ => {
                    eprintln!("--join-batch wants a positive integer");
                    std::process::exit(2);
                }
            },
            "--expect" => match val("--expect").parse::<usize>() {
                Ok(n) if n >= 1 => out.expect = Some(n),
                _ => {
                    eprintln!("--expect wants a positive integer");
                    std::process::exit(2);
                }
            },
            "--all" => out.all = true,
            "--ec" => out.ec = Some(parse_ec(&val("--ec"))),
            "--repair-threshold" => match val("--repair-threshold").parse::<usize>() {
                Ok(m) if m >= 1 => out.repair_threshold = Some(m),
                _ => {
                    eprintln!("--repair-threshold wants a positive integer");
                    std::process::exit(2);
                }
            },
            "--repair-budget" => match val("--repair-budget").parse::<u64>() {
                Ok(b) => out.repair_budget = b,
                Err(_) => {
                    eprintln!("--repair-budget wants bytes/second (0 = unlimited)");
                    std::process::exit(2);
                }
            },
            _ => usage(),
        }
    }
    out
}

fn serve(args: Args) {
    let Some(listen) = args.listen else { usage() };
    let Some(pos) = args.pos else { usage() };
    let metrics = Arc::new(NetMetrics::new());
    let transport = TcpTransport::bind(
        *listen.ip(),
        listen.port(),
        TcpConfig::default(),
        metrics.clone(),
    )
    .unwrap_or_else(|e| {
        eprintln!("bind {listen}: {e}");
        std::process::exit(1);
    });
    // Announce the actual bound address (port 0 picks a free one) so
    // scripts can discover it race-free.
    println!("LISTEN {}", transport.socket_addr());
    let _ = std::io::stdout().flush();

    let stop = Arc::new(AtomicBool::new(false));
    let obs_thread = args
        .obs_out
        .map(|path| spawn_obs(path, Arc::clone(&metrics), Arc::clone(&stop)));

    let mut cfg = NodeConfig::default();
    if let Some((_, n)) = args.ec {
        // A fragment group of n members needs n - 1 successors.
        cfg.successors = cfg.successors.max(n.saturating_sub(1));
    }
    let id = Key::from_fraction(pos);
    let mut rt = match args.seed {
        None => NodeRuntime::bootstrap(id, cfg, transport),
        Some(seed) => NodeRuntime::join(id, cfg, transport, pack_addr(seed)),
    };
    rt.set_replication(args.replicas as u32);
    if let Some((k, n)) = args.ec {
        rt.set_redundancy(
            d2_net::RedundancyPolicy::ErasureCode { k, n },
            args.repair_threshold,
            args.repair_budget,
        );
    }
    // Fold this process's transport counters into MetricsDump replies,
    // so a remote `d2-node top` sees net.* alongside the node metrics.
    rt.set_net_metrics(metrics.clone());
    rt.run();

    stop.store(true, Ordering::Release);
    if let Some(h) = obs_thread {
        let _ = h.join();
    }
}

/// Appends a JSONL metrics snapshot to `path` every second until `stop`
/// flips, plus one final snapshot — shared by `serve` and `serve-many`.
fn spawn_obs(
    path: String,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| {
                eprintln!("open {path}: {e}");
                std::process::exit(1);
            });
        loop {
            for _ in 0..10 {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            let line = metrics.snapshot().snapshot().to_json();
            let _ = writeln!(file, "{line}");
            if stop.load(Ordering::Acquire) {
                return; // final snapshot written above
            }
        }
    })
}

fn serve_many(args: Args) {
    let Some(n) = args.nodes else { usage() };
    let mut cfg = ManyConfig::for_nodes(n);
    cfg.port = args.port;
    cfg.replicas = args.replicas as u32;
    if let Some(t) = args.tick_ms {
        cfg.tick = Duration::from_millis(t);
    }
    if let Some(b) = args.join_batch {
        cfg.join_batch = b;
    }
    if let Some((k, n)) = args.ec {
        cfg.redundancy = Some(d2_net::RedundancyPolicy::ErasureCode { k, n });
        cfg.repair_threshold = args.repair_threshold;
        cfg.repair_budget_bps = args.repair_budget;
    }
    let metrics = Arc::new(NetMetrics::new());
    let cluster = ManyCluster::launch(cfg, Arc::clone(&metrics)).unwrap_or_else(|e| {
        eprintln!("launch {n}-node cluster: {e}");
        std::process::exit(1);
    });
    // Node 0's address is the canonical client entry point; the other
    // nodes live at 127.0.0.1+i on the same port.
    println!("LISTEN 127.0.0.1:{}", cluster.port());
    let _ = std::io::stdout().flush();

    let stop = Arc::new(AtomicBool::new(false));
    let obs_thread = args
        .obs_out
        .map(|path| spawn_obs(path, Arc::clone(&metrics), Arc::clone(&stop)));

    // Boot progress, then STABLE once the staged join choreography is
    // done — scripts gate on these banners.
    let mut last = 0;
    while cluster.joined() < n && !cluster.finished() {
        let j = cluster.joined();
        if j != last {
            println!("JOINED {j}/{n}");
            let _ = std::io::stdout().flush();
            last = j;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if cluster.joined() >= n {
        println!("STABLE {n}");
        let _ = std::io::stdout().flush();
    }

    // Serve until every node has been stopped over the wire.
    while !cluster.finished() {
        std::thread::sleep(Duration::from_millis(100));
    }
    stop.store(true, Ordering::Release);
    if let Some(h) = obs_thread {
        let _ = h.join();
    }
}

fn client_ops(node: SocketAddrV4) -> ClusterOps<TcpTransport> {
    let metrics = Arc::new(NetMetrics::new());
    let transport = TcpTransport::bind(
        std::net::Ipv4Addr::LOCALHOST,
        0,
        TcpConfig::default(),
        metrics.clone(),
    )
    .unwrap_or_else(|e| {
        eprintln!("bind client socket: {e}");
        std::process::exit(1);
    });
    ClusterOps::new(WireClient::new(transport, metrics), vec![pack_addr(node)])
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    let args = parse_args(rest);
    match cmd.as_str() {
        "serve" => serve(args),
        "serve-many" => serve_many(args),
        "lookup" => {
            let (Some(node), Some(key)) = (args.node, args.key) else {
                usage()
            };
            match client_ops(node).lookup(key) {
                Ok(owner) => println!(
                    "owner {} at ring position {:.4}",
                    unpack_addr(owner.addr),
                    owner.id.to_fraction()
                ),
                Err(e) => {
                    eprintln!("lookup failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "put" => {
            let (Some(node), Some(key), Some(data)) = (args.node, args.key, args.data) else {
                usage()
            };
            match client_ops(node).put_traced(key, data.into_bytes(), args.replicas) {
                Ok((written, trace_id)) => {
                    println!("stored {written} replicas (trace {trace_id:#018x})")
                }
                Err(e) => {
                    eprintln!("put failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "get" => {
            let (Some(node), Some(key)) = (args.node, args.key) else {
                usage()
            };
            match client_ops(node).get(key, args.replicas) {
                Ok(data) => println!("{}", String::from_utf8_lossy(&data)),
                Err(e) => {
                    eprintln!("get failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "status" => {
            let Some(node) = args.node else { usage() };
            match client_ops(node).status_of(pack_addr(node)) {
                Some(st) => {
                    println!(
                        "node {} at ring position {:.4}",
                        unpack_addr(st.me.addr),
                        st.me.id.to_fraction()
                    );
                    match st.predecessor {
                        Some(p) => println!("predecessor {}", unpack_addr(p.addr)),
                        None => println!("predecessor (none)"),
                    }
                    for s in &st.successors {
                        println!("successor {}", unpack_addr(s.addr));
                    }
                    println!("blocks {}", st.blocks);
                }
                None => {
                    eprintln!("status failed: node unreachable");
                    std::process::exit(1);
                }
            }
        }
        "check" => {
            let Some(node) = args.node else { usage() };
            let ops = client_ops(node);
            // discover() keeps the entry address in the set even when
            // it is unreachable, so reachability is judged by who
            // actually answered a status probe.
            let members = ops.discover();
            let statuses: Vec<d2_net::NodeStatus> =
                members.iter().filter_map(|&a| ops.status_of(a)).collect();
            if statuses.is_empty() {
                eprintln!("check failed: no node reachable via {node}");
                std::process::exit(1);
            }
            let report = check_ring(&statuses);
            println!(
                "checked {} nodes, {} stored blocks",
                report.nodes, report.total_blocks
            );
            for v in &report.violations {
                println!("violation: {v}");
            }
            let mut failed = !report.ok();
            if let Some(expect) = args.expect {
                if statuses.len() < expect {
                    eprintln!("expected {expect} nodes, found {}", statuses.len());
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            println!("ok: all ring invariants hold");
        }
        "top" => {
            let Some(node) = args.node else { usage() };
            let ops = client_ops(node);
            loop {
                let scrape = ops.scrape_all();
                if scrape.nodes.is_empty() {
                    eprintln!("top failed: no node reachable via {node}");
                    std::process::exit(1);
                }
                let view = d2_net::render_top(&scrape, &|a| unpack_addr(a).to_string());
                if args.watch {
                    // Clear + home, like top(1), so the table repaints
                    // in place.
                    print!("\x1b[2J\x1b[H{view}");
                    let _ = std::io::stdout().flush();
                    std::thread::sleep(Duration::from_secs(2));
                } else {
                    print!("{view}");
                    break;
                }
            }
        }
        "trace" => {
            let (Some(node), Some(trace_id)) = (args.node, args.trace_id) else {
                usage()
            };
            let spans = client_ops(node).collect_trace(trace_id);
            if spans.is_empty() {
                eprintln!(
                    "trace {trace_id:#018x}: no spans held anywhere in the cluster \
                     (evicted from the flight recorders, or never recorded)"
                );
                std::process::exit(1);
            }
            print!(
                "{}",
                d2_net::render_trace(&spans, &|a| unpack_addr(a).to_string())
            );
        }
        "stop" => {
            let Some(node) = args.node else { usage() };
            let ops = client_ops(node);
            if args.all {
                // Discover the whole ring first, then stop each member
                // directly — each node acks its own shutdown before the
                // next is asked, so the drain is deterministic.
                let members = ops.discover();
                let mut stopped = 0usize;
                for &a in &members {
                    if ops.stop(a) {
                        stopped += 1;
                    } else {
                        eprintln!("stop failed: {} did not ack", unpack_addr(a));
                    }
                }
                println!("stopped {stopped}/{} nodes", members.len());
                if stopped < members.len() {
                    std::process::exit(1);
                }
            } else if ops.stop(pack_addr(node)) {
                println!("stopped");
            } else {
                eprintln!("stop failed: node unreachable");
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
