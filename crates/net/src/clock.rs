//! The clock abstraction that makes [`crate::NodeRuntime`] simulable.
//!
//! Every timeout in the node event loop (join retry pacing, replica
//! repair cadence) reads time through a [`Clock`] instead of calling
//! [`std::time::Instant::now`] directly. Production code uses
//! [`SystemClock`] (monotonic wall time); the deterministic simulation
//! harness (`d2-dst`) injects a [`SimClock`] whose time only moves when
//! the scheduler says so — so a schedule replayed from the same seed
//! observes byte-identical timeout decisions, with no OS threads or
//! sleeps involved.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond clock. Implementations must be cheap: the
/// runtime reads the clock on every tick.
pub trait Clock: Send + Sync + 'static {
    /// Microseconds since an arbitrary (per-clock) epoch. Must never
    /// decrease.
    fn now_us(&self) -> u64;
}

/// Real time: microseconds since the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Virtual time, advanced explicitly by a simulation scheduler. Cloning
/// shares the underlying instant, so every node of one simulated world
/// observes the same time.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_us: Arc<AtomicU64>,
}

impl SimClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Jumps virtual time forward to `t_us`. Backward jumps are ignored
    /// (the clock is monotonic by contract).
    pub fn set(&self, t_us: u64) {
        self.now_us.fetch_max(t_us, Ordering::Relaxed);
    }

    /// Advances virtual time by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        self.now_us.fetch_add(delta_us, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::default();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_moves_only_on_demand() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(250);
        assert_eq!(c.now_us(), 250);
        c.set(1_000);
        assert_eq!(c.now_us(), 1_000);
        c.set(500); // backward jump ignored
        assert_eq!(c.now_us(), 1_000);
        let shared = c.clone();
        shared.advance(1);
        assert_eq!(c.now_us(), 1_001);
    }
}
