//! The clock abstraction that makes [`crate::NodeRuntime`] simulable.
//!
//! Every timeout in the node event loop (join retry pacing, replica
//! repair cadence) reads time through a [`Clock`] instead of calling
//! [`std::time::Instant::now`] directly. Production code uses
//! [`SystemClock`] (monotonic wall time); the deterministic simulation
//! harness (`d2-dst`) injects a [`SimClock`] whose time only moves when
//! the scheduler says so — so a schedule replayed from the same seed
//! observes byte-identical timeout decisions, with no OS threads or
//! sleeps involved.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond clock. Implementations must be cheap: the
/// runtime reads the clock on every tick.
pub trait Clock: Send + Sync + 'static {
    /// Microseconds since an arbitrary (per-clock) epoch. Must never
    /// decrease.
    fn now_us(&self) -> u64;
}

/// Real time: microseconds since the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Virtual time, advanced explicitly by a simulation scheduler. Cloning
/// shares the underlying instant, so every node of one simulated world
/// observes the same time.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_us: Arc<AtomicU64>,
}

impl SimClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Jumps virtual time forward to `t_us`. Backward jumps are ignored
    /// (the clock is monotonic by contract).
    pub fn set(&self, t_us: u64) {
        self.now_us.fetch_max(t_us, Ordering::Relaxed);
    }

    /// Advances virtual time by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        self.now_us.fetch_add(delta_us, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

/// A clock that reads a base clock through a fixed offset and a
/// constant drift rate — one node's wrong idea of time.
///
/// `now_us() = offset + base + base * drift_ppm / 1e6`, so a positive
/// drift runs fast and a negative one slow. Offsets and drifts are per
/// node, not per world: the simulation harness wraps every node's
/// shared [`SimClock`] in its own `SkewClock`, which makes timers
/// (join retry, repair cadence, stabilization) fire unevenly across
/// the cluster while the scheduler still owns the one true timeline.
/// With `offset = 0, drift_ppm = 0` it is the identity.
///
/// Monotonicity holds whenever `drift_ppm > -1_000_000` (the
/// constructor enforces a much tighter bound), so the [`Clock`]
/// contract survives the warp.
#[derive(Clone, Debug)]
pub struct SkewClock<C> {
    inner: C,
    offset_us: u64,
    drift_ppm: i64,
}

/// Largest drift magnitude [`SkewClock::new`] accepts: ±10% — far past
/// anything NTP tolerates, and safely clear of the monotonicity bound.
pub const MAX_DRIFT_PPM: i64 = 100_000;

impl<C: Clock> SkewClock<C> {
    /// Wraps `inner` with a fixed `offset_us` and `drift_ppm`
    /// (microseconds gained per second, times a thousand).
    ///
    /// # Panics
    /// If `|drift_ppm|` exceeds [`MAX_DRIFT_PPM`].
    pub fn new(inner: C, offset_us: u64, drift_ppm: i64) -> Self {
        assert!(
            drift_ppm.abs() <= MAX_DRIFT_PPM,
            "drift {drift_ppm} ppm out of range"
        );
        SkewClock {
            inner,
            offset_us,
            drift_ppm,
        }
    }

    /// The wrapped clock.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Clock> Clock for SkewClock<C> {
    fn now_us(&self) -> u64 {
        let base = self.inner.now_us() as i128;
        let warped = base + base * self.drift_ppm as i128 / 1_000_000;
        (warped + self.offset_us as i128).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::default();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn skew_clock_warps_and_stays_monotonic() {
        let base = SimClock::new();
        let fast = SkewClock::new(base.clone(), 500, 50_000); // +5%
        let slow = SkewClock::new(base.clone(), 0, -50_000); // -5%
        assert_eq!(fast.now_us(), 500);
        assert_eq!(slow.now_us(), 0);
        base.set(1_000_000);
        assert_eq!(fast.now_us(), 1_050_500);
        assert_eq!(slow.now_us(), 950_000);
        let mut prev = (fast.now_us(), slow.now_us());
        for t in [1_500_000u64, 2_000_000, 10_000_000] {
            base.set(t);
            let cur = (fast.now_us(), slow.now_us());
            assert!(cur.0 > prev.0 && cur.1 > prev.1);
            prev = cur;
        }
    }

    #[test]
    fn zero_skew_is_identity() {
        let base = SimClock::new();
        let id = SkewClock::new(base.clone(), 0, 0);
        for t in [0u64, 1, 999, 123_456_789] {
            base.set(t);
            assert_eq!(id.now_us(), t);
        }
    }

    #[test]
    fn sim_clock_moves_only_on_demand() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(250);
        assert_eq!(c.now_us(), 250);
        c.set(1_000);
        assert_eq!(c.now_us(), 1_000);
        c.set(500); // backward jump ignored
        assert_eq!(c.now_us(), 1_000);
        let shared = c.clone();
        shared.advance(1);
        assert_eq!(c.now_us(), 1_001);
    }
}
