//! An in-process cluster harness, generic over the transport.
//!
//! [`Deployment`] spawns one OS thread per node, each running a
//! [`NodeRuntime`] over a [`Transport`] of the caller's choosing:
//! [`ChannelTransport`] for deterministic tests (the default type
//! parameter, so existing `Deployment::launch` callers are unchanged) or
//! [`TcpTransport`] for a real localhost socket cluster via
//! [`Deployment::launch_tcp`]. Client operations round-robin over the
//! live nodes — the bootstrap node is only special as the *join seed*,
//! not as a read path.

use crate::ops::{ClusterOps, NodeStatus};
use crate::runtime::NodeRuntime;
use d2_ec::RedundancyPolicy;
use d2_obs::Registry;
use d2_ring::messages::Addr;
use d2_ring::node::NodeConfig;
use d2_types::{Key, Result};
use d2_wire::client::WireClient;
use d2_wire::codec::Request;
use d2_wire::metrics::NetMetrics;
use d2_wire::tcp::{TcpConfig, TcpTransport};
use d2_wire::transport::{ChannelHub, ChannelTransport, Transport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct NodeSlot {
    addr: Addr,
    handle: Option<JoinHandle<()>>,
}

/// Redundancy settings applied to every node of a deployment (the
/// whole cluster must agree on the policy).
#[derive(Clone, Copy)]
struct EcSettings {
    policy: RedundancyPolicy,
    repair_threshold: Option<usize>,
    repair_budget_bps: u64,
}

/// Builds a joiner's transport plus, for TCP, its private [`NetMetrics`]
/// sheet (channel nodes share the hub sheet and return `None`).
type TransportFactory<T> = Box<dyn FnMut() -> (T, Option<Arc<NetMetrics>>) + Send>;

/// A running cluster of node threads over a pluggable transport.
pub struct Deployment<T: Transport = ChannelTransport> {
    ops: ClusterOps<T>,
    metrics: Arc<NetMetrics>,
    replicas: usize,
    seed: Addr,
    nodes: Mutex<Vec<NodeSlot>>,
    /// Builds a transport (plus, for TCP, the joining node's private
    /// [`NetMetrics`] handle) for [`Deployment::join_node`].
    factory: Mutex<TransportFactory<T>>,
    /// Transport-specific crash-stop hook (cuts a node off from peers).
    /// Returns whether the cut alone guarantees the node thread exits.
    crash: Box<dyn Fn(Addr) -> bool + Send + Sync>,
    /// Erasure-coding settings, applied to joiners too.
    ec: Option<EcSettings>,
}

impl Deployment<ChannelTransport> {
    /// Launches `n` nodes with `replicas` copies per block over
    /// in-process channels. Node 0 bootstraps the ring; the rest join
    /// through it at evenly spaced positions (deterministic placement
    /// keeps the example reproducible; use [`Deployment::launch_at`] for
    /// custom positions).
    pub fn launch(n: usize, replicas: usize) -> Deployment {
        let ids: Vec<Key> = (0..n)
            .map(|i| Key::from_fraction((i as f64 + 0.5) / n as f64))
            .collect();
        Self::launch_at(&ids, replicas)
    }

    /// Launches `n` nodes storing blocks as erasure-coded fragments
    /// (`k` of `group` reconstruct) instead of whole-block replicas,
    /// with lazy repair throttled to `repair_budget_bps` bytes/second
    /// per node (0 = unlimited). Placement is the same evenly spaced
    /// ring as [`Deployment::launch`].
    pub fn launch_ec(n: usize, k: usize, group: usize, repair_budget_bps: u64) -> Deployment {
        let ids: Vec<Key> = (0..n)
            .map(|i| Key::from_fraction((i as f64 + 0.5) / n as f64))
            .collect();
        let ec = EcSettings {
            policy: RedundancyPolicy::ErasureCode { k, n: group },
            repair_threshold: None,
            repair_budget_bps,
        };
        // `replicas` doubles as the client-side read-probe depth, so
        // cover the whole fragment group when the owner is down.
        Self::launch_at_inner(&ids, group, Some(ec))
    }

    /// Launches one channel-transport node per ring position in `ids`.
    /// Nodes get addresses `0..n`; the client endpoint gets `n`.
    pub fn launch_at(ids: &[Key], replicas: usize) -> Deployment {
        Self::launch_at_inner(ids, replicas, None)
    }

    fn launch_at_inner(ids: &[Key], replicas: usize, ec: Option<EcSettings>) -> Deployment {
        assert!(!ids.is_empty(), "need at least one node");
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(Arc::clone(&metrics));
        let transports: Vec<ChannelTransport> = ids.iter().map(|_| hub.open()).collect();
        let seed = transports[0].local_addr();
        // Channel nodes share the hub-wide metrics sheet, so they do NOT
        // get a per-node handle — every node folding the same shared
        // totals into its MetricsDump would multiply them by n in the
        // merged cluster view.
        let node_metrics = ids.iter().map(|_| None).collect();
        let nodes = spawn_nodes(ids, transports, node_metrics, seed, replicas, ec);
        let client = WireClient::new(hub.open(), Arc::clone(&metrics));
        let entries: Vec<Addr> = nodes.iter().map(|s| s.addr).collect();
        let factory_hub = hub.clone();
        Deployment {
            ops: ClusterOps::new(client, entries),
            metrics,
            replicas,
            seed,
            nodes: Mutex::new(nodes),
            factory: Mutex::new(Box::new(move || (factory_hub.open(), None))),
            crash: Box::new(move |addr| {
                // Closing the slot makes peer sends fail fast and, once
                // the mailbox drains, the node's receiver disconnects —
                // so the thread is guaranteed to exit.
                hub.close(addr);
                true
            }),
            ec,
        }
    }
}

impl Deployment<TcpTransport> {
    /// Launches `n` nodes over real localhost TCP sockets (each bound to
    /// `127.0.0.1:0`), with the same evenly spaced ring placement as
    /// [`Deployment::launch`].
    pub fn launch_tcp(
        n: usize,
        replicas: usize,
        cfg: TcpConfig,
    ) -> std::io::Result<Deployment<TcpTransport>> {
        assert!(n > 0, "need at least one node");
        let ids: Vec<Key> = (0..n)
            .map(|i| Key::from_fraction((i as f64 + 0.5) / n as f64))
            .collect();
        // Every TCP node gets a *private* metrics sheet: its counters
        // travel back in MetricsDump responses, and the merged cluster
        // view stays a sum of disjoint per-node sheets. The deployment
        // field keeps the client socket's sheet.
        let metrics = Arc::new(NetMetrics::new());
        let mut transports = Vec::with_capacity(n);
        let mut node_metrics: Vec<Option<Arc<NetMetrics>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let nm = Arc::new(NetMetrics::new());
            transports.push(TcpTransport::bind(
                Ipv4Addr::LOCALHOST,
                0,
                cfg,
                Arc::clone(&nm),
            )?);
            node_metrics.push(Some(nm));
        }
        let seed = transports[0].local_addr();
        let nodes = spawn_nodes(&ids, transports, node_metrics, seed, replicas, None);
        let client = WireClient::new(
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, cfg, Arc::clone(&metrics))?,
            Arc::clone(&metrics),
        );
        let entries: Vec<Addr> = nodes.iter().map(|s| s.addr).collect();
        Ok(Deployment {
            ops: ClusterOps::new(client, entries),
            metrics,
            replicas,
            seed,
            nodes: Mutex::new(nodes),
            factory: Mutex::new(Box::new(move || {
                let nm = Arc::new(NetMetrics::new());
                let t = TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, cfg, Arc::clone(&nm))
                    .expect("bind joining node on 127.0.0.1:0");
                (t, Some(nm))
            })),
            // A TCP node cannot be cut off externally; killing relies on
            // the shutdown request reaching it.
            crash: Box::new(|_| false),
            ec: None,
        })
    }
}

/// Ring config sized for the redundancy group: an erasure group of `n`
/// members needs `n - 1` successors, which can exceed the default
/// successor-list length (a replica chain of the same size would too,
/// but `r` that large is never configured).
fn node_config(ec: Option<EcSettings>) -> NodeConfig {
    let mut cfg = NodeConfig::default();
    if let Some(ec) = ec {
        cfg.successors = cfg.successors.max(ec.policy.group_size().saturating_sub(1));
    }
    cfg
}

fn spawn_nodes<T: Transport>(
    ids: &[Key],
    transports: Vec<T>,
    node_metrics: Vec<Option<Arc<NetMetrics>>>,
    seed: Addr,
    replicas: usize,
    ec: Option<EcSettings>,
) -> Vec<NodeSlot> {
    let mut nodes = Vec::with_capacity(ids.len());
    for (i, (transport, nm)) in transports.into_iter().zip(node_metrics).enumerate() {
        let cfg = node_config(ec);
        let mut rt = if transport.local_addr() == seed {
            NodeRuntime::bootstrap(ids[i], cfg, transport)
        } else {
            NodeRuntime::join(ids[i], cfg, transport, seed)
        };
        rt.set_replication(replicas as u32);
        if let Some(ec) = ec {
            rt.set_redundancy(ec.policy, ec.repair_threshold, ec.repair_budget_bps);
        }
        if let Some(nm) = nm {
            rt.set_net_metrics(nm);
        }
        let addr = rt.local_addr();
        nodes.push(NodeSlot {
            addr,
            handle: Some(std::thread::spawn(move || rt.run())),
        });
    }
    nodes
}

impl<T: Transport> Deployment<T> {
    /// Joins a brand-new node at ring position `id` through the seed,
    /// returning its address. The ring absorbs it over the next few
    /// stabilization rounds ([`Deployment::wait_stable`] blocks until
    /// then).
    pub fn join_node(&self, id: Key) -> Addr {
        let (transport, nm) = (self.factory.lock())();
        let mut rt = NodeRuntime::join(id, node_config(self.ec), transport, self.seed);
        rt.set_replication(self.replicas as u32);
        if let Some(ec) = self.ec {
            rt.set_redundancy(ec.policy, ec.repair_threshold, ec.repair_budget_bps);
        }
        if let Some(nm) = nm {
            rt.set_net_metrics(nm);
        }
        let addr = rt.local_addr();
        self.nodes.lock().push(NodeSlot {
            addr,
            handle: Some(std::thread::spawn(move || rt.run())),
        });
        self.refresh_entries();
        addr
    }

    /// Kills node `addr` abruptly (crash-stop). Peers detect the death
    /// through failed sends and stabilization repairs the ring; the dead
    /// node's thread is reaped before returning. The seed node must stay
    /// alive (it is the join entry point).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is the seed or not a live node.
    pub fn kill_node(&self, addr: Addr) {
        assert!(addr != self.seed, "the seed node must stay alive");
        let mut slot = {
            let mut nodes = self.nodes.lock();
            let i = nodes
                .iter()
                .position(|s| s.addr == addr)
                .unwrap_or_else(|| panic!("no live node at addr {addr}"));
            nodes.remove(i)
        };
        self.refresh_entries();
        // Ask it to stop (fire-and-forget), then cut it off so peers
        // fail fast. For channels the cut alone guarantees exit; for TCP
        // we rely on the delivered shutdown request.
        let delivered = self.ops.client().notify(addr, Request::Shutdown).is_ok();
        let forced = (self.crash)(addr);
        if let Some(h) = slot.handle.take() {
            if delivered || forced {
                let _ = h.join();
            }
            // Otherwise the node is unreachable and would never exit:
            // leak the thread rather than hang the caller.
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.lock().len()
    }

    /// Whether the deployment has no nodes (never true after launch).
    pub fn is_empty(&self) -> bool {
        self.nodes.lock().is_empty()
    }

    /// Addresses of all live nodes.
    pub fn live_addrs(&self) -> Vec<Addr> {
        self.nodes.lock().iter().map(|s| s.addr).collect()
    }

    fn refresh_entries(&self) {
        self.ops.set_entries(self.live_addrs());
    }

    /// The join seed's address.
    pub fn seed_addr(&self) -> Addr {
        self.seed
    }

    /// Client operations against this cluster (shared with the
    /// `d2-node` CLI and integration tests).
    pub fn ops(&self) -> &ClusterOps<T> {
        &self.ops
    }

    /// The deployment-wide network metrics sheet.
    pub fn metrics(&self) -> &Arc<NetMetrics> {
        &self.metrics
    }

    /// Current `net.*` counters and RTT histograms as a registry
    /// snapshot (ready for JSONL export).
    pub fn metrics_registry(&self) -> Registry {
        self.metrics.snapshot()
    }

    /// Scrapes every live node's registry and flight recorder over the
    /// wire and merges them into the cluster view (see
    /// [`ClusterOps::scrape`]).
    pub fn scrape(&self) -> crate::ops::ClusterScrape {
        self.ops.scrape(&self.live_addrs())
    }

    /// Blocks until every live node has a live predecessor and
    /// successor and the successor cycle from the seed covers all live
    /// nodes.
    pub fn wait_stable(&self) {
        for _ in 0..2000 {
            let statuses = self.statuses();
            let expected = self.len();
            let live: Vec<Addr> = statuses.iter().map(|s| s.me.addr).collect();
            let ok = statuses.len() == expected
                && statuses.iter().all(|s| {
                    s.predecessor
                        .map(|p| live.contains(&p.addr))
                        .unwrap_or(false)
                        && s.successors
                            .first()
                            .map(|p| live.contains(&p.addr))
                            .unwrap_or(false)
                })
                && ring_is_consistent(self.seed, &statuses);
            if ok {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        // Include the final ring shape: a wedged topology and a
        // merely-slow one need different fixes.
        let statuses = self.statuses();
        let mut shape = String::new();
        for s in &statuses {
            use std::fmt::Write as _;
            let _ = writeln!(
                shape,
                "  {}: pred={:?} succs={:?}",
                s.me.addr,
                s.predecessor.map(|p| p.addr),
                s.successors.iter().map(|p| p.addr).collect::<Vec<_>>()
            );
        }
        panic!(
            "ring failed to stabilize; {}/{} statuses:\n{shape}",
            statuses.len(),
            self.len()
        );
    }

    /// Locates the owner of `key` via a real recursive lookup, entering
    /// through the live nodes in round-robin order.
    pub fn lookup(&self, key: Key) -> Result<d2_ring::messages::PeerInfo> {
        self.ops.lookup(key)
    }

    /// Stores a block on the owner and its successors. Returns once the
    /// whole replica chain has acked — no settling time needed before
    /// reads.
    pub fn put(&self, key: Key, data: Vec<u8>) -> Result<()> {
        self.ops.put(key, data, self.replicas).map(|_| ())
    }

    /// Fetches a block from the owner (falling back to its successors).
    pub fn get(&self, key: Key) -> Result<Vec<u8>> {
        self.ops.get(key, self.replicas)
    }

    /// Snapshot of every reachable live node's view.
    pub fn statuses(&self) -> Vec<NodeStatus> {
        self.live_addrs()
            .into_iter()
            .filter_map(|a| self.ops.status_of(a))
            .collect()
    }

    /// Stops all node threads gracefully and reaps them.
    pub fn shutdown(&self) {
        let mut nodes = std::mem::take(&mut *self.nodes.lock());
        for slot in &mut nodes {
            let acked = self.ops.stop(slot.addr);
            let forced = if acked {
                false
            } else {
                (self.crash)(slot.addr)
            };
            if let Some(h) = slot.handle.take() {
                if acked || forced {
                    let _ = h.join();
                }
            }
        }
        self.refresh_entries();
    }
}

/// Following successor pointers from `seed` must visit all live nodes.
fn ring_is_consistent(seed: Addr, statuses: &[NodeStatus]) -> bool {
    let by_addr: HashMap<Addr, &NodeStatus> = statuses.iter().map(|s| (s.me.addr, s)).collect();
    let mut seen = 0usize;
    let mut cur = seed;
    for _ in 0..statuses.len() {
        seen += 1;
        let Some(s) = by_addr.get(&cur) else {
            return false;
        };
        let Some(next) = s.successors.first() else {
            return false;
        };
        cur = next.addr;
        if cur == seed {
            break;
        }
    }
    seen == statuses.len() && cur == seed
}

impl<T: Transport> Drop for Deployment<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}
