//! The Zave ring-invariant suite over live status snapshots.
//!
//! Zave's "How to Make Chord Correct" reduces Chord's safety to a small
//! set of checkable properties of the pointer structure. The
//! deterministic simulation harness checks them against in-process
//! state; this module checks the *same* properties against
//! [`NodeStatus`] snapshots scraped from a running cluster (via
//! [`crate::ClusterOps::status_of`]) — so `d2-node check`, the
//! 256-node check.sh smoke, and the 1,000-node experiment all assert
//! one shared definition of "the ring is correct":
//!
//! 1. **All joined** — every live node has a predecessor and a
//!    non-empty successor list.
//! 2. **Corpse-free** — every pointer names a live node (nobody routes
//!    through the dead).
//! 3. **Ordered successor lists** — each list ascends strictly in
//!    clockwise distance from its owner, with no duplicates.
//! 4. **One ring** — first successors form a single cycle covering the
//!    whole live set: each node's successor is the clockwise-next live
//!    node.
//! 5. **Consistent predecessors** — at quiescence, the predecessor
//!    pointers are the successor cycle run backwards.
//!
//! The checks are *quiescent* invariants: during churn or an unfinished
//! join they may transiently fail, which is why callers poll them
//! (e.g. a stabilization wait loop) rather than assert after a kill.

use crate::ops::NodeStatus;
use d2_ring::messages::Addr;
use std::collections::{HashMap, HashSet};

/// Outcome of one invariant pass over a set of status snapshots.
#[derive(Clone, Debug, Default)]
pub struct RingReport {
    /// Human-readable violations; empty means every invariant held.
    pub violations: Vec<String>,
    /// How many nodes were checked.
    pub nodes: usize,
    /// Sum of per-node block counts (for storage-invariant checks:
    /// after K fully-acked puts at replication r, this is at least
    /// `K * min(r, nodes)` — replicas may exceed the target after
    /// churn+repair, never undershoot it).
    pub total_blocks: usize,
}

impl RingReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the full suite against `statuses` (one snapshot per live
/// node; the live set is defined as exactly these nodes).
pub fn check_ring(statuses: &[NodeStatus]) -> RingReport {
    let mut report = RingReport {
        nodes: statuses.len(),
        total_blocks: statuses.iter().map(|s| s.blocks).sum(),
        ..RingReport::default()
    };
    if statuses.is_empty() {
        report.violations.push("no nodes to check".into());
        return report;
    }
    let live: HashSet<Addr> = statuses.iter().map(|s| s.me.addr).collect();
    if live.len() != statuses.len() {
        report
            .violations
            .push("duplicate node addresses in status set".into());
    }

    // 1 + 2: joined, and no pointers at corpses.
    for s in statuses {
        let me = s.me.addr;
        match &s.predecessor {
            None => report.violations.push(format!("{me}: no predecessor")),
            Some(p) if !live.contains(&p.addr) => report
                .violations
                .push(format!("{me}: predecessor {} is not live", p.addr)),
            _ => {}
        }
        if s.successors.is_empty() {
            report.violations.push(format!("{me}: no successors"));
        }
        for p in &s.successors {
            if !live.contains(&p.addr) {
                report
                    .violations
                    .push(format!("{me}: successor {} is not live", p.addr));
            }
        }
        // 3: strictly ascending clockwise distance, no duplicates.
        for w in s.successors.windows(2) {
            if s.me.id.distance_to(&w[0].id) >= s.me.id.distance_to(&w[1].id) {
                report.violations.push(format!(
                    "{me}: successor list out of order ({} before {})",
                    w[0].addr, w[1].addr
                ));
            }
        }
    }

    // 4: first successors are exactly the sorted-by-id cycle.
    let n = statuses.len();
    let mut by_id: Vec<&NodeStatus> = statuses.iter().collect();
    by_id.sort_by_key(|s| s.me.id);
    for (i, s) in by_id.iter().enumerate() {
        let expect = by_id[(i + 1) % n].me.addr;
        match s.successors.first() {
            Some(first) if n > 1 && first.addr != expect => {
                report.violations.push(format!(
                    "{}: first successor is {}, clockwise-next live node is {expect}",
                    s.me.addr, first.addr
                ));
            }
            _ => {} // missing successors already reported above
        }
    }

    // 5: predecessors are the cycle run backwards.
    let pred_of: HashMap<Addr, Option<Addr>> = statuses
        .iter()
        .map(|s| (s.me.addr, s.predecessor.as_ref().map(|p| p.addr)))
        .collect();
    for (i, s) in by_id.iter().enumerate() {
        let expect = by_id[(i + n - 1) % n].me.addr;
        if let Some(Some(got)) = pred_of.get(&s.me.addr) {
            if *got != expect {
                report.violations.push(format!(
                    "{}: predecessor is {got}, clockwise-previous live node is {expect}",
                    s.me.addr
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2_ring::messages::PeerInfo;
    use d2_types::Key;

    /// A quiescent n-node ring with `succs` successors per node.
    fn healthy(n: usize, succs: usize) -> Vec<NodeStatus> {
        let peer = |i: usize| PeerInfo {
            id: Key::from_fraction(i as f64 / n as f64),
            addr: 1000 + i,
        };
        (0..n)
            .map(|i| NodeStatus {
                me: peer(i),
                predecessor: Some(peer((i + n - 1) % n)),
                successors: (1..=succs.min(n - 1)).map(|k| peer((i + k) % n)).collect(),
                blocks: 3,
            })
            .collect()
    }

    #[test]
    fn healthy_ring_passes() {
        let report = check_ring(&healthy(16, 4));
        assert!(
            report.ok(),
            "unexpected violations: {:?}",
            report.violations
        );
        assert_eq!(report.nodes, 16);
        assert_eq!(report.total_blocks, 48);
    }

    #[test]
    fn corpse_pointer_is_flagged() {
        let mut ring = healthy(8, 3);
        ring[2].successors[1].addr = 9999; // points at a dead node
        let report = check_ring(&ring);
        assert!(report.violations.iter().any(|v| v.contains("not live")));
    }

    #[test]
    fn split_ring_is_flagged() {
        // Two disjoint 4-cycles instead of one 8-cycle.
        let mut ring = healthy(8, 1);
        for i in 0..8usize {
            let j = (i + 2) % 8; // skip a node: two interleaved cycles
            ring[i].successors[0] = ring[j].me;
        }
        let report = check_ring(&ring);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("clockwise-next")),
            "split ring must be caught: {:?}",
            report.violations
        );
    }

    #[test]
    fn missing_predecessor_is_flagged() {
        let mut ring = healthy(4, 2);
        ring[0].predecessor = None;
        let report = check_ring(&ring);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("no predecessor")));
    }

    #[test]
    fn unordered_successor_list_is_flagged() {
        let mut ring = healthy(8, 3);
        ring[0].successors.swap(0, 2);
        let report = check_ring(&ring);
        assert!(!report.ok());
    }
}
