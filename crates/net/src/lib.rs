//! A live D2 deployment: thread-per-node over a pluggable transport.
//!
//! The paper evaluates its C++ prototype on up to 1,000 virtual nodes on
//! Emulab (Section 9.1). This crate is the equivalent runnable artifact:
//! every node is an OS thread executing the *same* protocol state machine
//! as the simulations ([`d2_ring::node::ProtocolNode`]) plus a block
//! store, glued to the world through a [`d2_wire::Transport`]. A
//! [`Deployment`] handle lets a client join nodes, put/get replicated
//! blocks through real recursive lookups, and inspect the ring.
//!
//! Two transports, one node:
//!
//! - [`Deployment::launch`] runs over in-process channels —
//!   deterministic, no sockets, what the unit tests use.
//! - [`Deployment::launch_tcp`] runs the identical [`NodeRuntime`] over
//!   real localhost TCP sockets with connection pooling and
//!   reconnect-with-backoff.
//! - the `d2-node` binary (in this crate) runs one [`NodeRuntime`] per
//!   OS *process*, for multi-process clusters — see EXPERIMENTS.md.
//! - `d2-node serve-many` ([`many`]) multiplexes *N* [`NodeRuntime`]s
//!   over one reactor in one process — the paper-scale deployment
//!   (1,000 nodes on one machine) with a constant OS thread count.
//!
//! [`invariants::check_ring`] asserts the Zave ring invariants against
//! live status snapshots, shared by `d2-node check`, the test suites,
//! and the cluster smoke in `scripts/check.sh`.
//!
//! Replica writes are chain-acked: a [`Deployment::put`] returns only
//! after the last node of the replica chain has stored the block, so
//! reads issued immediately after a put see every replica.
//!
//! # Examples
//!
//! ```
//! use d2_net::Deployment;
//! use d2_types::Key;
//!
//! let dep = Deployment::launch(16, 3);
//! dep.wait_stable();
//! dep.put(Key::from_u64(42), b"hello".to_vec()).unwrap();
//! assert_eq!(dep.get(Key::from_u64(42)).unwrap(), b"hello");
//! dep.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod deployment;
pub mod invariants;
pub mod many;
pub mod ops;
pub mod runtime;
pub mod telemetry;

pub use clock::{Clock, SimClock, SkewClock, SystemClock};
pub use d2_ec::RedundancyPolicy;
pub use deployment::Deployment;
pub use invariants::{check_ring, RingReport};
pub use many::{ManyCluster, ManyConfig};
pub use ops::{BatchOutcome, ClusterOps, ClusterScrape, NodeScrape, NodeStatus, PipelineConfig};
pub use runtime::{NodeRuntime, StoredFragment};
pub use telemetry::{render_top, render_trace};

#[cfg(test)]
mod tests {
    use super::*;
    use d2_types::{D2Error, Key};
    use d2_wire::tcp::TcpConfig;

    #[test]
    fn small_ring_stabilizes() {
        let dep = Deployment::launch(8, 3);
        dep.wait_stable();
        let statuses = dep.statuses();
        assert_eq!(statuses.len(), 8);
        for s in &statuses {
            assert!(s.predecessor.is_some());
            assert!(!s.successors.is_empty());
        }
        dep.shutdown();
    }

    #[test]
    fn put_get_roundtrip() {
        let dep = Deployment::launch(12, 3);
        dep.wait_stable();
        for i in 0..20u64 {
            let key = Key::from_u64_ordered(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            dep.put(key, format!("block-{i}").into_bytes()).unwrap();
        }
        // No settling sleep: the put ack comes from the end of the
        // replica chain, so every copy is already written.
        for i in 0..20u64 {
            let key = Key::from_u64_ordered(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(dep.get(key).unwrap(), format!("block-{i}").into_bytes());
        }
        dep.shutdown();
    }

    #[test]
    fn lookup_finds_correct_owner() {
        let dep = Deployment::launch(10, 2);
        dep.wait_stable();
        // With nodes at (i+0.5)/10, the owner of 0.61 is the node at 0.65
        // (addr 6).
        let owner = dep.lookup(Key::from_fraction(0.61)).unwrap();
        assert_eq!(owner.id, Key::from_fraction(6.5 / 10.0));
        dep.shutdown();
    }

    #[test]
    fn put_ack_means_all_replicas_written() {
        let dep = Deployment::launch(8, 3);
        dep.wait_stable();
        let key = Key::from_fraction(0.33);
        // The ack reports the chain length; immediately afterwards the
        // copies must be countable — no fan-out race to sleep around.
        let written = dep.ops().put(key, b"replicated".to_vec(), 3).unwrap();
        assert_eq!(written, 3);
        let total: usize = dep.statuses().iter().map(|s| s.blocks).sum();
        assert!(total >= 3, "expected >= 3 copies, saw {total}");
        dep.shutdown();
    }

    #[test]
    fn ring_absorbs_joins_and_crashes() {
        let dep = Deployment::launch(10, 3);
        dep.wait_stable();
        // Store blocks before the churn.
        let keys: Vec<Key> = (1..=12u64)
            .map(|i| Key::from_fraction(i as f64 / 13.0))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            dep.put(k, vec![i as u8; 64]).unwrap();
        }

        // Join three new nodes at fresh positions.
        for f in [0.03, 0.47, 0.81] {
            dep.join_node(Key::from_fraction(f));
        }
        dep.wait_stable();
        assert_eq!(dep.len(), 13);

        // Crash two non-seed nodes; the ring must heal and kill_node
        // must have reaped their threads before returning.
        dep.kill_node(4);
        dep.kill_node(7);
        dep.wait_stable();
        assert_eq!(dep.len(), 11);

        // Every block is still readable (replicas survive two failures).
        for (i, &k) in keys.iter().enumerate() {
            let got = dep.get(k).unwrap_or_else(|e| panic!("block {i} lost: {e}"));
            assert_eq!(got, vec![i as u8; 64]);
        }
        dep.shutdown();
    }

    #[test]
    fn missing_key_errors() {
        let dep = Deployment::launch(6, 2);
        dep.wait_stable();
        let err = dep.get(Key::from_fraction(0.777));
        assert!(matches!(err, Err(D2Error::NotFound(_))));
        dep.shutdown();
    }

    #[test]
    fn reads_do_not_depend_on_the_seed_entry() {
        // Round-robin entry: lookups keep working across many calls,
        // each entering through a different node.
        let dep = Deployment::launch(6, 2);
        dep.wait_stable();
        dep.put(Key::from_fraction(0.5), b"x".to_vec()).unwrap();
        for _ in 0..18 {
            assert_eq!(dep.get(Key::from_fraction(0.5)).unwrap(), b"x");
        }
        dep.shutdown();
    }

    #[test]
    fn ec_put_get_roundtrip_and_fragment_spread() {
        // 8 nodes, blocks stored as 4 fragments of which any 2
        // reconstruct. A put fans the fragments over the owner's
        // successor group; a get gathers and decodes them.
        let dep = Deployment::launch_ec(8, 2, 4, 0);
        dep.wait_stable();
        let keys: Vec<Key> = (1..=10u64)
            .map(|i| Key::from_fraction(i as f64 / 11.0))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            let written = dep.ops().put(k, vec![i as u8; 96], 4).unwrap();
            assert!(written >= 2, "key {i}: only {written} fragments stored");
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(dep.get(k).unwrap(), vec![i as u8; 96]);
        }
        // Fragments — not whole blocks — are what landed on disk.
        let scrape = dep.scrape();
        let frags: u64 = scrape
            .nodes
            .iter()
            .map(|n| n.registry.gauge("ec.fragments").unwrap_or(0.0) as u64)
            .sum();
        assert!(frags > 10, "expected fragment spread, saw {frags}");
        let blocks: usize = dep.statuses().iter().map(|s| s.blocks).sum();
        assert_eq!(blocks, 0, "EC mode must not store whole blocks");
        dep.shutdown();
    }

    #[test]
    fn ec_reads_survive_n_minus_k_crashes_and_repair_restores_fragments() {
        // (k=2, n=4): any 2 of the 4 fragment holders suffice, so two
        // crashes are survivable; lazy repair then re-encodes the lost
        // fragments onto the healed successor groups.
        let dep = Deployment::launch_ec(8, 2, 4, 0);
        dep.wait_stable();
        let keys: Vec<Key> = (1..=8u64)
            .map(|i| Key::from_fraction(i as f64 / 9.0))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            dep.put(k, vec![0x40 | i as u8; 128]).unwrap();
        }
        // Adjacent victims: whatever exact group a put used (successor
        // lists may still be converging when blocks land), a key owned
        // by node 2 always fans its first fragments over nodes 3 and 4,
        // so at least one key drops below the repair threshold.
        dep.kill_node(3);
        dep.kill_node(4);
        dep.wait_stable();
        // Every block reconstructs from surviving fragments. Gathers
        // race stabilization's successor updates, so retry briefly.
        for (i, &k) in keys.iter().enumerate() {
            let want = vec![0x40 | i as u8; 128];
            let mut got = dep.get(k);
            for _ in 0..200 {
                if got.as_ref().is_ok_and(|d| *d == want) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                got = dep.get(k);
            }
            assert_eq!(got.unwrap_or_else(|e| panic!("block {i} lost: {e}")), want);
        }
        // The background repair round (lazy, unlimited budget here)
        // regenerates the crashed nodes' fragments.
        let mut repaired = 0;
        for _ in 0..200 {
            let scrape = dep.scrape();
            repaired = scrape
                .nodes
                .iter()
                .map(|n| n.registry.counter("ec.repaired_fragments"))
                .sum::<u64>();
            if repaired > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        assert!(repaired > 0, "lazy repair never regenerated a fragment");
        dep.shutdown();
    }

    #[test]
    fn tcp_deployment_put_get_roundtrip() {
        // The identical NodeRuntime over real localhost sockets.
        let dep = Deployment::launch_tcp(5, 3, TcpConfig::default()).unwrap();
        dep.wait_stable();
        for i in 0..6u64 {
            let key = Key::from_u64_ordered(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            dep.put(key, format!("tcp-{i}").into_bytes()).unwrap();
        }
        for i in 0..6u64 {
            let key = Key::from_u64_ordered(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(dep.get(key).unwrap(), format!("tcp-{i}").into_bytes());
        }
        let reg = dep.metrics_registry();
        assert!(reg.counter("net.bytes_out") > 0);
        assert!(reg.counter("net.msgs") > 0);
        assert!(reg.histogram("net.rtt_us.put").is_some());
        dep.shutdown();
    }
}
