//! A live, thread-per-node D2 deployment.
//!
//! The paper evaluates its C++ prototype on up to 1,000 virtual nodes on
//! Emulab (Section 9.1). This crate is the equivalent runnable artifact:
//! every node is an OS thread executing the *same* protocol state machine
//! as the simulations ([`d2_ring::node::ProtocolNode`]) plus a block
//! store, with crossbeam channels as the transport. A [`Deployment`]
//! handle lets a client join nodes, put/get replicated blocks through
//! real recursive lookups, and inspect the ring.
//!
//! # Examples
//!
//! ```
//! use d2_net::Deployment;
//! use d2_types::Key;
//!
//! let dep = Deployment::launch(16, 3);
//! dep.wait_stable();
//! dep.put(Key::from_u64(42), b"hello".to_vec()).unwrap();
//! assert_eq!(dep.get(Key::from_u64(42)).unwrap(), b"hello");
//! dep.shutdown();
//! ```

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use d2_ring::messages::{Addr, PeerInfo, RingMsg};
use d2_ring::node::{NodeConfig, ProtocolNode};
use d2_types::{D2Error, Key, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages exchanged between node threads and clients.
#[derive(Debug)]
enum NetMsg {
    /// Ring maintenance / lookup traffic.
    Ring(RingMsg),
    /// Client asks this node to locate the owner of `key`.
    ClientLookup { key: Key, reply: Sender<PeerInfo> },
    /// Store a block here and replicate to `fanout` further successors.
    StorePut {
        key: Key,
        data: Vec<u8>,
        fanout: usize,
        ack: Option<Sender<()>>,
    },
    /// Fetch a block from this node.
    StoreGet {
        key: Key,
        reply: Sender<Option<Vec<u8>>>,
    },
    /// Report ring state (for assertions and monitoring).
    Status { reply: Sender<NodeStatus> },
    /// Terminate the node thread.
    Shutdown,
}

/// A snapshot of one node's view.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The node's identity.
    pub me: PeerInfo,
    /// Its predecessor, if known.
    pub predecessor: Option<PeerInfo>,
    /// Its successor list.
    pub successors: Vec<PeerInfo>,
    /// Blocks stored locally.
    pub blocks: usize,
}

type Net = Arc<RwLock<Vec<Sender<NetMsg>>>>;

struct NodeThread {
    node: ProtocolNode,
    store: HashMap<Key, Vec<u8>>,
    rx: Receiver<NetMsg>,
    net: Net,
    pending_lookups: HashMap<u64, Sender<PeerInfo>>,
}

impl NodeThread {
    fn send_all(&mut self, msgs: Vec<(Addr, RingMsg)>) {
        let mut queue: Vec<(Addr, RingMsg)> = msgs;
        // Bounded local re-routing: when a hop turns out dead we forget it
        // and, for routed requests, immediately re-handle the message so
        // it takes the next-best route instead of being dropped.
        let mut budget = 64;
        while let Some((to, msg)) = queue.pop() {
            let tx = self.net.read().get(to).cloned();
            let sent = match tx {
                Some(tx) => tx.send(NetMsg::Ring(msg.clone())).is_ok(),
                None => false,
            };
            if sent {
                continue;
            }
            self.node.forget(to);
            let reroutable = matches!(msg, RingMsg::FindOwner { .. } | RingMsg::Join { .. });
            if reroutable && budget > 0 {
                budget -= 1;
                queue.extend(self.node.handle(msg));
            }
        }
    }

    fn run(mut self) {
        loop {
            let msg = match self.rx.recv_timeout(Duration::from_millis(20)) {
                Ok(m) => m,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    let out = self.node.tick();
                    self.send_all(out);
                    self.drain_completed();
                    continue;
                }
                Err(_) => break,
            };
            match msg {
                NetMsg::Shutdown => break,
                NetMsg::Ring(m) => {
                    let out = self.node.handle(m);
                    self.send_all(out);
                    self.drain_completed();
                }
                NetMsg::ClientLookup { key, reply } => {
                    let (req, out) = self.node.start_lookup(key);
                    self.pending_lookups.insert(req, reply);
                    self.send_all(out);
                    self.drain_completed();
                }
                NetMsg::StorePut {
                    key,
                    data,
                    fanout,
                    ack,
                } => {
                    self.store.insert(key, data.clone());
                    if fanout > 0 {
                        if let Some(succ) = self.node.successors().first().copied() {
                            let tx = self.net.read().get(succ.addr).cloned();
                            if let Some(tx) = tx {
                                let _ = tx.send(NetMsg::StorePut {
                                    key,
                                    data,
                                    fanout: fanout - 1,
                                    ack: None,
                                });
                            }
                        }
                    }
                    if let Some(ack) = ack {
                        let _ = ack.send(());
                    }
                }
                NetMsg::StoreGet { key, reply } => {
                    let _ = reply.send(self.store.get(&key).cloned());
                }
                NetMsg::Status { reply } => {
                    let _ = reply.send(NodeStatus {
                        me: self.node.me(),
                        predecessor: self.node.predecessor(),
                        successors: self.node.successors().to_vec(),
                        blocks: self.store.len(),
                    });
                }
            }
        }
    }

    fn drain_completed(&mut self) {
        for res in self.node.take_completed() {
            if let Some(reply) = self.pending_lookups.remove(&res.req_id) {
                let _ = reply.send(res.owner);
            }
        }
    }
}

/// A running cluster of node threads.
pub struct Deployment {
    net: Net,
    handles: Mutex<Vec<JoinHandle<()>>>,
    replicas: usize,
    n: Mutex<usize>,
    dead: Mutex<Vec<usize>>,
}

impl Deployment {
    /// Launches `n` nodes with `replicas` copies per block. Node 0
    /// bootstraps the ring; the rest join through it at evenly spaced
    /// positions (deterministic placement keeps the example reproducible;
    /// use [`Deployment::launch_at`] for custom positions).
    pub fn launch(n: usize, replicas: usize) -> Deployment {
        let ids: Vec<Key> = (0..n)
            .map(|i| Key::from_fraction((i as f64 + 0.5) / n as f64))
            .collect();
        Self::launch_at(&ids, replicas)
    }

    /// Launches one node per ring position in `ids`.
    pub fn launch_at(ids: &[Key], replicas: usize) -> Deployment {
        let n = ids.len();
        assert!(n > 0, "need at least one node");
        let net: Net = Arc::new(RwLock::new(Vec::with_capacity(n)));
        let mut receivers = Vec::with_capacity(n);
        {
            let mut senders = net.write();
            for _ in 0..n {
                let (tx, rx) = unbounded();
                senders.push(tx);
                receivers.push(rx);
            }
        }
        let mut handles = Vec::with_capacity(n);
        for (addr, rx) in receivers.into_iter().enumerate() {
            let cfg = NodeConfig::default();
            let (node, join_msgs) = if addr == 0 {
                (ProtocolNode::bootstrap(ids[addr], addr, cfg), Vec::new())
            } else {
                ProtocolNode::join(ids[addr], addr, cfg, 0)
            };
            let thread = NodeThread {
                node,
                store: HashMap::new(),
                rx,
                net: Arc::clone(&net),
                pending_lookups: HashMap::new(),
            };
            for (to, msg) in join_msgs {
                let _ = net.read()[to].send(NetMsg::Ring(msg));
            }
            handles.push(std::thread::spawn(move || thread.run()));
        }
        Deployment {
            net,
            handles: Mutex::new(handles),
            replicas,
            n: Mutex::new(n),
            dead: Mutex::new(Vec::new()),
        }
    }

    /// Joins a brand-new node at ring position `id` through node 0,
    /// returning its address. The ring absorbs it over the next few
    /// stabilization rounds ([`Deployment::wait_stable`] blocks until
    /// then).
    pub fn join_node(&self, id: Key) -> usize {
        let (tx, rx) = unbounded();
        let addr = {
            let mut senders = self.net.write();
            senders.push(tx);
            senders.len() - 1
        };
        let (node, join_msgs) = ProtocolNode::join(id, addr, NodeConfig::default(), 0);
        let thread = NodeThread {
            node,
            store: HashMap::new(),
            rx,
            net: Arc::clone(&self.net),
            pending_lookups: HashMap::new(),
        };
        for (to, msg) in join_msgs {
            let _ = self.net.read()[to].send(NetMsg::Ring(msg));
        }
        self.handles
            .lock()
            .push(std::thread::spawn(move || thread.run()));
        *self.n.lock() += 1;
        addr
    }

    /// Kills node `addr` abruptly (crash-stop). Peers detect the death
    /// through failed sends and stabilization repairs the ring. Node 0
    /// must stay alive (it is the join seed and client entry point).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is 0.
    pub fn kill_node(&self, addr: usize) {
        assert!(addr != 0, "node 0 is the bootstrap/client entry point");
        let tx = self.net.read().get(addr).cloned();
        if let Some(tx) = tx {
            let _ = tx.send(NetMsg::Shutdown);
        }
        // Replace the channel with a closed one so future sends fail fast.
        let (closed_tx, closed_rx) = unbounded();
        drop(closed_rx);
        if let Some(slot) = self.net.write().get_mut(addr) {
            *slot = closed_tx;
        }
        self.dead.lock().push(addr);
        *self.n.lock() -= 1;
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        *self.n.lock()
    }

    /// Whether the deployment has no nodes (never true after launch).
    pub fn is_empty(&self) -> bool {
        *self.n.lock() == 0
    }

    /// Blocks until every live node has a predecessor and a successor
    /// (the ring is fully stabilized) and the successor cycle covers all
    /// live nodes.
    pub fn wait_stable(&self) {
        for _ in 0..2000 {
            let statuses = self.statuses();
            let expected = self.len();
            let live: Vec<usize> = statuses.iter().map(|s| s.me.addr).collect();
            let ok = statuses.len() == expected
                && statuses.iter().all(|s| {
                    s.predecessor
                        .map(|p| live.contains(&p.addr))
                        .unwrap_or(false)
                        && s.successors
                            .first()
                            .map(|p| live.contains(&p.addr))
                            .unwrap_or(false)
                })
                && self.ring_is_consistent(&statuses);
            if ok {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("ring failed to stabilize");
    }

    fn ring_is_consistent(&self, statuses: &[NodeStatus]) -> bool {
        // Following successor pointers from node 0 must visit all nodes.
        let by_addr: HashMap<usize, &NodeStatus> =
            statuses.iter().map(|s| (s.me.addr, s)).collect();
        let mut seen = 0usize;
        let mut cur = 0usize;
        for _ in 0..statuses.len() {
            seen += 1;
            let Some(s) = by_addr.get(&cur) else {
                return false;
            };
            let Some(next) = s.successors.first() else {
                return false;
            };
            cur = next.addr;
            if cur == 0 {
                break;
            }
        }
        seen == statuses.len() && cur == 0
    }

    /// Locates the owner of `key` via a real recursive lookup through
    /// node 0. Retries a few times: a lookup routed through a node that
    /// died mid-flight is dropped (the sender forgets the dead hop), and
    /// the retry takes the repaired route.
    pub fn lookup(&self, key: Key) -> Result<PeerInfo> {
        for attempt in 0..4 {
            let (tx, rx) = bounded(1);
            self.net.read()[0]
                .send(NetMsg::ClientLookup { key, reply: tx })
                .map_err(|_| D2Error::Unavailable(key))?;
            let timeout = Duration::from_millis(500 * (attempt + 1) as u64);
            if let Ok(owner) = rx.recv_timeout(timeout) {
                return Ok(owner);
            }
        }
        Err(D2Error::Unavailable(key))
    }

    /// Stores a block on the owner and its successors.
    pub fn put(&self, key: Key, data: Vec<u8>) -> Result<()> {
        let owner = self.lookup(key)?;
        let (tx, rx) = bounded(1);
        let owner_tx = self
            .net
            .read()
            .get(owner.addr)
            .cloned()
            .ok_or(D2Error::Unavailable(key))?;
        owner_tx
            .send(NetMsg::StorePut {
                key,
                data,
                fanout: self.replicas.saturating_sub(1),
                ack: Some(tx),
            })
            .map_err(|_| D2Error::Unavailable(key))?;
        rx.recv_timeout(Duration::from_secs(10))
            .map_err(|_| D2Error::Unavailable(key))
    }

    /// Fetches a block from the owner (falling back to its successors).
    pub fn get(&self, key: Key) -> Result<Vec<u8>> {
        let owner = self.lookup(key)?;
        let mut addr = owner.addr;
        for _ in 0..self.replicas.max(1) {
            let (tx, rx) = bounded(1);
            let node_tx = self
                .net
                .read()
                .get(addr)
                .cloned()
                .ok_or(D2Error::Unavailable(key))?;
            node_tx
                .send(NetMsg::StoreGet { key, reply: tx })
                .map_err(|_| D2Error::Unavailable(key))?;
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(Some(data)) => return Ok(data),
                Ok(None) => {
                    // Ask this node's successor next.
                    let (stx, srx) = bounded(1);
                    let stx_ch = self.net.read().get(addr).cloned();
                    match stx_ch {
                        Some(ch) => {
                            let _ = ch.send(NetMsg::Status { reply: stx });
                        }
                        None => break,
                    }
                    match srx.recv_timeout(Duration::from_secs(10)) {
                        Ok(st) => match st.successors.first() {
                            Some(next) => addr = next.addr,
                            None => break,
                        },
                        Err(_) => break,
                    }
                }
                Err(_) => break,
            }
        }
        Err(D2Error::NotFound(key))
    }

    /// Snapshot of every live node's view.
    pub fn statuses(&self) -> Vec<NodeStatus> {
        let senders: Vec<Sender<NetMsg>> = self.net.read().clone();
        let dead = self.dead.lock().clone();
        let mut out = Vec::new();
        for (addr, tx) in senders.iter().enumerate() {
            if dead.contains(&addr) {
                continue;
            }
            let (rtx, rrx) = bounded(1);
            if tx.send(NetMsg::Status { reply: rtx }).is_ok() {
                if let Ok(s) = rrx.recv_timeout(Duration::from_secs(10)) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Stops all node threads.
    pub fn shutdown(&self) {
        for tx in self.net.read().iter() {
            let _ = tx.send(NetMsg::Shutdown);
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_stabilizes() {
        let dep = Deployment::launch(8, 3);
        dep.wait_stable();
        let statuses = dep.statuses();
        assert_eq!(statuses.len(), 8);
        for s in &statuses {
            assert!(s.predecessor.is_some());
            assert!(!s.successors.is_empty());
        }
        dep.shutdown();
    }

    #[test]
    fn put_get_roundtrip() {
        let dep = Deployment::launch(12, 3);
        dep.wait_stable();
        for i in 0..20u64 {
            let key = Key::from_u64_ordered(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            dep.put(key, format!("block-{i}").into_bytes()).unwrap();
        }
        // Give replication a moment to fan out.
        std::thread::sleep(Duration::from_millis(100));
        for i in 0..20u64 {
            let key = Key::from_u64_ordered(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(dep.get(key).unwrap(), format!("block-{i}").into_bytes());
        }
        dep.shutdown();
    }

    #[test]
    fn lookup_finds_correct_owner() {
        let dep = Deployment::launch(10, 2);
        dep.wait_stable();
        // With nodes at (i+0.5)/10, the owner of 0.61 is the node at 0.65
        // (addr 6).
        let owner = dep.lookup(Key::from_fraction(0.61)).unwrap();
        assert_eq!(owner.id, Key::from_fraction(6.5 / 10.0));
        dep.shutdown();
    }

    #[test]
    fn replicas_survive_owner_silence() {
        // Put a block, then read it from a successor directly via status
        // inspection: at least `replicas` nodes should hold it.
        let dep = Deployment::launch(8, 3);
        dep.wait_stable();
        let key = Key::from_fraction(0.33);
        dep.put(key, b"replicated".to_vec()).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let total: usize = dep.statuses().iter().map(|s| s.blocks).sum();
        assert!(total >= 3, "expected >= 3 copies, saw {total}");
        dep.shutdown();
    }

    #[test]
    fn ring_absorbs_joins_and_crashes() {
        let dep = Deployment::launch(10, 3);
        dep.wait_stable();
        // Store blocks before the churn.
        let keys: Vec<Key> = (1..=12u64)
            .map(|i| Key::from_fraction(i as f64 / 13.0))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            dep.put(k, vec![i as u8; 64]).unwrap();
        }
        std::thread::sleep(Duration::from_millis(150));

        // Join three new nodes at fresh positions.
        for f in [0.03, 0.47, 0.81] {
            dep.join_node(Key::from_fraction(f));
        }
        dep.wait_stable();
        assert_eq!(dep.len(), 13);

        // Crash two non-seed nodes; the ring must heal.
        dep.kill_node(4);
        dep.kill_node(7);
        dep.wait_stable();
        assert_eq!(dep.len(), 11);

        // Every block is still readable (replicas survive two failures).
        for (i, &k) in keys.iter().enumerate() {
            let got = dep.get(k).unwrap_or_else(|e| panic!("block {i} lost: {e}"));
            assert_eq!(got, vec![i as u8; 64]);
        }
        dep.shutdown();
    }

    #[test]
    fn missing_key_errors() {
        let dep = Deployment::launch(6, 2);
        dep.wait_stable();
        let err = dep.get(Key::from_fraction(0.777));
        assert!(matches!(err, Err(D2Error::NotFound(_))));
        dep.shutdown();
    }
}
