//! Single-process many-nodes mode: N [`NodeRuntime`]s multiplexed over
//! one [`TcpReactor`] by one scheduler thread.
//!
//! The paper's headline deployment is ~1,000 live instances (§9.1); a
//! thread-per-node deployment cannot get there on one machine. This
//! module can, by exploiting two facts:
//!
//! - the node event loop is already *single-steppable* — the
//!   deterministic simulation harness drives [`NodeRuntime::on_message`]
//!   / [`NodeRuntime::on_tick`] one event at a time, so a scheduler
//!   thread can interleave a thousand nodes the same way;
//! - the reactor transport multiplexes any number of *virtual
//!   endpoints* over one socket: node `i` advertises `127.0.0.1+i` on
//!   the shared port (the whole `127/8` block routes locally on
//!   Linux), inbound frames demux by the IP the remote dialed, and
//!   co-hosted nodes reach each other over the loopback fast path —
//!   no socket, no frame, no syscall.
//!
//! Total OS threads per process: the caller's, the multiplexer, and
//! the reactor's poller — constant in N.
//!
//! ## Boot choreography
//!
//! A thousand nodes joining through one seed at once is a join storm:
//! every join lands on the same adopter while the ring is small.
//! Two measures keep boot smooth:
//!
//! - **Staged joins.** Nodes spawn in batches of
//!   [`ManyConfig::join_batch`]; the next batch starts only when the
//!   current one is fully joined (the per-node join retry recovers any
//!   join lost in the crowd).
//! - **Bit-reversed placement.** The `i`-th spawned node takes ring
//!   position `bitrev(i)` (scaled to the unit ring), so each wave of
//!   joiners bisects the existing gaps uniformly — adopters spread
//!   across the whole ring instead of hammering the seed's arc.
//!
//! Ticks share one timer wheel (a due-time heap), staggered so
//! stabilization traffic spreads over the tick interval instead of
//! arriving as N-node bursts.

use crate::clock::{Clock, SystemClock};
use crate::runtime::NodeRuntime;
use d2_ring::messages::Addr;
use d2_ring::node::NodeConfig;
use d2_types::Key;
use d2_wire::metrics::NetMetrics;
use d2_wire::reactor::{Delivery, TcpEndpoint, TcpReactor};
use d2_wire::tcp::TcpConfig;
use d2_wire::transport::Transport;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`ManyCluster`].
#[derive(Clone, Copy, Debug)]
pub struct ManyConfig {
    /// How many nodes to host.
    pub nodes: usize,
    /// Replica-maintenance target passed to every node.
    pub replicas: u32,
    /// Listen port (0 picks a free port). The listener binds
    /// `0.0.0.0:port` so every virtual `127.x.y.z` address is dialable.
    pub port: u16,
    /// Per-node maintenance tick interval. Scaled up with N by
    /// [`ManyConfig::for_nodes`]: N nodes ticking every `tick` is
    /// `N/tick` events per second through one scheduler thread.
    pub tick: Duration,
    /// How many nodes join concurrently during boot.
    pub join_batch: usize,
    /// Redundancy policy passed to every node. `None` keeps classic
    /// replica chains at [`ManyConfig::replicas`]; an erasure policy
    /// switches the whole cluster to k-of-n fragment storage.
    pub redundancy: Option<d2_ec::RedundancyPolicy>,
    /// Lazy-repair threshold for erasure mode (`None` = policy default).
    pub repair_threshold: Option<usize>,
    /// Per-node repair budget in bytes/second (`0` = unlimited).
    pub repair_budget_bps: u64,
    /// Ring configuration for every node.
    pub node: NodeConfig,
    /// Transport tuning.
    pub tcp: TcpConfig,
}

impl ManyConfig {
    /// Sensible defaults for an `n`-node single-process cluster: tick
    /// scaled so total tick load stays around 4k events/s, joins in
    /// batches of 64.
    pub fn for_nodes(n: usize) -> ManyConfig {
        ManyConfig {
            nodes: n.max(1),
            replicas: 3,
            port: 0,
            tick: Duration::from_micros((n as u64 * 250).max(20_000)),
            join_batch: 64,
            redundancy: None,
            repair_threshold: None,
            repair_budget_bps: 0,
            node: NodeConfig::default(),
            tcp: TcpConfig::default(),
        }
    }
}

/// An N-node cluster hosted in this process: one reactor, one
/// multiplexer thread, N virtual endpoints. Nodes are first-class ring
/// members — external clients (`d2-load`, `d2-node`) connect to any
/// `127.0.0.1+i:port` exactly as they would to a standalone node.
pub struct ManyCluster {
    reactor: Arc<TcpReactor>,
    addrs: Vec<Addr>,
    spawned: Arc<AtomicUsize>,
    joined: Arc<AtomicUsize>,
    live: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    mux: Option<JoinHandle<()>>,
}

impl ManyCluster {
    /// Boots the cluster: binds the reactor, spawns the multiplexer,
    /// and starts the staged join choreography. Returns immediately —
    /// poll [`ManyCluster::joined`] or [`ManyCluster::wait_joined`]
    /// for boot progress.
    pub fn launch(mut cfg: ManyConfig, metrics: Arc<NetMetrics>) -> io::Result<ManyCluster> {
        // An erasure group of `n` members needs `n - 1` successors —
        // more than the default list holds for wide codes.
        if let Some(policy) = cfg.redundancy {
            cfg.node.successors = cfg
                .node
                .successors
                .max(policy.group_size().saturating_sub(1));
        }
        let n = cfg.nodes.max(1);
        let reactor = Arc::new(TcpReactor::bind(
            Ipv4Addr::UNSPECIFIED,
            cfg.port,
            cfg.tcp,
            metrics,
        )?);
        let port = reactor.port();
        let addrs: Vec<Addr> = (0..n)
            .map(|i| d2_wire::tcp::pack_addr(std::net::SocketAddrV4::new(node_ip(i), port)))
            .collect();
        let spawned = Arc::new(AtomicUsize::new(0));
        let joined = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let mux = {
            let reactor = Arc::clone(&reactor);
            let addrs = addrs.clone();
            let (spawned, joined, live, stop) = (
                Arc::clone(&spawned),
                Arc::clone(&joined),
                Arc::clone(&live),
                Arc::clone(&stop),
            );
            std::thread::Builder::new()
                .name("d2-mux".into())
                .spawn(move || mux_loop(cfg, reactor, addrs, spawned, joined, live, stop))?
        };
        Ok(ManyCluster {
            reactor,
            addrs,
            spawned,
            joined,
            live,
            stop,
            mux: Some(mux),
        })
    }

    /// The shared listen port.
    pub fn port(&self) -> u16 {
        self.reactor.port()
    }

    /// Every hosted node's address, in spawn order (`addrs()[0]` is the
    /// bootstrap node — the canonical client entry point).
    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// How many nodes have been spawned so far.
    pub fn spawned(&self) -> usize {
        self.spawned.load(Ordering::Acquire)
    }

    /// How many nodes have joined the ring so far.
    pub fn joined(&self) -> usize {
        self.joined.load(Ordering::Acquire)
    }

    /// How many nodes are currently live (spawned and not stopped).
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Blocks until every configured node has joined (true) or the
    /// timeout expires (false).
    pub fn wait_joined(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.joined() < self.addrs.len() {
            if Instant::now() > deadline || self.finished() {
                return self.joined() >= self.addrs.len();
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        true
    }

    /// Whether the multiplexer has exited — every node stopped (e.g.
    /// via `d2-node stop --all`) or [`ManyCluster::shutdown`] ran.
    pub fn finished(&self) -> bool {
        self.mux.as_ref().is_none_or(|h| h.is_finished())
    }

    /// Blocks until the multiplexer exits or the timeout expires.
    pub fn wait_finished(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.finished() {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        true
    }

    /// Hard-stops the cluster: the multiplexer drops every node and the
    /// reactor closes its sockets. For a graceful drain, send every
    /// node a shutdown request first (`d2-node stop --all`).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.mux.take() {
            let _ = h.join();
        }
        self.reactor.shutdown();
    }
}

impl Drop for ManyCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Virtual IP of node `i`: `127.0.0.1 + i`. The whole `127/8` block is
/// loopback on Linux, so every address is dialable with no interface
/// configuration.
pub fn node_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(Ipv4Addr::new(127, 0, 0, 1)) + i as u32)
}

/// Ring position of the `i`-th spawned node: bit-reversed index scaled
/// to the unit ring, so sequential spawns bisect the largest gaps and
/// join adopters spread uniformly.
fn ring_fraction(i: usize, n: usize) -> f64 {
    let bits = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1);
    let r = (i as u64).reverse_bits() >> (64 - bits);
    (r as f64 + 0.5) / (1u64 << bits) as f64
}

struct NodePlan {
    index: usize,
    addr: Addr,
    id: Key,
}

/// Join seed for node `index` when `joined_base` nodes (indices
/// `0..joined_base`) are already ring members: spread the join *lookup*
/// load across every joined node. Seeding through a not-yet-joined
/// neighbor would serialize each batch behind the join-retry timer.
fn seed_for(index: usize, joined_base: usize, addrs: &[Addr]) -> Addr {
    addrs[index % joined_base.max(1)]
}

/// The multiplexer: spawns nodes in staged batches, routes every
/// delivery to its node, and drives ticks off one due-time heap.
#[allow(clippy::too_many_arguments)]
fn mux_loop(
    cfg: ManyConfig,
    reactor: Arc<TcpReactor>,
    addrs: Vec<Addr>,
    spawned_ctr: Arc<AtomicUsize>,
    joined_ctr: Arc<AtomicUsize>,
    live_ctr: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
) {
    let clock = SystemClock::default();
    let tick_us = cfg.tick.as_micros() as u64;
    let n = addrs.len();
    let (tx, rx) = mpsc::channel::<Delivery>();
    let mut runtimes: HashMap<Addr, NodeRuntime<TcpEndpoint>> = HashMap::new();
    let mut timers: BinaryHeap<Reverse<(u64, Addr)>> = BinaryHeap::new();
    let mut to_spawn: VecDeque<NodePlan> = (0..n)
        .map(|i| NodePlan {
            index: i,
            addr: addrs[i],
            id: Key::from_fraction(ring_fraction(i, n)),
        })
        .collect();
    // Nodes not yet observed joined; bounded by the join batch size.
    let mut unjoined: Vec<Addr> = Vec::new();

    let spawn = |plan: NodePlan,
                 seed: Addr,
                 runtimes: &mut HashMap<Addr, NodeRuntime<TcpEndpoint>>,
                 timers: &mut BinaryHeap<Reverse<(u64, Addr)>>,
                 unjoined: &mut Vec<Addr>|
     -> io::Result<()> {
        let ep = reactor.open_with_queue(node_ip(plan.index), tx.clone())?;
        let mut rt = if plan.index == 0 {
            NodeRuntime::bootstrap(plan.id, cfg.node, ep)
        } else {
            NodeRuntime::join(plan.id, cfg.node, ep, seed)
        };
        rt.set_replication(cfg.replicas);
        if let Some(policy) = cfg.redundancy {
            rt.set_redundancy(policy, cfg.repair_threshold, cfg.repair_budget_bps);
        }
        // Stagger this node's tick phase across the interval.
        let due = clock.now_us() + (plan.index as u64 * tick_us) / n as u64;
        timers.push(Reverse((due, plan.addr)));
        if plan.index > 0 {
            unjoined.push(plan.addr);
        }
        runtimes.insert(plan.addr, rt);
        spawned_ctr.fetch_add(1, Ordering::Release);
        Ok(())
    };

    while !stop.load(Ordering::Acquire) {
        let now = clock.now_us();

        // Fire due ticks.
        while let Some(&Reverse((due, addr))) = timers.peek() {
            if due > now {
                break;
            }
            timers.pop();
            if let Some(rt) = runtimes.get_mut(&addr) {
                rt.on_tick();
                timers.push(Reverse((now + tick_us, addr)));
            }
        }

        // Staged joins: once the current batch is fully joined, release
        // the next one.
        if !to_spawn.is_empty() || !unjoined.is_empty() {
            unjoined.retain(|a| runtimes.get(a).is_some_and(|rt| !rt.protocol().is_joined()));
            if unjoined.is_empty() {
                // Every node spawned so far has joined; they are all
                // valid seeds for the batch being released.
                let joined_base = n - to_spawn.len();
                for _ in 0..cfg.join_batch.max(1) {
                    let Some(plan) = to_spawn.pop_front() else {
                        break;
                    };
                    let seed = seed_for(plan.index, joined_base, &addrs);
                    if spawn(plan, seed, &mut runtimes, &mut timers, &mut unjoined).is_err() {
                        // Endpoint registration failed (reactor shut
                        // down); give up on spawning more.
                        to_spawn.clear();
                        break;
                    }
                }
            }
        }
        live_ctr.store(runtimes.len(), Ordering::Release);
        joined_ctr.store(
            runtimes.len().saturating_sub(unjoined.len()),
            Ordering::Release,
        );

        if runtimes.is_empty() && to_spawn.is_empty() {
            break; // every node stopped: the cluster is done
        }

        // Deliver traffic until the next tick is due (bounded wait so
        // stop/tick checks stay responsive).
        let next_due = timers.peek().map_or(now + tick_us, |&Reverse((d, _))| d);
        let wait = Duration::from_micros(next_due.saturating_sub(now).clamp(100, 5_000));
        match rx.recv_timeout(wait) {
            Ok(d) => {
                deliver(d, &mut runtimes, &mut unjoined, &live_ctr);
                // Drain a bounded burst before re-checking timers.
                for _ in 0..512 {
                    match rx.try_recv() {
                        Ok(d) => deliver(d, &mut runtimes, &mut unjoined, &live_ctr),
                        Err(_) => break,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // Hard stop (or natural drain): unregister every endpoint so
    // stragglers fail fast.
    for (_, rt) in runtimes.drain() {
        rt.transport().shutdown();
    }
    live_ctr.store(0, Ordering::Release);
}

fn deliver(
    (dst, msg, trace): Delivery,
    runtimes: &mut HashMap<Addr, NodeRuntime<TcpEndpoint>>,
    unjoined: &mut Vec<Addr>,
    live_ctr: &Arc<AtomicUsize>,
) {
    let Some(rt) = runtimes.get_mut(&dst) else {
        return; // stopped node: drop, like any dead peer's mail
    };
    if !rt.on_message(msg, trace) {
        // Graceful per-node stop (Request::Shutdown, already acked).
        if let Some(rt) = runtimes.remove(&dst) {
            rt.transport().shutdown();
        }
        unjoined.retain(|&a| a != dst);
        live_ctr.store(runtimes.len(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ips_are_distinct_loopback() {
        assert_eq!(node_ip(0), Ipv4Addr::new(127, 0, 0, 1));
        assert_eq!(node_ip(1), Ipv4Addr::new(127, 0, 0, 2));
        assert_eq!(node_ip(255), Ipv4Addr::new(127, 0, 1, 0));
        assert_eq!(node_ip(999), Ipv4Addr::new(127, 0, 3, 232));
    }

    #[test]
    fn ring_fractions_are_distinct_and_spread() {
        for n in [2usize, 7, 64, 100, 256, 1000] {
            let mut fs: Vec<f64> = (0..n).map(|i| ring_fraction(i, n)).collect();
            fs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in fs.windows(2) {
                assert!(w[0] < w[1], "positions must be distinct (n={n})");
            }
            assert!(fs[0] >= 0.0 && *fs.last().unwrap() < 1.0);
            // Early spawns bisect: the first 4 positions of any large n
            // land in 4 different quarters of the ring.
            if n >= 8 {
                let quarters: std::collections::HashSet<u64> =
                    (0..4).map(|i| (ring_fraction(i, n) * 4.0) as u64).collect();
                assert_eq!(quarters.len(), 4, "first four spawns spread (n={n})");
            }
        }
    }
}
