//! Client-side cluster operations shared by [`crate::Deployment`], the
//! `d2-node` command-line client, and integration tests.
//!
//! A [`ClusterOps`] wraps a [`WireClient`] plus a rotating list of entry
//! nodes. Lookups round-robin across the entries — every live node is an
//! equally good first hop, so no single node is a client-side point of
//! entry (the join *seed* is the only address with a fixed role).

use d2_obs::{Registry, SpanRecord, TraceCtx};
use d2_ring::messages::{Addr, PeerInfo};
use d2_types::{D2Error, Key, Result};
use d2_wire::client::{ClientError, PendingReply, WireClient};
use d2_wire::codec::{Request, Response, WireStatus};
use d2_wire::transport::Transport;
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A snapshot of one node's view.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The node's identity.
    pub me: PeerInfo,
    /// Its predecessor, if known.
    pub predecessor: Option<PeerInfo>,
    /// Its successor list.
    pub successors: Vec<PeerInfo>,
    /// Blocks stored locally.
    pub blocks: usize,
}

impl From<WireStatus> for NodeStatus {
    fn from(w: WireStatus) -> Self {
        NodeStatus {
            me: w.me,
            predecessor: w.predecessor,
            successors: w.successors,
            blocks: w.blocks as usize,
        }
    }
}

/// One node's remotely scraped telemetry: its metric registry plus the
/// contents of its flight recorder.
#[derive(Clone, Debug)]
pub struct NodeScrape {
    /// The scraped node.
    pub addr: Addr,
    /// Its metric registry (`node.*` counters and histograms, plus
    /// `net.*` when the node carries its own transport-metrics handle).
    pub registry: Registry,
    /// Its recent + notable spans.
    pub spans: Vec<SpanRecord>,
}

/// A whole-cluster scrape: every reachable node's telemetry plus the
/// merged cluster view (counters summed, gauges maxed, histograms
/// bucket-merged — so cluster-wide p50/p90/p99 come from real
/// distributions, not averages of averages).
#[derive(Clone, Debug)]
pub struct ClusterScrape {
    /// Per-node scrapes, in the order the nodes were asked.
    pub nodes: Vec<NodeScrape>,
    /// All per-node registries merged into one.
    pub merged: Registry,
}

impl ClusterScrape {
    /// Every scraped span across the cluster, deduplicated by
    /// `(trace, span)` and sorted by `(start, trace, span, node)`.
    pub fn all_spans(&self) -> Vec<SpanRecord> {
        let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut out: Vec<SpanRecord> = Vec::new();
        for node in &self.nodes {
            for s in &node.spans {
                if seen.insert((s.trace_id, s.span_id)) {
                    out.push(s.clone());
                }
            }
        }
        out.sort_by(|a, b| {
            (a.start_us, a.trace_id, a.span_id, a.node)
                .cmp(&(b.start_us, b.trace_id, b.span_id, b.node))
        });
        out
    }
}

/// Tuning knobs for the windowed batch API
/// ([`ClusterOps::put_many`] / [`ClusterOps::get_many`]).
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Maximum requests in flight at once. Each batch op is a two-stage
    /// pipeline (lookup, then put/get), and the window bounds the total
    /// number of ops with *either* stage outstanding — the client-side
    /// backpressure knob.
    pub window: usize,
    /// Per-request timeout, applied separately to the lookup and the
    /// data stage. A slow op times out alone; it never head-of-line
    /// blocks the rest of the window.
    pub op_timeout: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window: 32,
            op_timeout: Duration::from_secs(5),
        }
    }
}

/// The outcome of one operation in a batch: its position and key, the
/// per-op result, and the op's latency (lookup + data stage, as seen by
/// the batch driver).
#[derive(Debug)]
pub struct BatchOutcome<R> {
    /// Index into the submitted batch.
    pub index: usize,
    /// The key operated on.
    pub key: Key,
    /// `Ok(replicas written)` for puts, `Ok(block)` for gets.
    pub result: Result<R>,
    /// Wall time from submission of the lookup to resolution.
    pub latency: Duration,
}

/// One in-flight batch op: which stage's reply we are waiting on.
enum Stage {
    Lookup(PendingReply),
    Data(PendingReply),
}

struct Slot {
    index: usize,
    key: Key,
    started: Instant,
    /// Lookup submissions so far — the batch driver retries dropped
    /// lookups through rotated entries exactly like the serial
    /// [`ClusterOps::lookup`] does.
    attempts: u32,
    stage: Stage,
}

/// Client operations against a running cluster, entered through a
/// rotating set of live nodes.
pub struct ClusterOps<T: Transport> {
    client: WireClient<T>,
    entries: RwLock<Vec<Addr>>,
    next_entry: AtomicUsize,
    next_trace: AtomicU64,
}

impl<T: Transport> ClusterOps<T> {
    /// Wraps `client`; lookups enter the ring through `entries` in
    /// round-robin order.
    pub fn new(client: WireClient<T>, entries: Vec<Addr>) -> Self {
        // Seed traced ops from the wall clock so two client processes
        // against the same cluster draw disjoint trace ids.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1);
        ClusterOps {
            client,
            entries: RwLock::new(entries),
            next_entry: AtomicUsize::new(0),
            next_trace: AtomicU64::new(nanos),
        }
    }

    /// A fresh nonzero trace id for one client operation (splitmix of a
    /// wall-clock-seeded counter).
    pub fn fresh_trace_id(&self) -> u64 {
        let mut z = self
            .next_trace
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)).max(1)
    }

    /// The underlying request/response client.
    pub fn client(&self) -> &WireClient<T> {
        &self.client
    }

    /// Replaces the entry-node set (e.g. after churn).
    pub fn set_entries(&self, entries: Vec<Addr>) {
        *self.entries.write() = entries;
    }

    /// The current entry-node set.
    pub fn entries(&self) -> Vec<Addr> {
        self.entries.read().clone()
    }

    fn next_entry(&self) -> Option<Addr> {
        let entries = self.entries.read();
        if entries.is_empty() {
            return None;
        }
        let i = self.next_entry.fetch_add(1, Ordering::Relaxed);
        Some(entries[i % entries.len()])
    }

    /// Locates the owner of `key` via a real recursive lookup, entering
    /// through the next entry node. Retries with rotated entries: a
    /// lookup routed through a node that died mid-flight is dropped (the
    /// sender forgets the dead hop), and the retry takes the repaired
    /// route.
    pub fn lookup(&self, key: Key) -> Result<PeerInfo> {
        self.lookup_traced(key, TraceCtx::NONE)
    }

    /// [`ClusterOps::lookup`] with an explicit trace context: every node
    /// the lookup touches records a span under `trace`'s id.
    pub fn lookup_traced(&self, key: Key, trace: TraceCtx) -> Result<PeerInfo> {
        for attempt in 0..4u32 {
            let Some(entry) = self.next_entry() else {
                break;
            };
            let timeout = Duration::from_millis(500 * (attempt as u64 + 1));
            match self
                .client
                .call_traced(entry, Request::Lookup { key }, timeout, trace)
            {
                Ok(Response::Owner { owner, .. }) => return Ok(owner),
                Ok(_) | Err(ClientError::Timeout) | Err(ClientError::Unreachable(_)) => {}
                Err(ClientError::Closed) => break,
            }
        }
        Err(D2Error::Unavailable(key))
    }

    /// Stores a block on the owner and `replicas - 1` further
    /// successors, returning the number of copies written. The ack comes
    /// from the *end* of the replica chain, so when this returns every
    /// reachable replica holds the block — no settling sleep needed.
    pub fn put(&self, key: Key, data: Vec<u8>, replicas: usize) -> Result<usize> {
        self.put_traced(key, data, replicas)
            .map(|(written, _)| written)
    }

    /// [`ClusterOps::put`] under a fresh trace: the lookup and the
    /// replica chain share one trace id, returned alongside the replica
    /// count so the caller can ask `collect_trace` (or `d2-node trace`)
    /// for the operation's causal span tree.
    pub fn put_traced(&self, key: Key, data: Vec<u8>, replicas: usize) -> Result<(usize, u64)> {
        let trace_id = self.fresh_trace_id();
        let ctx = TraceCtx::root(trace_id);
        let owner = self.lookup_traced(key, ctx)?;
        let req = Request::Put {
            key,
            fanout: replicas.saturating_sub(1) as u32,
            stored: 0,
            data,
        };
        match self
            .client
            .call_traced(owner.addr, req, Duration::from_secs(10), ctx)
        {
            Ok(Response::PutAck { replicas }) => Ok((replicas as usize, trace_id)),
            _ => Err(D2Error::Unavailable(key)),
        }
    }

    /// Fetches a block from the owner, falling back along its successor
    /// chain (up to `replicas` probes).
    pub fn get(&self, key: Key, replicas: usize) -> Result<Vec<u8>> {
        let owner = self.lookup(key)?;
        let mut addr = owner.addr;
        for _ in 0..replicas.max(1) {
            match self
                .client
                .call(addr, Request::Get { key }, Duration::from_secs(10))
            {
                Ok(Response::Block { data: Some(data) }) => return Ok(data),
                Ok(Response::Block { data: None }) => {
                    // Ask this node's successor next.
                    match self.status_of(addr) {
                        Some(st) => match st.successors.first() {
                            Some(next) => addr = next.addr,
                            None => break,
                        },
                        None => break,
                    }
                }
                _ => break,
            }
        }
        Err(D2Error::NotFound(key))
    }

    /// Stores a batch of blocks with up to [`PipelineConfig::window`]
    /// operations in flight at once, each a lookup → put pipeline over
    /// the pipelined client ([`WireClient::submit`]). Returns one
    /// [`BatchOutcome`] per item, in submission order; failed ops fail
    /// individually without aborting the batch.
    pub fn put_many(
        &self,
        items: Vec<(Key, Vec<u8>)>,
        replicas: usize,
        cfg: PipelineConfig,
    ) -> Vec<BatchOutcome<usize>> {
        let keys: Vec<Key> = items.iter().map(|(k, _)| *k).collect();
        let mut datas: Vec<Option<Vec<u8>>> = items.into_iter().map(|(_, d)| Some(d)).collect();
        self.pipelined(
            &keys,
            cfg,
            |i| Request::Put {
                key: keys[i],
                fanout: replicas.saturating_sub(1) as u32,
                stored: 0,
                data: datas[i].take().expect("each data stage starts once"),
            },
            |key, resp| match resp {
                Response::PutAck { replicas } => Ok(replicas as usize),
                _ => Err(D2Error::Unavailable(key)),
            },
        )
    }

    /// Fetches a batch of blocks with up to [`PipelineConfig::window`]
    /// operations in flight at once. Unlike [`ClusterOps::get`], the
    /// batch path probes only the owner (no successor fallback): it is
    /// built for sustained-load measurement, where a miss should read as
    /// a miss, not hide behind extra round trips.
    pub fn get_many(&self, keys: &[Key], cfg: PipelineConfig) -> Vec<BatchOutcome<Vec<u8>>> {
        self.pipelined(
            keys,
            cfg,
            |i| Request::Get { key: keys[i] },
            |key, resp| match resp {
                Response::Block { data: Some(data) } => Ok(data),
                Response::Block { data: None } => Err(D2Error::NotFound(key)),
                _ => Err(D2Error::Unavailable(key)),
            },
        )
    }

    /// Submits one lookup through the next entry node, or `None` when no
    /// entry accepts it.
    fn submit_lookup(&self, key: Key, cfg: PipelineConfig) -> Option<PendingReply> {
        let entry = self.next_entry()?;
        self.client
            .submit(entry, Request::Lookup { key }, cfg.op_timeout)
            .ok()
    }

    /// The windowed two-stage (lookup → data) pipeline driver behind
    /// [`ClusterOps::put_many`] and [`ClusterOps::get_many`]: keeps up
    /// to `cfg.window` ops in flight, sweeps their [`PendingReply`]
    /// handles without blocking on any single one, and advances or
    /// resolves each op as its reply lands.
    fn pipelined<R>(
        &self,
        keys: &[Key],
        cfg: PipelineConfig,
        mut make_req: impl FnMut(usize) -> Request,
        map_resp: impl Fn(Key, Response) -> Result<R>,
    ) -> Vec<BatchOutcome<R>> {
        let n = keys.len();
        let window = cfg.window.max(1);
        let mut out: Vec<Option<BatchOutcome<R>>> = (0..n).map(|_| None).collect();
        let mut slots: Vec<Slot> = Vec::with_capacity(window);
        let mut next = 0usize;
        let fail = |index: usize, key: Key, started: Instant| BatchOutcome {
            index,
            key,
            result: Err(D2Error::Unavailable(key)),
            latency: started.elapsed(),
        };
        while next < n || !slots.is_empty() {
            // Fill the window with fresh lookups.
            while next < n && slots.len() < window {
                let key = keys[next];
                let started = Instant::now();
                match self.submit_lookup(key, cfg) {
                    Some(p) => slots.push(Slot {
                        index: next,
                        key,
                        started,
                        attempts: 1,
                        stage: Stage::Lookup(p),
                    }),
                    None => out[next] = Some(fail(next, key, started)),
                }
                next += 1;
            }
            // Sweep every in-flight op once; each resolves or advances
            // independently of the others.
            let mut progressed = false;
            let mut i = 0;
            while i < slots.len() {
                let polled = match &mut slots[i].stage {
                    Stage::Lookup(p) => p.poll().map(|r| (false, r)),
                    Stage::Data(p) => p.poll().map(|r| (true, r)),
                };
                let Some((was_data, res)) = polled else {
                    i += 1;
                    continue;
                };
                progressed = true;
                let slot = slots.swap_remove(i);
                match (was_data, res) {
                    (false, Ok(Response::Owner { owner, .. })) => {
                        match self
                            .client
                            .submit(owner.addr, make_req(slot.index), cfg.op_timeout)
                        {
                            Ok(p) => slots.push(Slot {
                                stage: Stage::Data(p),
                                ..slot
                            }),
                            Err(_) => {
                                out[slot.index] = Some(fail(slot.index, slot.key, slot.started))
                            }
                        }
                    }
                    // A dropped or failed lookup (a node died mid-route,
                    // or the ring is still stabilizing): retry through
                    // the next entry, like the serial lookup path.
                    (false, _) if slot.attempts < 4 => match self.submit_lookup(slot.key, cfg) {
                        Some(p) => slots.push(Slot {
                            attempts: slot.attempts + 1,
                            stage: Stage::Lookup(p),
                            ..slot
                        }),
                        None => out[slot.index] = Some(fail(slot.index, slot.key, slot.started)),
                    },
                    (true, Ok(resp)) => {
                        out[slot.index] = Some(BatchOutcome {
                            index: slot.index,
                            key: slot.key,
                            result: map_resp(slot.key, resp),
                            latency: slot.started.elapsed(),
                        });
                    }
                    _ => out[slot.index] = Some(fail(slot.index, slot.key, slot.started)),
                }
            }
            if !progressed && !slots.is_empty() {
                // Nothing landed this sweep; yield briefly instead of
                // spinning the pending locks. Kept well under a typical
                // localhost RTT so the sweep granularity does not show
                // up in measured latencies.
                std::thread::sleep(Duration::from_micros(20));
            }
        }
        out.into_iter()
            .map(|o| o.expect("every op resolves exactly once"))
            .collect()
    }

    /// One node's ring view, or `None` if it cannot be reached.
    pub fn status_of(&self, addr: Addr) -> Option<NodeStatus> {
        match self
            .client
            .call(addr, Request::Status, Duration::from_secs(10))
        {
            Ok(Response::Status(w)) => Some(w.into()),
            _ => None,
        }
    }

    /// One node's metric registry and flight-recorder spans, or `None`
    /// if the node cannot be reached (or sends back inconsistent
    /// histogram parts).
    pub fn metrics_of(&self, addr: Addr) -> Option<NodeScrape> {
        match self
            .client
            .call(addr, Request::MetricsDump, Duration::from_secs(10))
        {
            Ok(Response::Metrics(m)) => Some(NodeScrape {
                addr,
                registry: m.to_registry().ok()?,
                spans: m.spans,
            }),
            _ => None,
        }
    }

    /// Walks the ring from the entry set, following predecessor and
    /// successor pointers until no new address appears, and returns
    /// every discovered node in address order. One reachable entry is
    /// enough to enumerate the whole cluster.
    pub fn discover(&self) -> Vec<Addr> {
        let mut known: BTreeSet<Addr> = self.entries.read().iter().copied().collect();
        let mut todo: Vec<Addr> = known.iter().copied().collect();
        while let Some(addr) = todo.pop() {
            let Some(st) = self.status_of(addr) else {
                continue;
            };
            let peers = st
                .predecessor
                .iter()
                .chain(st.successors.iter())
                .map(|p| p.addr)
                .chain(std::iter::once(st.me.addr));
            for p in peers {
                if known.insert(p) {
                    todo.push(p);
                }
            }
        }
        known.into_iter().collect()
    }

    /// Scrapes every node in `addrs` and merges the registries into the
    /// cluster view. Unreachable nodes are skipped (a scrape is a
    /// telemetry read, not a health check).
    pub fn scrape(&self, addrs: &[Addr]) -> ClusterScrape {
        let nodes: Vec<NodeScrape> = addrs.iter().filter_map(|&a| self.metrics_of(a)).collect();
        let mut merged = Registry::new();
        for n in &nodes {
            merged.merge(&n.registry);
        }
        ClusterScrape { nodes, merged }
    }

    /// Discovers the ring from the entry set and scrapes every node
    /// found — the one-call backing of `d2-node top`.
    pub fn scrape_all(&self) -> ClusterScrape {
        self.scrape(&self.discover())
    }

    /// Collects every span of `trace_id` held anywhere in the cluster,
    /// deduplicated and in deterministic order — feed the result to
    /// [`d2_obs::render_span_tree`] to print the operation's causal
    /// story.
    pub fn collect_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans = self.scrape_all().all_spans();
        spans.retain(|s| s.trace_id == trace_id);
        spans
    }

    /// Asks the node at `addr` to stop, waiting briefly for its ack.
    /// Returns whether the node acknowledged.
    pub fn stop(&self, addr: Addr) -> bool {
        matches!(
            self.client
                .call(addr, Request::Shutdown, Duration::from_secs(5)),
            Ok(Response::ShutdownAck)
        )
    }
}
