//! Client-side cluster operations shared by [`crate::Deployment`], the
//! `d2-node` command-line client, and integration tests.
//!
//! A [`ClusterOps`] wraps a [`WireClient`] plus a rotating list of entry
//! nodes. Lookups round-robin across the entries — every live node is an
//! equally good first hop, so no single node is a client-side point of
//! entry (the join *seed* is the only address with a fixed role).

use d2_ring::messages::{Addr, PeerInfo};
use d2_types::{D2Error, Key, Result};
use d2_wire::client::{ClientError, WireClient};
use d2_wire::codec::{Request, Response, WireStatus};
use d2_wire::transport::Transport;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A snapshot of one node's view.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The node's identity.
    pub me: PeerInfo,
    /// Its predecessor, if known.
    pub predecessor: Option<PeerInfo>,
    /// Its successor list.
    pub successors: Vec<PeerInfo>,
    /// Blocks stored locally.
    pub blocks: usize,
}

impl From<WireStatus> for NodeStatus {
    fn from(w: WireStatus) -> Self {
        NodeStatus {
            me: w.me,
            predecessor: w.predecessor,
            successors: w.successors,
            blocks: w.blocks as usize,
        }
    }
}

/// Client operations against a running cluster, entered through a
/// rotating set of live nodes.
pub struct ClusterOps<T: Transport> {
    client: WireClient<T>,
    entries: RwLock<Vec<Addr>>,
    next_entry: AtomicUsize,
}

impl<T: Transport> ClusterOps<T> {
    /// Wraps `client`; lookups enter the ring through `entries` in
    /// round-robin order.
    pub fn new(client: WireClient<T>, entries: Vec<Addr>) -> Self {
        ClusterOps {
            client,
            entries: RwLock::new(entries),
            next_entry: AtomicUsize::new(0),
        }
    }

    /// The underlying request/response client.
    pub fn client(&self) -> &WireClient<T> {
        &self.client
    }

    /// Replaces the entry-node set (e.g. after churn).
    pub fn set_entries(&self, entries: Vec<Addr>) {
        *self.entries.write() = entries;
    }

    /// The current entry-node set.
    pub fn entries(&self) -> Vec<Addr> {
        self.entries.read().clone()
    }

    fn next_entry(&self) -> Option<Addr> {
        let entries = self.entries.read();
        if entries.is_empty() {
            return None;
        }
        let i = self.next_entry.fetch_add(1, Ordering::Relaxed);
        Some(entries[i % entries.len()])
    }

    /// Locates the owner of `key` via a real recursive lookup, entering
    /// through the next entry node. Retries with rotated entries: a
    /// lookup routed through a node that died mid-flight is dropped (the
    /// sender forgets the dead hop), and the retry takes the repaired
    /// route.
    pub fn lookup(&self, key: Key) -> Result<PeerInfo> {
        for attempt in 0..4u32 {
            let Some(entry) = self.next_entry() else {
                break;
            };
            let timeout = Duration::from_millis(500 * (attempt as u64 + 1));
            match self.client.call(entry, Request::Lookup { key }, timeout) {
                Ok(Response::Owner { owner, .. }) => return Ok(owner),
                Ok(_) | Err(ClientError::Timeout) | Err(ClientError::Unreachable(_)) => {}
                Err(ClientError::Closed) => break,
            }
        }
        Err(D2Error::Unavailable(key))
    }

    /// Stores a block on the owner and `replicas - 1` further
    /// successors, returning the number of copies written. The ack comes
    /// from the *end* of the replica chain, so when this returns every
    /// reachable replica holds the block — no settling sleep needed.
    pub fn put(&self, key: Key, data: Vec<u8>, replicas: usize) -> Result<usize> {
        let owner = self.lookup(key)?;
        let req = Request::Put {
            key,
            fanout: replicas.saturating_sub(1) as u32,
            stored: 0,
            data,
        };
        match self.client.call(owner.addr, req, Duration::from_secs(10)) {
            Ok(Response::PutAck { replicas }) => Ok(replicas as usize),
            _ => Err(D2Error::Unavailable(key)),
        }
    }

    /// Fetches a block from the owner, falling back along its successor
    /// chain (up to `replicas` probes).
    pub fn get(&self, key: Key, replicas: usize) -> Result<Vec<u8>> {
        let owner = self.lookup(key)?;
        let mut addr = owner.addr;
        for _ in 0..replicas.max(1) {
            match self
                .client
                .call(addr, Request::Get { key }, Duration::from_secs(10))
            {
                Ok(Response::Block { data: Some(data) }) => return Ok(data),
                Ok(Response::Block { data: None }) => {
                    // Ask this node's successor next.
                    match self.status_of(addr) {
                        Some(st) => match st.successors.first() {
                            Some(next) => addr = next.addr,
                            None => break,
                        },
                        None => break,
                    }
                }
                _ => break,
            }
        }
        Err(D2Error::NotFound(key))
    }

    /// One node's ring view, or `None` if it cannot be reached.
    pub fn status_of(&self, addr: Addr) -> Option<NodeStatus> {
        match self
            .client
            .call(addr, Request::Status, Duration::from_secs(10))
        {
            Ok(Response::Status(w)) => Some(w.into()),
            _ => None,
        }
    }

    /// Asks the node at `addr` to stop, waiting briefly for its ack.
    /// Returns whether the node acknowledged.
    pub fn stop(&self, addr: Addr) -> bool {
        matches!(
            self.client
                .call(addr, Request::Shutdown, Duration::from_secs(5)),
            Ok(Response::ShutdownAck)
        )
    }
}
