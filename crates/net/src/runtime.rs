//! The per-node event loop, generic over the transport and the clock.
//!
//! A [`NodeRuntime`] is one live D2 node: the pure protocol state
//! machine ([`ProtocolNode`]), a local block store, and a
//! [`Transport`] endpoint. [`NodeRuntime::run`] drives it until a
//! [`Request::Shutdown`] arrives or the transport closes — the *same*
//! loop body whether the transport is an in-process channel or a TCP
//! socket, which is the whole point of the [`d2_wire`] seam.
//!
//! The loop body is exposed as two single-step entry points so the
//! deterministic simulation harness (`d2-dst`) can drive the *identical*
//! runtime one event at a time with no threads and no sleeps:
//!
//! - [`NodeRuntime::on_message`] — handle exactly one incoming message;
//! - [`NodeRuntime::on_tick`] — run exactly one maintenance tick
//!   (stabilization, join retry, replica repair).
//!
//! All timeouts read time through the injected [`Clock`], so under a
//! [`crate::clock::SimClock`] every timeout decision is a pure function
//! of the schedule.

use crate::clock::{Clock, SystemClock};
use d2_ec::{Codec as EcCodec, Fragment, RedundancyPolicy};
use d2_obs::flight::{FLIGHT_CAPACITY, SLOW_THRESHOLD_US};
use d2_obs::{FlightRecorder, Registry, SpanRecord, TraceCtx};
use d2_ring::messages::{Addr, RingMsg};
use d2_ring::node::{NodeConfig, ProtocolNode};
use d2_types::Key;
use d2_wire::codec::{Request, Response, WireMetrics, WireMsg, WireStatus};
use d2_wire::metrics::NetMetrics;
use d2_wire::transport::{RecvError, Transport};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// How long the event loop waits for traffic before running a
/// stabilization tick.
pub const TICK: Duration = Duration::from_millis(20);

/// How long an unjoined node waits before re-sending its join. Longer
/// than the TCP circuit breaker's backoff cap, so every retry is a real
/// connection attempt rather than a fail-fast inside the backoff window.
const JOIN_RETRY_US: u64 = 1_250_000;

/// Bounded local re-routing budget: when a hop turns out dead we forget
/// it and, for routed requests, immediately re-handle the message so it
/// takes the next-best route instead of being dropped.
const REROUTE_BUDGET: u32 = 64;

/// Ticks between replica-repair rounds (≈ 1.28 s of real time at the
/// 20 ms tick). Each round re-pushes owned blocks down the successor
/// chain and re-homes blocks this node holds but no longer owns, so the
/// replica count converges back to the configured factor after churn.
const REPAIR_EVERY_TICKS: u64 = 64;

/// How long an in-flight erasure-coded operation (fragment distribution,
/// gather, presence probe, regeneration) waits for member replies before
/// it completes with whatever arrived. A crashed member simply counts as
/// a missing fragment; no op hangs on it.
const EC_OP_TIMEOUT_US: u64 = 400_000;

/// Internal request-id space for owner-originated fragment traffic.
/// Client req ids are allocated client-side and only need uniqueness per
/// connection, so the top-bit space never collides with them in
/// practice; the map lookup (not the id itself) is what routes replies.
const EC_REQ_BASE: u64 = 1 << 63;

/// Token-bucket burst cap for the repair budget, in seconds of accrual:
/// a node idle for an hour may spend that hour's budget at once, but no
/// more — the same cap the simulation-level repair budget uses.
const EC_BURST_SECS: u64 = 3600;

/// One locally held erasure-coded fragment plus the original block
/// length needed to trim decode padding.
pub struct StoredFragment {
    /// The pre-encoding block length.
    pub block_len: u32,
    /// The fragment itself (index, generation, payload, checksum).
    pub frag: Fragment,
}

/// Erasure-coding configuration and repair-budget state, present only
/// when [`NodeRuntime::set_redundancy`] selected an
/// [`RedundancyPolicy::ErasureCode`] policy.
struct EcState {
    codec: EcCodec,
    /// Lazy-repair threshold `m`: a key regenerates only when its
    /// surviving fragment count drops below this (k ≤ m < n).
    repair_threshold: usize,
    /// Repair budget in bytes/second; `0` means unlimited.
    repair_budget_bps: u64,
    /// Accrued budget tokens (bytes), refilled per repair round.
    repair_tokens: u64,
    last_refill_us: u64,
}

/// Why a fragment gather was started: to answer a client get, or to
/// regenerate missing fragments under the repair budget.
enum GatherPurpose {
    /// Decode and answer this client.
    Client {
        /// The requesting client's transport address.
        client: Addr,
        /// Its request id.
        req_id: u64,
    },
    /// Decode, re-encode, and re-push missing fragments.
    Repair,
}

/// One in-flight erasure-coded operation. Every per-member message of
/// the op shares one internal request id, so replies route back to the
/// op without carrying a sender identity: a [`Response::Fragment`]'s
/// `index` already names the group position that held it.
enum EcOp {
    /// Owner-side fragment distribution for one client put.
    Put {
        client: Addr,
        req_id: u64,
        /// Member acks still outstanding.
        pending: u32,
        /// Fragments confirmed stored (including the owner's own).
        stored: u32,
        started_us: u64,
    },
    /// Owner-side gather of any `k` fragments (client get or repair).
    Gather {
        key: Key,
        purpose: GatherPurpose,
        /// Largest original block length reported by any fragment.
        block_len: u32,
        /// Verified fragments at the highest generation seen so far,
        /// deduplicated by index.
        frags: Vec<Fragment>,
        pending: u32,
        started_us: u64,
    },
    /// Lazy-repair presence probe across the fragment group.
    Probe {
        key: Key,
        /// Estimated regeneration cost basis (the block length).
        block_len: u32,
        /// Which group positions reported a live fragment.
        present: Vec<bool>,
        pending: u32,
        started_us: u64,
    },
}

/// A client lookup in flight: who asked, plus the trace context and
/// start time so the completion can be recorded as a causally-linked
/// span with a real duration.
struct PendingLookup {
    client: Addr,
    req_id: u64,
    ctx: TraceCtx,
    start_us: u64,
}

/// One live node: protocol state machine + block store + transport.
pub struct NodeRuntime<T: Transport, C: Clock = SystemClock> {
    node: ProtocolNode,
    store: HashMap<Key, Vec<u8>>,
    /// Locally held erasure-coded fragments, one per key.
    fragments: HashMap<Key, StoredFragment>,
    /// Erasure-coding mode; `None` runs the classic replica chains.
    ec: Option<EcState>,
    /// In-flight erasure-coded ops by internal request id.
    ec_ops: HashMap<u64, EcOp>,
    /// Keys awaiting budgeted regeneration, with the estimated repair
    /// cost in bytes. Ordered, so the drain is deterministic.
    ec_repair_queue: BTreeMap<Key, u64>,
    next_ec_req: u64,
    transport: T,
    clock: C,
    /// Ring lookup id → in-flight client lookup awaiting the owner.
    pending_lookups: HashMap<u64, PendingLookup>,
    /// Ring lookup id → key of a repair re-home awaiting the owner.
    pending_repairs: HashMap<u64, Key>,
    /// Join seed, kept so an unjoined node can retry: the one-shot join
    /// message (or its ack) can be lost to a connect timeout during a
    /// cluster-wide boot storm, and nothing else would ever re-send it.
    seed: Option<Addr>,
    last_join_attempt_us: u64,
    /// Replica-maintenance target (`0` disables repair). Put chains are
    /// always driven by the client's requested fanout; this only governs
    /// the periodic background repair.
    replication: u32,
    ticks: u64,
    /// This node's own metrics: `node.*` counters and histograms,
    /// scraped remotely via [`Request::MetricsDump`].
    registry: Registry,
    /// Bounded ring of recent + notable (slow/failed) spans.
    recorder: FlightRecorder,
    /// Transport-level counters to fold into metric dumps, when this
    /// node has a dedicated [`NetMetrics`] (per-node in TCP
    /// deployments; shared in channel deployments, where it is omitted
    /// here to avoid double counting).
    net_metrics: Option<Arc<NetMetrics>>,
    /// Monotonic input to the deterministic span-id hash.
    span_seq: u64,
    /// Outgoing trace context while handling a traced message: the
    /// incoming context's child (same trace, this node's span as
    /// parent, one hop deeper). [`TraceCtx::NONE`] outside handling.
    cur_ctx: TraceCtx,
    /// Success flag of the message currently being handled; cleared by
    /// failed sends and missed gets so the span records `ok = false`.
    cur_ok: bool,
}

impl<T: Transport> NodeRuntime<T, SystemClock> {
    /// Creates the first node of a new ring at position `id`. The node's
    /// address is the transport's.
    pub fn bootstrap(id: Key, cfg: NodeConfig, transport: T) -> Self {
        Self::bootstrap_with_clock(id, cfg, transport, SystemClock::default())
    }

    /// Creates a node that joins an existing ring through `seed`,
    /// sending the initial join traffic immediately.
    pub fn join(id: Key, cfg: NodeConfig, transport: T, seed: Addr) -> Self {
        Self::join_with_clock(id, cfg, transport, seed, SystemClock::default())
    }
}

impl<T: Transport, C: Clock> NodeRuntime<T, C> {
    /// [`NodeRuntime::bootstrap`] with an explicit clock (used by the
    /// deterministic simulation harness to inject virtual time).
    pub fn bootstrap_with_clock(id: Key, cfg: NodeConfig, transport: T, clock: C) -> Self {
        let node = ProtocolNode::bootstrap(id, transport.local_addr(), cfg);
        let now = clock.now_us();
        NodeRuntime {
            node,
            store: HashMap::new(),
            fragments: HashMap::new(),
            ec: None,
            ec_ops: HashMap::new(),
            ec_repair_queue: BTreeMap::new(),
            next_ec_req: EC_REQ_BASE,
            transport,
            clock,
            pending_lookups: HashMap::new(),
            pending_repairs: HashMap::new(),
            seed: None,
            last_join_attempt_us: now,
            replication: 0,
            ticks: 0,
            registry: Registry::new(),
            recorder: FlightRecorder::new(FLIGHT_CAPACITY, SLOW_THRESHOLD_US),
            net_metrics: None,
            span_seq: 0,
            cur_ctx: TraceCtx::NONE,
            cur_ok: true,
        }
    }

    /// [`NodeRuntime::join`] with an explicit clock.
    pub fn join_with_clock(id: Key, cfg: NodeConfig, transport: T, seed: Addr, clock: C) -> Self {
        let (node, join_msgs) = ProtocolNode::join(id, transport.local_addr(), cfg, seed);
        let now = clock.now_us();
        let mut rt = NodeRuntime {
            node,
            store: HashMap::new(),
            fragments: HashMap::new(),
            ec: None,
            ec_ops: HashMap::new(),
            ec_repair_queue: BTreeMap::new(),
            next_ec_req: EC_REQ_BASE,
            transport,
            clock,
            pending_lookups: HashMap::new(),
            pending_repairs: HashMap::new(),
            seed: Some(seed),
            last_join_attempt_us: now,
            replication: 0,
            ticks: 0,
            registry: Registry::new(),
            recorder: FlightRecorder::new(FLIGHT_CAPACITY, SLOW_THRESHOLD_US),
            net_metrics: None,
            span_seq: 0,
            cur_ctx: TraceCtx::NONE,
            cur_ok: true,
        };
        // Joins get their own trace, so `d2-node trace` can replay how a
        // node entered the ring. The id is derived from the node's ring
        // position: deterministic, and unique per joiner with
        // overwhelming probability.
        let trace_id = join_trace_id(id);
        let span = rt.alloc_span();
        let start = rt.clock.now_us();
        rt.cur_ctx = TraceCtx {
            trace_id,
            span_id: span,
            hop: 1,
        };
        rt.send_all(join_msgs);
        rt.push_span(
            TraceCtx::root(trace_id),
            span,
            start,
            true,
            "join.start",
            format!("seed={seed}"),
        );
        rt.cur_ctx = TraceCtx::NONE;
        rt
    }

    /// Sets the replica-maintenance target: background repair keeps
    /// every owned block on the owner plus `replicas - 1` successors.
    /// `0` (the default) disables repair.
    pub fn set_replication(&mut self, replicas: u32) {
        self.replication = replicas;
    }

    /// Selects the redundancy policy. [`RedundancyPolicy::Replicate`]
    /// reduces to [`NodeRuntime::set_replication`]; an erasure policy
    /// switches puts to owner-side encoding into `n` fragments, gets to
    /// any-`k` gather-and-decode, and background repair to the lazy,
    /// budgeted fragment regenerator.
    ///
    /// `repair_threshold` is the lazy-repair trigger `m` (defaulting to
    /// the policy's midpoint, clamped to `k..n`): a key regenerates only
    /// once its surviving fragments drop below `m`.
    /// `repair_budget_bps` caps regeneration traffic in bytes/second per
    /// node (`0` = unlimited).
    pub fn set_redundancy(
        &mut self,
        policy: RedundancyPolicy,
        repair_threshold: Option<usize>,
        repair_budget_bps: u64,
    ) {
        match EcCodec::for_policy(policy) {
            None => {
                self.ec = None;
                if let RedundancyPolicy::Replicate { r } = policy {
                    self.replication = r as u32;
                }
            }
            Some(codec) => {
                let lo = policy.min_fragments();
                let hi = policy.group_size().saturating_sub(1).max(1);
                let m = match repair_threshold {
                    Some(m) => m.clamp(lo, hi),
                    None => policy.default_repair_threshold(),
                };
                self.ec = Some(EcState {
                    codec,
                    repair_threshold: m,
                    repair_budget_bps,
                    repair_tokens: 0,
                    last_refill_us: self.clock.now_us(),
                });
            }
        }
    }

    /// Attaches a transport-metrics handle whose counters are folded
    /// into this node's [`Request::MetricsDump`] responses. TCP
    /// deployments give each node its own handle; channel deployments
    /// share one hub-wide handle and skip this to avoid every node
    /// re-reporting the same totals.
    pub fn set_net_metrics(&mut self, metrics: Arc<NetMetrics>) {
        self.net_metrics = Some(metrics);
    }

    /// This node's own metric registry (scraped via
    /// [`Request::MetricsDump`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// This node's flight recorder, used by the simulation harness to
    /// collect spans after a run.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Deterministic nonzero span id: a hash of (address, sequence), so
    /// the same schedule replayed in the simulation harness allocates
    /// the same span ids.
    fn alloc_span(&mut self) -> u64 {
        self.span_seq += 1;
        let mut z = (self.transport.local_addr() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.span_seq);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)).max(1)
    }

    /// Records one span under `parent` (no-op when untraced): the span's
    /// hop and parent id come from the context, the duration from the
    /// clock.
    fn push_span(
        &mut self,
        parent: TraceCtx,
        span_id: u64,
        start_us: u64,
        ok: bool,
        op: &str,
        detail: String,
    ) {
        if !parent.is_traced() {
            return;
        }
        let now = self.clock.now_us();
        self.recorder.push(SpanRecord {
            trace_id: parent.trace_id,
            span_id,
            parent_span_id: parent.span_id,
            hop: parent.hop,
            node: self.transport.local_addr() as u64,
            start_us,
            dur_us: now.saturating_sub(start_us),
            ok,
            op: op.to_string(),
            detail,
        });
    }

    /// The node's transport address.
    pub fn local_addr(&self) -> Addr {
        self.transport.local_addr()
    }

    /// The node's transport endpoint, used by external drivers (the
    /// many-nodes multiplexer) to close it when the node stops.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Read-only view of the protocol state machine (ring pointers),
    /// used by the simulation harness's invariant checkers.
    pub fn protocol(&self) -> &ProtocolNode {
        &self.node
    }

    /// Read-only view of the local block store, used by the simulation
    /// harness's storage invariant checkers.
    pub fn blocks(&self) -> &HashMap<Key, Vec<u8>> {
        &self.store
    }

    /// Read-only view of the locally held erasure-coded fragments, used
    /// by the simulation harness's reconstructability invariant.
    pub fn fragments(&self) -> &HashMap<Key, StoredFragment> {
        &self.fragments
    }

    /// Keys currently queued for budgeted fragment regeneration.
    pub fn ec_repair_queue_len(&self) -> usize {
        self.ec_repair_queue.len()
    }

    /// Runs the event loop until shutdown, then closes the transport.
    ///
    /// Maintenance ticks are deadline-scheduled, not idle-gated: a node
    /// under constant message load still stabilizes and repairs on the
    /// [`TICK`] cadence instead of waiting for a quiet [`TICK`]-long
    /// gap that a busy cluster may never grant it.
    pub fn run(mut self) {
        let tick_us = TICK.as_micros() as u64;
        let mut next_tick_us = self.clock.now_us().saturating_add(tick_us);
        loop {
            if self.clock.now_us() >= next_tick_us {
                self.on_tick();
                next_tick_us = self.clock.now_us().saturating_add(tick_us);
            }
            let wait_us = next_tick_us.saturating_sub(self.clock.now_us()).max(1);
            match self.transport.recv_timeout(Duration::from_micros(wait_us)) {
                Err(RecvError::Timeout) => {} // deadline reached; tick above
                Err(RecvError::Closed) => break,
                Ok((msg, trace)) => {
                    if !self.on_message(msg, trace) {
                        break;
                    }
                }
            }
        }
        self.transport.shutdown();
    }

    /// Handles exactly one incoming message; returns `false` when the
    /// message was a shutdown request and the loop should exit.
    ///
    /// `trace` is the message's envelope context. When traced, this node
    /// allocates its own span, records the handling step into the flight
    /// recorder, and forwards any caused messages (ring traffic, put
    /// chains) with [`TraceCtx::child`] — so one client operation yields
    /// one causally-linked span tree across every node it touched.
    pub fn on_message(&mut self, msg: WireMsg, trace: TraceCtx) -> bool {
        let start_us = self.clock.now_us();
        let op = msg.type_name();
        // Static counter names: this is the per-message hot path, and a
        // `format!` per message is an allocation a 1,000-node process
        // pays millions of times.
        self.registry.inc(msgs_in_counter(op));
        let span = if trace.is_traced() {
            let s = self.alloc_span();
            self.cur_ctx = trace.child(s);
            s
        } else {
            self.cur_ctx = TraceCtx::NONE;
            0
        };
        self.cur_ok = true;
        // Span detail is only ever read for traced messages; skip the
        // string work entirely on the untraced hot path.
        let detail = if trace.is_traced() {
            match &msg {
                WireMsg::Ring(RingMsg::FindOwner { hops, .. }) => format!("hops={hops}"),
                WireMsg::Ring(RingMsg::Join { joiner, .. }) => format!("joiner={}", joiner.addr),
                WireMsg::Request {
                    body: Request::Put { fanout, stored, .. },
                    ..
                } => format!("fanout={fanout} stored={stored}"),
                WireMsg::Request {
                    body: Request::Lookup { key } | Request::Get { key },
                    ..
                } => format!("key={:.4}", key.to_fraction()),
                _ => String::new(),
            }
        } else {
            String::new()
        };
        let cont = match msg {
            WireMsg::Ring(m) => {
                let out = self.node.handle(m);
                self.send_all(out);
                self.drain_completed();
                true
            }
            WireMsg::Request { req_id, from, body } => self.handle_request(req_id, from, body),
            // Responses route to the erasure-coded op that issued them;
            // anything else (a repair chain's PutAck, or a late client
            // PutAck racing a chain we forwarded) is dropped.
            WireMsg::Response { req_id, body } => {
                if self.ec_ops.contains_key(&req_id) {
                    self.handle_ec_response(req_id, body);
                }
                true
            }
        };
        let ok = self.cur_ok;
        self.push_span(trace, span, start_us, ok, op, detail);
        self.cur_ctx = TraceCtx::NONE;
        cont
    }

    /// Runs exactly one maintenance tick: stabilization probes, join
    /// retry while unjoined, and (every `REPAIR_EVERY_TICKS` ticks) one
    /// replica-repair round.
    pub fn on_tick(&mut self) {
        let out = self.node.tick();
        self.send_all(out);
        self.retry_join_if_unjoined();
        self.ticks += 1;
        let anchor_every = self.node.config().anchor_every_ticks;
        if anchor_every > 0 && self.ticks.is_multiple_of(anchor_every) {
            self.anchor_round();
        }
        if self.ticks.is_multiple_of(REPAIR_EVERY_TICKS) {
            if self.ec.is_some() {
                self.ec_repair_round();
            } else if self.replication > 0 {
                self.repair_round();
            }
        }
        self.expire_ec_ops();
        self.drain_completed();
    }

    /// Handles one client request; returns `false` on shutdown.
    fn handle_request(&mut self, req_id: u64, from: Addr, body: Request) -> bool {
        match body {
            Request::Lookup { key } => {
                self.registry.inc("node.lookups");
                let (ring_req, out) = self.node.start_lookup(key);
                self.pending_lookups.insert(
                    ring_req,
                    PendingLookup {
                        client: from,
                        req_id,
                        ctx: self.cur_ctx,
                        start_us: self.clock.now_us(),
                    },
                );
                self.send_all(out);
                self.drain_completed();
            }
            Request::Put {
                key,
                fanout,
                stored,
                data,
            } => {
                if self.ec.is_some() {
                    self.handle_put_ec(req_id, from, key, data);
                } else {
                    self.handle_put(req_id, from, key, fanout, stored, data);
                }
            }
            Request::Get { key } => {
                self.registry.inc("node.gets");
                match self.store.get(&key).cloned() {
                    Some(data) => self.respond(from, req_id, Response::Block { data: Some(data) }),
                    // In erasure mode a whole block lives nowhere; gather
                    // any k fragments from the group and decode.
                    None if self.ec.is_some() => self.start_ec_gather(
                        key,
                        GatherPurpose::Client {
                            client: from,
                            req_id,
                        },
                    ),
                    None => {
                        self.registry.inc("node.get_misses");
                        self.cur_ok = false;
                        self.respond(from, req_id, Response::Block { data: None });
                    }
                }
            }
            Request::PutFragment {
                key,
                index,
                total: _,
                generation,
                check,
                block_len,
                data,
            } => {
                let frag = Fragment {
                    index,
                    generation,
                    data,
                    check,
                };
                // End-to-end integrity: a fragment corrupted in transit
                // (or by a hostile peer) is rejected, never stored.
                if !frag.verify() {
                    self.registry.inc("ec.corrupt_fragments");
                    self.cur_ok = false;
                    self.respond(from, req_id, Response::PutAck { replicas: 0 });
                    return true;
                }
                let stale = self
                    .fragments
                    .get(&key)
                    .is_some_and(|held| held.frag.generation > generation);
                if !stale {
                    self.fragments
                        .insert(key, StoredFragment { block_len, frag });
                    self.store.remove(&key);
                }
                self.respond(from, req_id, Response::PutAck { replicas: 1 });
            }
            Request::GetFragment { key, want_data } => {
                let body = match self.fragments.get(&key) {
                    Some(held) => Response::Fragment {
                        has: true,
                        index: held.frag.index,
                        generation: held.frag.generation,
                        check: held.frag.check,
                        block_len: held.block_len,
                        data: if want_data {
                            held.frag.data.clone()
                        } else {
                            Vec::new()
                        },
                    },
                    None => Response::Fragment {
                        has: false,
                        index: 0,
                        generation: 0,
                        check: 0,
                        block_len: 0,
                        data: Vec::new(),
                    },
                };
                self.respond(from, req_id, body);
            }
            Request::Status => {
                let status = WireStatus {
                    me: self.node.me(),
                    predecessor: self.node.predecessor(),
                    successors: self.node.successors().to_vec(),
                    blocks: self.store.len() as u64,
                };
                self.respond(from, req_id, Response::Status(status));
            }
            Request::MetricsDump => {
                let mut reg = self.registry.clone();
                reg.set_gauge("node.blocks", self.store.len() as f64);
                reg.set_gauge("node.ring_position", self.node.me().id.to_fraction());
                if self.ec.is_some() || !self.fragments.is_empty() {
                    reg.set_gauge("ec.fragments", self.fragments.len() as f64);
                    reg.set_gauge("ec.repair_queue", self.ec_repair_queue.len() as f64);
                }
                reg.add("node.spans_dropped", self.recorder.dropped());
                if let Some(nm) = &self.net_metrics {
                    nm.snapshot_into(&mut reg);
                }
                let dump = WireMetrics::from_registry(&reg, self.recorder.snapshot());
                self.respond(from, req_id, Response::Metrics(Box::new(dump)));
            }
            Request::Shutdown => {
                self.respond(from, req_id, Response::ShutdownAck);
                return false;
            }
        }
        true
    }

    /// Replica-chain store: write the local copy, then either forward
    /// down the successor list or — as the end of the chain — ack the
    /// original client directly. The ack therefore means *every*
    /// reachable replica is written, not merely the first.
    fn handle_put(
        &mut self,
        req_id: u64,
        from: Addr,
        key: Key,
        fanout: u32,
        stored: u32,
        data: Vec<u8>,
    ) {
        self.registry.inc("node.puts");
        let stored = stored + 1;
        if fanout == 0 {
            // End of the chain: the block moves straight into the store
            // — the fanout-0 hot path copies nothing.
            self.store.insert(key, data);
            self.registry.observe("node.put_replicas", stored as u64);
            self.respond(from, req_id, Response::PutAck { replicas: stored });
            return;
        }
        // Mid-chain: the local copy is a clone because `data` travels on
        // in the forwarded request.
        self.store.insert(key, data.clone());
        let me = self.node.me().addr;
        let succs: Vec<Addr> = self
            .node
            .successors()
            .iter()
            .map(|p| p.addr)
            .filter(|&a| a != me)
            .collect();
        let forward = WireMsg::Request {
            req_id,
            from,
            body: Request::Put {
                key,
                fanout: fanout - 1,
                stored,
                data,
            },
        };
        for succ in succs {
            if self
                .transport
                .send_traced(succ, &forward, self.cur_ctx)
                .is_ok()
            {
                // Validation knob: count the rest of the chain as
                // written the moment the forward send succeeds. A dead
                // peer fails the send fast, so this looks safe — until
                // a link drops traffic silently and the "replicas" the
                // ack promises were never stored anywhere.
                if self.node.config().ack_on_send {
                    let promised = stored + fanout;
                    self.registry.observe("node.put_replicas", promised as u64);
                    self.respond(from, req_id, Response::PutAck { replicas: promised });
                }
                return; // the chain continues; its end will ack
            }
            self.record_send_failure(succ);
            self.node.forget(succ);
        }
        // No reachable successor: this node terminates the chain.
        self.registry.observe("node.put_replicas", stored as u64);
        self.respond(from, req_id, Response::PutAck { replicas: stored });
    }

    /// Notes a failed send: a counter, a failure flag on the current
    /// span, and (when traced) a dedicated `send.fail` child span so the
    /// trace tree shows exactly where an operation lost a hop.
    fn record_send_failure(&mut self, to: Addr) {
        self.registry.inc("node.send_failures");
        self.cur_ok = false;
        if self.cur_ctx.is_traced() {
            let span = self.alloc_span();
            let now = self.clock.now_us();
            let ctx = self.cur_ctx;
            self.push_span(ctx, span, now, false, "send.fail", format!("to={to}"));
        }
    }

    /// One replica-repair round. Two cases per held block:
    ///
    /// - we *own* the key: re-push the chain so the next `replication-1`
    ///   successors hold a copy (heals replicas lost to crash-restarts);
    /// - we do *not* own the key (the ring moved around us, or we are a
    ///   surviving replica of a dead owner): look the owner up and
    ///   re-put the block through it, restoring the canonical
    ///   owner-plus-successors placement.
    ///
    /// Repair puts carry `from = self`, so the chain's final PutAck
    /// comes back here and is dropped as a stray response — no client
    /// is waiting on it. Blocks are never deleted: an over-replicated
    /// stale copy is garbage, a deleted last copy is data loss.
    fn repair_round(&mut self) {
        if !self.node.is_joined() {
            return;
        }
        let me = self.node.me().addr;
        // Sorted so repair traffic is emitted in a deterministic order —
        // HashMap iteration order would otherwise leak the process's
        // random hasher seed into the simulation harness's schedules.
        let mut owned: Vec<Key> = self.store.keys().copied().collect();
        owned.sort_unstable();
        for key in owned {
            let owns = match self.node.owned_range() {
                Some(r) => r.contains(&key),
                None => false,
            };
            if owns {
                if self.replication < 2 {
                    continue;
                }
                let data = self.store[&key].clone();
                self.handle_put(0, me, key, self.replication - 1, 0, data);
            } else {
                let (ring_req, out) = self.node.start_lookup(key);
                self.pending_repairs.insert(ring_req, key);
                self.send_all(out);
            }
        }
    }

    /// Sends ring traffic, forgetting dead hops and re-routing routed
    /// requests through the repaired ring (bounded by [`REROUTE_BUDGET`]).
    fn send_all(&mut self, msgs: Vec<(Addr, RingMsg)>) {
        let mut queue = msgs;
        let mut budget = REROUTE_BUDGET;
        while let Some((to, msg)) = queue.pop() {
            if self
                .transport
                .send_traced(to, &WireMsg::Ring(msg.clone()), self.cur_ctx)
                .is_ok()
            {
                continue;
            }
            self.record_send_failure(to);
            self.node.forget(to);
            let reroutable = matches!(msg, RingMsg::FindOwner { .. } | RingMsg::Join { .. });
            if reroutable && budget > 0 {
                budget -= 1;
                queue.extend(self.node.handle(msg));
            }
        }
    }

    /// Seed-anchored anti-entropy: a joined node periodically
    /// re-introduces itself to its join seed (Notify) and pulls the
    /// seed's neighbor view (GetNeighbors).
    ///
    /// Plain Chord stabilization only ever talks to a node's *current*
    /// pointers, so two complete rings that formed on either side of a
    /// healed netsplit never find each other again — each side's
    /// pointers are internally consistent and corpse-free. Anchoring
    /// breaks the symmetry through the well-known seed: the minority
    /// side re-learns the seed's successors (and the seed's side learns
    /// the minority node via Notify), after which ordinary
    /// stabilization zips the two rings back into one. In a healthy
    /// ring both messages are no-ops, so the steady-state cost is two
    /// small messages per node per anchor period.
    fn anchor_round(&mut self) {
        let Some(seed) = self.seed else { return };
        if !self.node.is_joined() || seed == self.node.me().addr {
            return;
        }
        self.registry.inc("node.anchor_rounds");
        let me = self.node.me();
        self.send_all(vec![
            (seed, RingMsg::Notify { candidate: me }),
            (seed, RingMsg::GetNeighbors { from: me.addr }),
        ]);
    }

    /// Re-sends the join while the node has no ring pointers: either the
    /// original join or its ack was lost (boot-storm connect timeout),
    /// and the join handshake is the only path that can recover.
    fn retry_join_if_unjoined(&mut self) {
        let Some(seed) = self.seed else { return };
        if self.node.is_joined() {
            return;
        }
        let now = self.clock.now_us();
        if now.saturating_sub(self.last_join_attempt_us) < JOIN_RETRY_US {
            return;
        }
        self.last_join_attempt_us = now;
        self.registry.inc("node.join_retries");
        let trace_id = join_trace_id(self.node.me().id);
        let span = self.alloc_span();
        let join = RingMsg::Join {
            joiner: self.node.me(),
            hops: 0,
        };
        let ctx = TraceCtx {
            trace_id,
            span_id: span,
            hop: 1,
        };
        let sent = self
            .transport
            .send_traced(seed, &WireMsg::Ring(join), ctx)
            .is_ok();
        self.push_span(
            TraceCtx::root(trace_id),
            span,
            now,
            sent,
            "join.retry",
            format!("seed={seed}"),
        );
    }

    /// Flushes finished lookups: client lookups go back to the clients
    /// that asked; repair lookups turn into a re-put through the owner.
    fn drain_completed(&mut self) {
        for res in self.node.take_completed() {
            if let Some(p) = self.pending_lookups.remove(&res.req_id) {
                self.registry.observe("node.lookup_hops", res.hops as u64);
                let dur = self.clock.now_us().saturating_sub(p.start_us);
                self.registry.observe("node.lookup_us", dur);
                if p.ctx.is_traced() {
                    let span = self.alloc_span();
                    let (ctx, start) = (p.ctx, p.start_us);
                    self.push_span(
                        ctx,
                        span,
                        start,
                        true,
                        "lookup.done",
                        format!("hops={} owner={}", res.hops, res.owner.addr),
                    );
                }
                self.respond(
                    p.client,
                    p.req_id,
                    Response::Owner {
                        owner: res.owner,
                        hops: res.hops,
                    },
                );
            } else if let Some(key) = self.pending_repairs.remove(&res.req_id) {
                self.repair_rehome(key, res.owner.addr);
            }
        }
    }

    /// Second half of a non-owned-block repair: push the block to the
    /// owner the lookup found, which stores it and replicates down its
    /// own successor chain.
    fn repair_rehome(&mut self, key: Key, owner: Addr) {
        let me = self.node.me().addr;
        let Some(data) = self.store.get(&key).cloned() else {
            return;
        };
        if owner == me {
            // The lookup raced a ring change and we own the key after
            // all; the next repair round handles it as an owned block.
            return;
        }
        let put = WireMsg::Request {
            req_id: 0,
            from: me,
            body: Request::Put {
                key,
                fanout: self.replication.saturating_sub(1),
                stored: 0,
                data,
            },
        };
        if self.transport.send(owner, &put).is_err() {
            self.node.forget(owner);
        }
    }

    fn respond(&mut self, to: Addr, req_id: u64, body: Response) {
        let msg = WireMsg::Response { req_id, body };
        if self.transport.send(to, &msg).is_err() {
            // A client that vanished mid-request is not a node failure;
            // nothing to repair.
        }
    }

    // -----------------------------------------------------------------
    // Erasure-coded redundancy (see `d2_ec`)
    // -----------------------------------------------------------------

    /// A fresh internal request id for one erasure-coded op.
    fn alloc_ec_req(&mut self) -> u64 {
        self.next_ec_req += 1;
        self.next_ec_req
    }

    /// The fragment group as currently placed: this node (position 0)
    /// followed by its successor list, deduplicated, truncated to `n`.
    /// Position `p` canonically holds fragment index `p`; after churn
    /// the mapping can be off, but every repair round regenerates
    /// toward it, so placement converges back to canonical.
    fn ec_group(&self, n: usize) -> Vec<Addr> {
        let me = self.node.me().addr;
        let mut group = vec![me];
        for p in self.node.successors() {
            if group.len() >= n {
                break;
            }
            if !group.contains(&p.addr) {
                group.push(p.addr);
            }
        }
        group
    }

    /// Owner-side erasure-coded put: encode the block into `n`
    /// fragments, keep fragment 0 locally, distribute the rest to the
    /// next `n - 1` successors, and ack the client once every reachable
    /// member confirmed — the fragment-mode analogue of the replica
    /// chain's end-of-chain ack. The client's requested fanout is
    /// ignored; the policy decides the group size.
    fn handle_put_ec(&mut self, req_id: u64, from: Addr, key: Key, data: Vec<u8>) {
        self.registry.inc("node.puts");
        // Generations come from the injected clock: monotonic across
        // crash-restarts (a fresh counter would not be), deterministic
        // under the simulation clock.
        let generation = self.clock.now_us().max(1);
        let block_len = data.len() as u32;
        let (n, frags) = {
            let ec = self.ec.as_ref().expect("ec mode");
            (ec.codec.n(), ec.codec.encode(&data, generation))
        };
        // A whole-block copy under this key would shadow the fragments.
        self.store.remove(&key);
        let group = self.ec_group(n);
        let mut iter = frags.into_iter();
        let own = iter.next().expect("encode yields n >= 1 fragments");
        self.fragments.insert(
            key,
            StoredFragment {
                block_len,
                frag: own,
            },
        );
        let op_id = self.alloc_ec_req();
        let mut pending = 0u32;
        for (i, frag) in iter.enumerate() {
            let Some(&to) = group.get(i + 1) else { break };
            if self.send_fragment(op_id, to, key, n as u8, block_len, frag) {
                pending += 1;
            }
        }
        if pending == 0 {
            self.registry.observe("node.put_replicas", 1);
            self.respond(from, req_id, Response::PutAck { replicas: 1 });
            return;
        }
        let started_us = self.clock.now_us();
        self.ec_ops.insert(
            op_id,
            EcOp::Put {
                client: from,
                req_id,
                pending,
                stored: 1,
                started_us,
            },
        );
    }

    /// Sends one fragment as a [`Request::PutFragment`], returning
    /// whether the transport accepted it.
    fn send_fragment(
        &mut self,
        op_id: u64,
        to: Addr,
        key: Key,
        total: u8,
        block_len: u32,
        frag: Fragment,
    ) -> bool {
        let me = self.node.me().addr;
        let msg = WireMsg::Request {
            req_id: op_id,
            from: me,
            body: Request::PutFragment {
                key,
                index: frag.index,
                total,
                generation: frag.generation,
                check: frag.check,
                block_len,
                data: frag.data,
            },
        };
        if self.transport.send_traced(to, &msg, self.cur_ctx).is_ok() {
            true
        } else {
            self.record_send_failure(to);
            self.node.forget(to);
            false
        }
    }

    /// Starts a gather: ask every other group member for its fragment,
    /// then decode once all replied (or the op timed out). The whole
    /// group is asked up front rather than k-first — one round trip and
    /// no second round on a miss, at the cost of `(n-k)/k` extra
    /// fragment bandwidth per read.
    fn start_ec_gather(&mut self, key: Key, purpose: GatherPurpose) {
        let n = self.ec.as_ref().expect("ec mode").codec.n();
        let group = self.ec_group(n);
        let me = self.node.me().addr;
        let mut frags = Vec::new();
        let mut block_len = 0u32;
        if let Some(held) = self.fragments.get(&key) {
            block_len = held.block_len;
            frags.push(held.frag.clone());
        }
        let op_id = self.alloc_ec_req();
        let mut pending = 0u32;
        for &to in group.iter().skip(1) {
            let msg = WireMsg::Request {
                req_id: op_id,
                from: me,
                body: Request::GetFragment {
                    key,
                    want_data: true,
                },
            };
            if self.transport.send_traced(to, &msg, self.cur_ctx).is_ok() {
                pending += 1;
            } else {
                self.record_send_failure(to);
                self.node.forget(to);
            }
        }
        let started_us = self.clock.now_us();
        let op = EcOp::Gather {
            key,
            purpose,
            block_len,
            frags,
            pending,
            started_us,
        };
        if pending == 0 {
            self.finish_ec_op(op);
        } else {
            self.ec_ops.insert(op_id, op);
        }
    }

    /// Starts a presence probe for one owned key: empty
    /// [`Request::GetFragment`] frames to every other group member; the
    /// locally held fragment counts immediately.
    fn start_ec_probe(&mut self, key: Key) {
        let n = self.ec.as_ref().expect("ec mode").codec.n();
        let Some(held) = self.fragments.get(&key) else {
            return;
        };
        let block_len = held.block_len;
        let own_index = held.frag.index as usize;
        let group = self.ec_group(n);
        let me = self.node.me().addr;
        let mut present = vec![false; n];
        if let Some(slot) = present.get_mut(own_index) {
            *slot = true;
        }
        let op_id = self.alloc_ec_req();
        let mut pending = 0u32;
        for &to in group.iter().skip(1) {
            let msg = WireMsg::Request {
                req_id: op_id,
                from: me,
                body: Request::GetFragment {
                    key,
                    want_data: false,
                },
            };
            if self.transport.send_traced(to, &msg, self.cur_ctx).is_ok() {
                pending += 1;
            } else {
                self.record_send_failure(to);
                self.node.forget(to);
            }
        }
        let started_us = self.clock.now_us();
        let op = EcOp::Probe {
            key,
            block_len,
            present,
            pending,
            started_us,
        };
        if pending == 0 {
            self.finish_ec_op(op);
        } else {
            self.ec_ops.insert(op_id, op);
        }
    }

    /// Routes one response into its erasure-coded op, completing the op
    /// when its last outstanding reply lands.
    fn handle_ec_response(&mut self, op_id: u64, body: Response) {
        let Some(mut op) = self.ec_ops.remove(&op_id) else {
            return;
        };
        let done = match (&mut op, body) {
            (
                EcOp::Put {
                    pending, stored, ..
                },
                Response::PutAck { replicas },
            ) => {
                *stored += replicas.min(1);
                *pending = pending.saturating_sub(1);
                *pending == 0
            }
            (
                EcOp::Gather {
                    frags,
                    block_len,
                    pending,
                    ..
                },
                Response::Fragment {
                    has,
                    index,
                    generation,
                    check,
                    block_len: bl,
                    data,
                },
            ) => {
                if has {
                    let frag = Fragment {
                        index,
                        generation,
                        data,
                        check,
                    };
                    add_gathered(frags, block_len, frag, bl, &mut self.registry);
                }
                *pending = pending.saturating_sub(1);
                *pending == 0
            }
            (
                EcOp::Probe {
                    present, pending, ..
                },
                Response::Fragment { has, index, .. },
            ) => {
                if has {
                    if let Some(slot) = present.get_mut(index as usize) {
                        *slot = true;
                    }
                }
                *pending = pending.saturating_sub(1);
                *pending == 0
            }
            // A mismatched body (hostile or confused peer) neither
            // advances nor completes the op; the timeout reaps it.
            _ => false,
        };
        if done {
            self.finish_ec_op(op);
        } else {
            self.ec_ops.insert(op_id, op);
        }
    }

    /// Completes one erasure-coded op with whatever replies arrived.
    fn finish_ec_op(&mut self, op: EcOp) {
        match op {
            EcOp::Put {
                client,
                req_id,
                stored,
                ..
            } => {
                self.registry.observe("node.put_replicas", stored as u64);
                self.respond(client, req_id, Response::PutAck { replicas: stored });
            }
            EcOp::Gather {
                key,
                purpose,
                block_len,
                frags,
                ..
            } => {
                let Some((k, n)) = self.ec.as_ref().map(|e| (e.codec.k(), e.codec.n())) else {
                    return; // EC mode switched off while in flight
                };
                let decoded = if frags.len() >= k {
                    // Needing any parity fragment means a data shard was
                    // lost: count the degraded read.
                    if !(0..k).all(|i| frags.iter().any(|f| f.index as usize == i)) {
                        self.registry.inc("ec.decode_fallbacks");
                    }
                    let ec = self.ec.as_ref().expect("checked above");
                    ec.codec.decode(&frags, block_len as usize).ok()
                } else {
                    None
                };
                match purpose {
                    GatherPurpose::Client { client, req_id } => {
                        if decoded.is_none() {
                            self.registry.inc("node.get_misses");
                            self.cur_ok = false;
                        }
                        self.respond(client, req_id, Response::Block { data: decoded });
                    }
                    GatherPurpose::Repair => {
                        let Some(data) = decoded else {
                            // Fewer than k survivors right now: nothing
                            // to regenerate from. The key stays queued
                            // until a holder returns.
                            self.ec_repair_queue
                                .entry(key)
                                .or_insert((block_len as u64).max(1));
                            return;
                        };
                        let generation = frags.first().map_or(1, |f| f.generation);
                        let ec = self.ec.as_ref().expect("checked above");
                        let all = ec.codec.encode(&data, generation);
                        let group = self.ec_group(n);
                        let mut repaired = 0u64;
                        for frag in all {
                            let pos = frag.index as usize;
                            if frags.iter().any(|f| f.index == frag.index) {
                                continue; // a member still holds it
                            }
                            if pos == 0 {
                                self.fragments
                                    .insert(key, StoredFragment { block_len, frag });
                                repaired += 1;
                            } else if let Some(&to) = group.get(pos) {
                                // Fire-and-forget: the ack comes back
                                // under a req id no op owns, and drops.
                                if self.send_fragment(0, to, key, n as u8, block_len, frag) {
                                    repaired += 1;
                                }
                            }
                        }
                        self.registry.add("ec.repaired_fragments", repaired);
                    }
                }
            }
            EcOp::Probe {
                key,
                block_len,
                present,
                ..
            } => {
                let Some(ec) = self.ec.as_ref() else { return };
                let m = ec.repair_threshold;
                let frag_len = ec.codec.fragment_len(block_len as usize) as u64;
                let have = present.iter().filter(|&&p| p).count();
                if have >= m {
                    // Lazy: losses above the threshold wait for the
                    // transient failure to heal itself.
                    self.registry.inc("ec.repairs_skipped_lazy");
                    return;
                }
                let missing = (present.len() - have) as u64;
                // Cost model: gather k fragments (≈ the block) plus
                // push the regenerated fragments.
                let cost = (block_len as u64 + missing * frag_len).max(1);
                self.ec_repair_queue.insert(key, cost);
            }
        }
    }

    /// One lazy-repair round: refill the token bucket, probe owned keys
    /// for surviving fragments, and drain the repair queue in key order
    /// within the budget. Probes are cheap (empty fragment frames);
    /// only keys below the repair threshold cost real bytes.
    fn ec_repair_round(&mut self) {
        if !self.node.is_joined() {
            return;
        }
        let now = self.clock.now_us();
        let bps = {
            let ec = self.ec.as_mut().expect("ec mode");
            let dt = now.saturating_sub(ec.last_refill_us);
            ec.last_refill_us = now;
            if ec.repair_budget_bps > 0 {
                let add = (ec.repair_budget_bps as u128 * dt as u128 / 1_000_000) as u64;
                ec.repair_tokens = ec
                    .repair_tokens
                    .saturating_add(add)
                    .min(ec.repair_budget_bps.saturating_mul(EC_BURST_SECS));
            }
            ec.repair_budget_bps
        };
        // Probe every owned key not already queued or in flight.
        let owned_range = self.node.owned_range();
        let mut owned: Vec<Key> = self
            .fragments
            .keys()
            .filter(|k| owned_range.as_ref().is_some_and(|r| r.contains(k)))
            .copied()
            .collect();
        owned.sort_unstable();
        for key in owned {
            if self.ec_repair_queue.contains_key(&key) || self.ec_op_in_flight(key) {
                continue;
            }
            self.start_ec_probe(key);
        }
        // Drain the queue within budget, in key order. Throttled keys
        // stay queued for a later, refilled round.
        let queued: Vec<(Key, u64)> = self.ec_repair_queue.iter().map(|(k, c)| (*k, *c)).collect();
        for (key, cost) in queued {
            if self.ec_op_in_flight(key) {
                continue;
            }
            let affordable = {
                let ec = self.ec.as_mut().expect("ec mode");
                if bps == 0 || ec.repair_tokens >= cost {
                    if bps > 0 {
                        ec.repair_tokens -= cost;
                    }
                    true
                } else {
                    false
                }
            };
            if !affordable {
                self.registry.add("ec.repair_throttled_bytes", cost);
                continue;
            }
            self.registry.add("ec.repair_bytes", cost);
            self.ec_repair_queue.remove(&key);
            self.start_ec_gather(key, GatherPurpose::Repair);
        }
    }

    /// Whether a repair-path op for `key` is already in flight.
    fn ec_op_in_flight(&self, key: Key) -> bool {
        self.ec_ops.values().any(|op| match op {
            EcOp::Gather {
                key: k,
                purpose: GatherPurpose::Repair,
                ..
            }
            | EcOp::Probe { key: k, .. } => *k == key,
            _ => false,
        })
    }

    /// Completes erasure-coded ops whose members stopped answering:
    /// after [`EC_OP_TIMEOUT_US`] a non-reply counts as a missing
    /// fragment and the op resolves with what it has.
    fn expire_ec_ops(&mut self) {
        if self.ec_ops.is_empty() {
            return;
        }
        let now = self.clock.now_us();
        let mut expired: Vec<u64> = self
            .ec_ops
            .iter()
            .filter(|(_, op)| {
                let started = match op {
                    EcOp::Put { started_us, .. }
                    | EcOp::Gather { started_us, .. }
                    | EcOp::Probe { started_us, .. } => *started_us,
                };
                now.saturating_sub(started) >= EC_OP_TIMEOUT_US
            })
            .map(|(id, _)| *id)
            .collect();
        expired.sort_unstable();
        for id in expired {
            if let Some(op) = self.ec_ops.remove(&id) {
                self.finish_ec_op(op);
            }
        }
    }
}

/// Folds one arriving fragment into a gather: verified fragments only,
/// deduplicated by index, and only the highest write generation seen —
/// a newer put's fragments discard an older put's survivors.
fn add_gathered(
    frags: &mut Vec<Fragment>,
    block_len: &mut u32,
    frag: Fragment,
    bl: u32,
    reg: &mut Registry,
) {
    if !frag.verify() {
        reg.inc("ec.corrupt_fragments");
        return;
    }
    let newest = frags.first().map_or(0, |f| f.generation);
    if frag.generation < newest {
        return;
    }
    if frag.generation > newest {
        frags.clear();
    }
    if frags.iter().any(|f| f.index == frag.index) {
        return;
    }
    *block_len = bl;
    frags.push(frag);
}

/// Maps [`WireMsg::type_name`] to a static `node.msgs_in.*` counter
/// name, so the per-message hot path allocates nothing.
fn msgs_in_counter(op: &str) -> &'static str {
    match op {
        "find_owner" => "node.msgs_in.find_owner",
        "owner_is" => "node.msgs_in.owner_is",
        "join" => "node.msgs_in.join",
        "join_ack" => "node.msgs_in.join_ack",
        "get_neighbors" => "node.msgs_in.get_neighbors",
        "neighbors" => "node.msgs_in.neighbors",
        "notify" => "node.msgs_in.notify",
        "lookup" => "node.msgs_in.lookup",
        "put" => "node.msgs_in.put",
        "get" => "node.msgs_in.get",
        "put_fragment" => "node.msgs_in.put_fragment",
        "get_fragment" => "node.msgs_in.get_fragment",
        "status" => "node.msgs_in.status",
        "metrics_dump" => "node.msgs_in.metrics_dump",
        "shutdown" => "node.msgs_in.shutdown",
        "owner" => "node.msgs_in.owner",
        "put_ack" => "node.msgs_in.put_ack",
        "block" => "node.msgs_in.block",
        "fragment" => "node.msgs_in.fragment",
        "metrics" => "node.msgs_in.metrics",
        "shutdown_ack" => "node.msgs_in.shutdown_ack",
        _ => "node.msgs_in.other",
    }
}

/// Trace id of a node's join trace, folded from both halves of its key
/// so it is distinct whether the key was placed by ring fraction (top
/// bits populated) or built from a small integer (low bits populated).
fn join_trace_id(id: Key) -> u64 {
    let hi = (id.to_fraction() * u64::MAX as f64) as u64;
    (hi ^ id.to_u64_lossy()).max(1)
}
