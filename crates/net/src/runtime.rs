//! The per-node event loop, generic over the transport and the clock.
//!
//! A [`NodeRuntime`] is one live D2 node: the pure protocol state
//! machine ([`ProtocolNode`]), a local block store, and a
//! [`Transport`] endpoint. [`NodeRuntime::run`] drives it until a
//! [`Request::Shutdown`] arrives or the transport closes — the *same*
//! loop body whether the transport is an in-process channel or a TCP
//! socket, which is the whole point of the [`d2_wire`] seam.
//!
//! The loop body is exposed as two single-step entry points so the
//! deterministic simulation harness (`d2-dst`) can drive the *identical*
//! runtime one event at a time with no threads and no sleeps:
//!
//! - [`NodeRuntime::on_message`] — handle exactly one incoming message;
//! - [`NodeRuntime::on_tick`] — run exactly one maintenance tick
//!   (stabilization, join retry, replica repair).
//!
//! All timeouts read time through the injected [`Clock`], so under a
//! [`crate::clock::SimClock`] every timeout decision is a pure function
//! of the schedule.

use crate::clock::{Clock, SystemClock};
use d2_obs::flight::{FLIGHT_CAPACITY, SLOW_THRESHOLD_US};
use d2_obs::{FlightRecorder, Registry, SpanRecord, TraceCtx};
use d2_ring::messages::{Addr, RingMsg};
use d2_ring::node::{NodeConfig, ProtocolNode};
use d2_types::Key;
use d2_wire::codec::{Request, Response, WireMetrics, WireMsg, WireStatus};
use d2_wire::metrics::NetMetrics;
use d2_wire::transport::{RecvError, Transport};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How long the event loop waits for traffic before running a
/// stabilization tick.
pub const TICK: Duration = Duration::from_millis(20);

/// How long an unjoined node waits before re-sending its join. Longer
/// than the TCP circuit breaker's backoff cap, so every retry is a real
/// connection attempt rather than a fail-fast inside the backoff window.
const JOIN_RETRY_US: u64 = 1_250_000;

/// Bounded local re-routing budget: when a hop turns out dead we forget
/// it and, for routed requests, immediately re-handle the message so it
/// takes the next-best route instead of being dropped.
const REROUTE_BUDGET: u32 = 64;

/// Ticks between replica-repair rounds (≈ 1.28 s of real time at the
/// 20 ms tick). Each round re-pushes owned blocks down the successor
/// chain and re-homes blocks this node holds but no longer owns, so the
/// replica count converges back to the configured factor after churn.
const REPAIR_EVERY_TICKS: u64 = 64;

/// A client lookup in flight: who asked, plus the trace context and
/// start time so the completion can be recorded as a causally-linked
/// span with a real duration.
struct PendingLookup {
    client: Addr,
    req_id: u64,
    ctx: TraceCtx,
    start_us: u64,
}

/// One live node: protocol state machine + block store + transport.
pub struct NodeRuntime<T: Transport, C: Clock = SystemClock> {
    node: ProtocolNode,
    store: HashMap<Key, Vec<u8>>,
    transport: T,
    clock: C,
    /// Ring lookup id → in-flight client lookup awaiting the owner.
    pending_lookups: HashMap<u64, PendingLookup>,
    /// Ring lookup id → key of a repair re-home awaiting the owner.
    pending_repairs: HashMap<u64, Key>,
    /// Join seed, kept so an unjoined node can retry: the one-shot join
    /// message (or its ack) can be lost to a connect timeout during a
    /// cluster-wide boot storm, and nothing else would ever re-send it.
    seed: Option<Addr>,
    last_join_attempt_us: u64,
    /// Replica-maintenance target (`0` disables repair). Put chains are
    /// always driven by the client's requested fanout; this only governs
    /// the periodic background repair.
    replication: u32,
    ticks: u64,
    /// This node's own metrics: `node.*` counters and histograms,
    /// scraped remotely via [`Request::MetricsDump`].
    registry: Registry,
    /// Bounded ring of recent + notable (slow/failed) spans.
    recorder: FlightRecorder,
    /// Transport-level counters to fold into metric dumps, when this
    /// node has a dedicated [`NetMetrics`] (per-node in TCP
    /// deployments; shared in channel deployments, where it is omitted
    /// here to avoid double counting).
    net_metrics: Option<Arc<NetMetrics>>,
    /// Monotonic input to the deterministic span-id hash.
    span_seq: u64,
    /// Outgoing trace context while handling a traced message: the
    /// incoming context's child (same trace, this node's span as
    /// parent, one hop deeper). [`TraceCtx::NONE`] outside handling.
    cur_ctx: TraceCtx,
    /// Success flag of the message currently being handled; cleared by
    /// failed sends and missed gets so the span records `ok = false`.
    cur_ok: bool,
}

impl<T: Transport> NodeRuntime<T, SystemClock> {
    /// Creates the first node of a new ring at position `id`. The node's
    /// address is the transport's.
    pub fn bootstrap(id: Key, cfg: NodeConfig, transport: T) -> Self {
        Self::bootstrap_with_clock(id, cfg, transport, SystemClock::default())
    }

    /// Creates a node that joins an existing ring through `seed`,
    /// sending the initial join traffic immediately.
    pub fn join(id: Key, cfg: NodeConfig, transport: T, seed: Addr) -> Self {
        Self::join_with_clock(id, cfg, transport, seed, SystemClock::default())
    }
}

impl<T: Transport, C: Clock> NodeRuntime<T, C> {
    /// [`NodeRuntime::bootstrap`] with an explicit clock (used by the
    /// deterministic simulation harness to inject virtual time).
    pub fn bootstrap_with_clock(id: Key, cfg: NodeConfig, transport: T, clock: C) -> Self {
        let node = ProtocolNode::bootstrap(id, transport.local_addr(), cfg);
        let now = clock.now_us();
        NodeRuntime {
            node,
            store: HashMap::new(),
            transport,
            clock,
            pending_lookups: HashMap::new(),
            pending_repairs: HashMap::new(),
            seed: None,
            last_join_attempt_us: now,
            replication: 0,
            ticks: 0,
            registry: Registry::new(),
            recorder: FlightRecorder::new(FLIGHT_CAPACITY, SLOW_THRESHOLD_US),
            net_metrics: None,
            span_seq: 0,
            cur_ctx: TraceCtx::NONE,
            cur_ok: true,
        }
    }

    /// [`NodeRuntime::join`] with an explicit clock.
    pub fn join_with_clock(id: Key, cfg: NodeConfig, transport: T, seed: Addr, clock: C) -> Self {
        let (node, join_msgs) = ProtocolNode::join(id, transport.local_addr(), cfg, seed);
        let now = clock.now_us();
        let mut rt = NodeRuntime {
            node,
            store: HashMap::new(),
            transport,
            clock,
            pending_lookups: HashMap::new(),
            pending_repairs: HashMap::new(),
            seed: Some(seed),
            last_join_attempt_us: now,
            replication: 0,
            ticks: 0,
            registry: Registry::new(),
            recorder: FlightRecorder::new(FLIGHT_CAPACITY, SLOW_THRESHOLD_US),
            net_metrics: None,
            span_seq: 0,
            cur_ctx: TraceCtx::NONE,
            cur_ok: true,
        };
        // Joins get their own trace, so `d2-node trace` can replay how a
        // node entered the ring. The id is derived from the node's ring
        // position: deterministic, and unique per joiner with
        // overwhelming probability.
        let trace_id = join_trace_id(id);
        let span = rt.alloc_span();
        let start = rt.clock.now_us();
        rt.cur_ctx = TraceCtx {
            trace_id,
            span_id: span,
            hop: 1,
        };
        rt.send_all(join_msgs);
        rt.push_span(
            TraceCtx::root(trace_id),
            span,
            start,
            true,
            "join.start",
            format!("seed={seed}"),
        );
        rt.cur_ctx = TraceCtx::NONE;
        rt
    }

    /// Sets the replica-maintenance target: background repair keeps
    /// every owned block on the owner plus `replicas - 1` successors.
    /// `0` (the default) disables repair.
    pub fn set_replication(&mut self, replicas: u32) {
        self.replication = replicas;
    }

    /// Attaches a transport-metrics handle whose counters are folded
    /// into this node's [`Request::MetricsDump`] responses. TCP
    /// deployments give each node its own handle; channel deployments
    /// share one hub-wide handle and skip this to avoid every node
    /// re-reporting the same totals.
    pub fn set_net_metrics(&mut self, metrics: Arc<NetMetrics>) {
        self.net_metrics = Some(metrics);
    }

    /// This node's own metric registry (scraped via
    /// [`Request::MetricsDump`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// This node's flight recorder, used by the simulation harness to
    /// collect spans after a run.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Deterministic nonzero span id: a hash of (address, sequence), so
    /// the same schedule replayed in the simulation harness allocates
    /// the same span ids.
    fn alloc_span(&mut self) -> u64 {
        self.span_seq += 1;
        let mut z = (self.transport.local_addr() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.span_seq);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)).max(1)
    }

    /// Records one span under `parent` (no-op when untraced): the span's
    /// hop and parent id come from the context, the duration from the
    /// clock.
    fn push_span(
        &mut self,
        parent: TraceCtx,
        span_id: u64,
        start_us: u64,
        ok: bool,
        op: &str,
        detail: String,
    ) {
        if !parent.is_traced() {
            return;
        }
        let now = self.clock.now_us();
        self.recorder.push(SpanRecord {
            trace_id: parent.trace_id,
            span_id,
            parent_span_id: parent.span_id,
            hop: parent.hop,
            node: self.transport.local_addr() as u64,
            start_us,
            dur_us: now.saturating_sub(start_us),
            ok,
            op: op.to_string(),
            detail,
        });
    }

    /// The node's transport address.
    pub fn local_addr(&self) -> Addr {
        self.transport.local_addr()
    }

    /// The node's transport endpoint, used by external drivers (the
    /// many-nodes multiplexer) to close it when the node stops.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Read-only view of the protocol state machine (ring pointers),
    /// used by the simulation harness's invariant checkers.
    pub fn protocol(&self) -> &ProtocolNode {
        &self.node
    }

    /// Read-only view of the local block store, used by the simulation
    /// harness's storage invariant checkers.
    pub fn blocks(&self) -> &HashMap<Key, Vec<u8>> {
        &self.store
    }

    /// Runs the event loop until shutdown, then closes the transport.
    pub fn run(mut self) {
        loop {
            match self.transport.recv_timeout(TICK) {
                Err(RecvError::Timeout) => self.on_tick(),
                Err(RecvError::Closed) => break,
                Ok((msg, trace)) => {
                    if !self.on_message(msg, trace) {
                        break;
                    }
                }
            }
        }
        self.transport.shutdown();
    }

    /// Handles exactly one incoming message; returns `false` when the
    /// message was a shutdown request and the loop should exit.
    ///
    /// `trace` is the message's envelope context. When traced, this node
    /// allocates its own span, records the handling step into the flight
    /// recorder, and forwards any caused messages (ring traffic, put
    /// chains) with [`TraceCtx::child`] — so one client operation yields
    /// one causally-linked span tree across every node it touched.
    pub fn on_message(&mut self, msg: WireMsg, trace: TraceCtx) -> bool {
        let start_us = self.clock.now_us();
        let op = msg.type_name();
        // Static counter names: this is the per-message hot path, and a
        // `format!` per message is an allocation a 1,000-node process
        // pays millions of times.
        self.registry.inc(msgs_in_counter(op));
        let span = if trace.is_traced() {
            let s = self.alloc_span();
            self.cur_ctx = trace.child(s);
            s
        } else {
            self.cur_ctx = TraceCtx::NONE;
            0
        };
        self.cur_ok = true;
        // Span detail is only ever read for traced messages; skip the
        // string work entirely on the untraced hot path.
        let detail = if trace.is_traced() {
            match &msg {
                WireMsg::Ring(RingMsg::FindOwner { hops, .. }) => format!("hops={hops}"),
                WireMsg::Ring(RingMsg::Join { joiner, .. }) => format!("joiner={}", joiner.addr),
                WireMsg::Request {
                    body: Request::Put { fanout, stored, .. },
                    ..
                } => format!("fanout={fanout} stored={stored}"),
                WireMsg::Request {
                    body: Request::Lookup { key } | Request::Get { key },
                    ..
                } => format!("key={:.4}", key.to_fraction()),
                _ => String::new(),
            }
        } else {
            String::new()
        };
        let cont = match msg {
            WireMsg::Ring(m) => {
                let out = self.node.handle(m);
                self.send_all(out);
                self.drain_completed();
                true
            }
            WireMsg::Request { req_id, from, body } => self.handle_request(req_id, from, body),
            // Nodes only issue fire-and-forget repair puts, so responses
            // (e.g. a repair chain's PutAck, or a late client PutAck
            // racing a chain we forwarded) are dropped.
            WireMsg::Response { .. } => true,
        };
        let ok = self.cur_ok;
        self.push_span(trace, span, start_us, ok, op, detail);
        self.cur_ctx = TraceCtx::NONE;
        cont
    }

    /// Runs exactly one maintenance tick: stabilization probes, join
    /// retry while unjoined, and (every `REPAIR_EVERY_TICKS` ticks) one
    /// replica-repair round.
    pub fn on_tick(&mut self) {
        let out = self.node.tick();
        self.send_all(out);
        self.retry_join_if_unjoined();
        self.ticks += 1;
        if self.replication > 0 && self.ticks.is_multiple_of(REPAIR_EVERY_TICKS) {
            self.repair_round();
        }
        self.drain_completed();
    }

    /// Handles one client request; returns `false` on shutdown.
    fn handle_request(&mut self, req_id: u64, from: Addr, body: Request) -> bool {
        match body {
            Request::Lookup { key } => {
                self.registry.inc("node.lookups");
                let (ring_req, out) = self.node.start_lookup(key);
                self.pending_lookups.insert(
                    ring_req,
                    PendingLookup {
                        client: from,
                        req_id,
                        ctx: self.cur_ctx,
                        start_us: self.clock.now_us(),
                    },
                );
                self.send_all(out);
                self.drain_completed();
            }
            Request::Put {
                key,
                fanout,
                stored,
                data,
            } => self.handle_put(req_id, from, key, fanout, stored, data),
            Request::Get { key } => {
                self.registry.inc("node.gets");
                let data = self.store.get(&key).cloned();
                if data.is_none() {
                    self.registry.inc("node.get_misses");
                    self.cur_ok = false;
                }
                self.respond(from, req_id, Response::Block { data });
            }
            Request::Status => {
                let status = WireStatus {
                    me: self.node.me(),
                    predecessor: self.node.predecessor(),
                    successors: self.node.successors().to_vec(),
                    blocks: self.store.len() as u64,
                };
                self.respond(from, req_id, Response::Status(status));
            }
            Request::MetricsDump => {
                let mut reg = self.registry.clone();
                reg.set_gauge("node.blocks", self.store.len() as f64);
                reg.set_gauge("node.ring_position", self.node.me().id.to_fraction());
                reg.add("node.spans_dropped", self.recorder.dropped());
                if let Some(nm) = &self.net_metrics {
                    nm.snapshot_into(&mut reg);
                }
                let dump = WireMetrics::from_registry(&reg, self.recorder.snapshot());
                self.respond(from, req_id, Response::Metrics(Box::new(dump)));
            }
            Request::Shutdown => {
                self.respond(from, req_id, Response::ShutdownAck);
                return false;
            }
        }
        true
    }

    /// Replica-chain store: write the local copy, then either forward
    /// down the successor list or — as the end of the chain — ack the
    /// original client directly. The ack therefore means *every*
    /// reachable replica is written, not merely the first.
    fn handle_put(
        &mut self,
        req_id: u64,
        from: Addr,
        key: Key,
        fanout: u32,
        stored: u32,
        data: Vec<u8>,
    ) {
        self.registry.inc("node.puts");
        let stored = stored + 1;
        if fanout == 0 {
            // End of the chain: the block moves straight into the store
            // — the fanout-0 hot path copies nothing.
            self.store.insert(key, data);
            self.registry.observe("node.put_replicas", stored as u64);
            self.respond(from, req_id, Response::PutAck { replicas: stored });
            return;
        }
        // Mid-chain: the local copy is a clone because `data` travels on
        // in the forwarded request.
        self.store.insert(key, data.clone());
        let me = self.node.me().addr;
        let succs: Vec<Addr> = self
            .node
            .successors()
            .iter()
            .map(|p| p.addr)
            .filter(|&a| a != me)
            .collect();
        let forward = WireMsg::Request {
            req_id,
            from,
            body: Request::Put {
                key,
                fanout: fanout - 1,
                stored,
                data,
            },
        };
        for succ in succs {
            if self
                .transport
                .send_traced(succ, &forward, self.cur_ctx)
                .is_ok()
            {
                return; // the chain continues; its end will ack
            }
            self.record_send_failure(succ);
            self.node.forget(succ);
        }
        // No reachable successor: this node terminates the chain.
        self.registry.observe("node.put_replicas", stored as u64);
        self.respond(from, req_id, Response::PutAck { replicas: stored });
    }

    /// Notes a failed send: a counter, a failure flag on the current
    /// span, and (when traced) a dedicated `send.fail` child span so the
    /// trace tree shows exactly where an operation lost a hop.
    fn record_send_failure(&mut self, to: Addr) {
        self.registry.inc("node.send_failures");
        self.cur_ok = false;
        if self.cur_ctx.is_traced() {
            let span = self.alloc_span();
            let now = self.clock.now_us();
            let ctx = self.cur_ctx;
            self.push_span(ctx, span, now, false, "send.fail", format!("to={to}"));
        }
    }

    /// One replica-repair round. Two cases per held block:
    ///
    /// - we *own* the key: re-push the chain so the next `replication-1`
    ///   successors hold a copy (heals replicas lost to crash-restarts);
    /// - we do *not* own the key (the ring moved around us, or we are a
    ///   surviving replica of a dead owner): look the owner up and
    ///   re-put the block through it, restoring the canonical
    ///   owner-plus-successors placement.
    ///
    /// Repair puts carry `from = self`, so the chain's final PutAck
    /// comes back here and is dropped as a stray response — no client
    /// is waiting on it. Blocks are never deleted: an over-replicated
    /// stale copy is garbage, a deleted last copy is data loss.
    fn repair_round(&mut self) {
        if !self.node.is_joined() {
            return;
        }
        let me = self.node.me().addr;
        // Sorted so repair traffic is emitted in a deterministic order —
        // HashMap iteration order would otherwise leak the process's
        // random hasher seed into the simulation harness's schedules.
        let mut owned: Vec<Key> = self.store.keys().copied().collect();
        owned.sort_unstable();
        for key in owned {
            let owns = match self.node.owned_range() {
                Some(r) => r.contains(&key),
                None => false,
            };
            if owns {
                if self.replication < 2 {
                    continue;
                }
                let data = self.store[&key].clone();
                self.handle_put(0, me, key, self.replication - 1, 0, data);
            } else {
                let (ring_req, out) = self.node.start_lookup(key);
                self.pending_repairs.insert(ring_req, key);
                self.send_all(out);
            }
        }
    }

    /// Sends ring traffic, forgetting dead hops and re-routing routed
    /// requests through the repaired ring (bounded by [`REROUTE_BUDGET`]).
    fn send_all(&mut self, msgs: Vec<(Addr, RingMsg)>) {
        let mut queue = msgs;
        let mut budget = REROUTE_BUDGET;
        while let Some((to, msg)) = queue.pop() {
            if self
                .transport
                .send_traced(to, &WireMsg::Ring(msg.clone()), self.cur_ctx)
                .is_ok()
            {
                continue;
            }
            self.record_send_failure(to);
            self.node.forget(to);
            let reroutable = matches!(msg, RingMsg::FindOwner { .. } | RingMsg::Join { .. });
            if reroutable && budget > 0 {
                budget -= 1;
                queue.extend(self.node.handle(msg));
            }
        }
    }

    /// Re-sends the join while the node has no ring pointers: either the
    /// original join or its ack was lost (boot-storm connect timeout),
    /// and the join handshake is the only path that can recover.
    fn retry_join_if_unjoined(&mut self) {
        let Some(seed) = self.seed else { return };
        if self.node.is_joined() {
            return;
        }
        let now = self.clock.now_us();
        if now.saturating_sub(self.last_join_attempt_us) < JOIN_RETRY_US {
            return;
        }
        self.last_join_attempt_us = now;
        self.registry.inc("node.join_retries");
        let trace_id = join_trace_id(self.node.me().id);
        let span = self.alloc_span();
        let join = RingMsg::Join {
            joiner: self.node.me(),
            hops: 0,
        };
        let ctx = TraceCtx {
            trace_id,
            span_id: span,
            hop: 1,
        };
        let sent = self
            .transport
            .send_traced(seed, &WireMsg::Ring(join), ctx)
            .is_ok();
        self.push_span(
            TraceCtx::root(trace_id),
            span,
            now,
            sent,
            "join.retry",
            format!("seed={seed}"),
        );
    }

    /// Flushes finished lookups: client lookups go back to the clients
    /// that asked; repair lookups turn into a re-put through the owner.
    fn drain_completed(&mut self) {
        for res in self.node.take_completed() {
            if let Some(p) = self.pending_lookups.remove(&res.req_id) {
                self.registry.observe("node.lookup_hops", res.hops as u64);
                let dur = self.clock.now_us().saturating_sub(p.start_us);
                self.registry.observe("node.lookup_us", dur);
                if p.ctx.is_traced() {
                    let span = self.alloc_span();
                    let (ctx, start) = (p.ctx, p.start_us);
                    self.push_span(
                        ctx,
                        span,
                        start,
                        true,
                        "lookup.done",
                        format!("hops={} owner={}", res.hops, res.owner.addr),
                    );
                }
                self.respond(
                    p.client,
                    p.req_id,
                    Response::Owner {
                        owner: res.owner,
                        hops: res.hops,
                    },
                );
            } else if let Some(key) = self.pending_repairs.remove(&res.req_id) {
                self.repair_rehome(key, res.owner.addr);
            }
        }
    }

    /// Second half of a non-owned-block repair: push the block to the
    /// owner the lookup found, which stores it and replicates down its
    /// own successor chain.
    fn repair_rehome(&mut self, key: Key, owner: Addr) {
        let me = self.node.me().addr;
        let Some(data) = self.store.get(&key).cloned() else {
            return;
        };
        if owner == me {
            // The lookup raced a ring change and we own the key after
            // all; the next repair round handles it as an owned block.
            return;
        }
        let put = WireMsg::Request {
            req_id: 0,
            from: me,
            body: Request::Put {
                key,
                fanout: self.replication.saturating_sub(1),
                stored: 0,
                data,
            },
        };
        if self.transport.send(owner, &put).is_err() {
            self.node.forget(owner);
        }
    }

    fn respond(&mut self, to: Addr, req_id: u64, body: Response) {
        let msg = WireMsg::Response { req_id, body };
        if self.transport.send(to, &msg).is_err() {
            // A client that vanished mid-request is not a node failure;
            // nothing to repair.
        }
    }
}

/// Maps [`WireMsg::type_name`] to a static `node.msgs_in.*` counter
/// name, so the per-message hot path allocates nothing.
fn msgs_in_counter(op: &str) -> &'static str {
    match op {
        "find_owner" => "node.msgs_in.find_owner",
        "owner_is" => "node.msgs_in.owner_is",
        "join" => "node.msgs_in.join",
        "join_ack" => "node.msgs_in.join_ack",
        "get_neighbors" => "node.msgs_in.get_neighbors",
        "neighbors" => "node.msgs_in.neighbors",
        "notify" => "node.msgs_in.notify",
        "lookup" => "node.msgs_in.lookup",
        "put" => "node.msgs_in.put",
        "get" => "node.msgs_in.get",
        "status" => "node.msgs_in.status",
        "metrics_dump" => "node.msgs_in.metrics_dump",
        "shutdown" => "node.msgs_in.shutdown",
        "owner" => "node.msgs_in.owner",
        "put_ack" => "node.msgs_in.put_ack",
        "block" => "node.msgs_in.block",
        "metrics" => "node.msgs_in.metrics",
        "shutdown_ack" => "node.msgs_in.shutdown_ack",
        _ => "node.msgs_in.other",
    }
}

/// Trace id of a node's join trace, folded from both halves of its key
/// so it is distinct whether the key was placed by ring fraction (top
/// bits populated) or built from a small integer (low bits populated).
fn join_trace_id(id: Key) -> u64 {
    let hi = (id.to_fraction() * u64::MAX as f64) as u64;
    (hi ^ id.to_u64_lossy()).max(1)
}
