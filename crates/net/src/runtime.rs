//! The per-node event loop, generic over the transport.
//!
//! A [`NodeRuntime`] is one live D2 node: the pure protocol state
//! machine ([`ProtocolNode`]), a local block store, and a
//! [`Transport`] endpoint. [`NodeRuntime::run`] drives it until a
//! [`Request::Shutdown`] arrives or the transport closes — the *same*
//! loop body whether the transport is an in-process channel or a TCP
//! socket, which is the whole point of the [`d2_wire`] seam.

use d2_ring::messages::{Addr, RingMsg};
use d2_ring::node::{NodeConfig, ProtocolNode};
use d2_types::Key;
use d2_wire::codec::{Request, Response, WireMsg, WireStatus};
use d2_wire::transport::{RecvError, Transport};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How long the event loop waits for traffic before running a
/// stabilization tick.
const TICK: Duration = Duration::from_millis(20);

/// How long an unjoined node waits before re-sending its join. Longer
/// than the TCP circuit breaker's backoff cap, so every retry is a real
/// connection attempt rather than a fail-fast inside the backoff window.
const JOIN_RETRY: Duration = Duration::from_millis(1_250);

/// Bounded local re-routing budget: when a hop turns out dead we forget
/// it and, for routed requests, immediately re-handle the message so it
/// takes the next-best route instead of being dropped.
const REROUTE_BUDGET: u32 = 64;

/// One live node: protocol state machine + block store + transport.
pub struct NodeRuntime<T: Transport> {
    node: ProtocolNode,
    store: HashMap<Key, Vec<u8>>,
    transport: T,
    /// Ring lookup id → (client addr, client req_id) awaiting the owner.
    pending_lookups: HashMap<u64, (Addr, u64)>,
    /// Join seed, kept so an unjoined node can retry: the one-shot join
    /// message (or its ack) can be lost to a connect timeout during a
    /// cluster-wide boot storm, and nothing else would ever re-send it.
    seed: Option<Addr>,
    last_join_attempt: Instant,
}

impl<T: Transport> NodeRuntime<T> {
    /// Creates the first node of a new ring at position `id`. The node's
    /// address is the transport's.
    pub fn bootstrap(id: Key, cfg: NodeConfig, transport: T) -> Self {
        let node = ProtocolNode::bootstrap(id, transport.local_addr(), cfg);
        NodeRuntime {
            node,
            store: HashMap::new(),
            transport,
            pending_lookups: HashMap::new(),
            seed: None,
            last_join_attempt: Instant::now(),
        }
    }

    /// Creates a node that joins an existing ring through `seed`,
    /// sending the initial join traffic immediately.
    pub fn join(id: Key, cfg: NodeConfig, transport: T, seed: Addr) -> Self {
        let (node, join_msgs) = ProtocolNode::join(id, transport.local_addr(), cfg, seed);
        let mut rt = NodeRuntime {
            node,
            store: HashMap::new(),
            transport,
            pending_lookups: HashMap::new(),
            seed: Some(seed),
            last_join_attempt: Instant::now(),
        };
        rt.send_all(join_msgs);
        rt
    }

    /// The node's transport address.
    pub fn local_addr(&self) -> Addr {
        self.transport.local_addr()
    }

    /// Runs the event loop until shutdown, then closes the transport.
    pub fn run(mut self) {
        loop {
            match self.transport.recv_timeout(TICK) {
                Err(RecvError::Timeout) => {
                    let out = self.node.tick();
                    self.send_all(out);
                    self.retry_join_if_unjoined();
                    self.drain_completed();
                }
                Err(RecvError::Closed) => break,
                Ok(WireMsg::Ring(m)) => {
                    let out = self.node.handle(m);
                    self.send_all(out);
                    self.drain_completed();
                }
                Ok(WireMsg::Request { req_id, from, body }) => {
                    if !self.handle_request(req_id, from, body) {
                        break;
                    }
                }
                // Nodes never issue requests, so stray responses (e.g. a
                // late PutAck racing a chain we forwarded) are dropped.
                Ok(WireMsg::Response { .. }) => {}
            }
        }
        self.transport.shutdown();
    }

    /// Handles one client request; returns `false` on shutdown.
    fn handle_request(&mut self, req_id: u64, from: Addr, body: Request) -> bool {
        match body {
            Request::Lookup { key } => {
                let (ring_req, out) = self.node.start_lookup(key);
                self.pending_lookups.insert(ring_req, (from, req_id));
                self.send_all(out);
                self.drain_completed();
            }
            Request::Put {
                key,
                fanout,
                stored,
                data,
            } => self.handle_put(req_id, from, key, fanout, stored, data),
            Request::Get { key } => {
                self.respond(
                    from,
                    req_id,
                    Response::Block {
                        data: self.store.get(&key).cloned(),
                    },
                );
            }
            Request::Status => {
                let status = WireStatus {
                    me: self.node.me(),
                    predecessor: self.node.predecessor(),
                    successors: self.node.successors().to_vec(),
                    blocks: self.store.len() as u64,
                };
                self.respond(from, req_id, Response::Status(status));
            }
            Request::Shutdown => {
                self.respond(from, req_id, Response::ShutdownAck);
                return false;
            }
        }
        true
    }

    /// Replica-chain store: write the local copy, then either forward
    /// down the successor list or — as the end of the chain — ack the
    /// original client directly. The ack therefore means *every*
    /// reachable replica is written, not merely the first.
    fn handle_put(
        &mut self,
        req_id: u64,
        from: Addr,
        key: Key,
        fanout: u32,
        stored: u32,
        data: Vec<u8>,
    ) {
        self.store.insert(key, data.clone());
        let stored = stored + 1;
        if fanout > 0 {
            let me = self.node.me().addr;
            let succs: Vec<Addr> = self
                .node
                .successors()
                .iter()
                .map(|p| p.addr)
                .filter(|&a| a != me)
                .collect();
            let forward = WireMsg::Request {
                req_id,
                from,
                body: Request::Put {
                    key,
                    fanout: fanout - 1,
                    stored,
                    data,
                },
            };
            for succ in succs {
                if self.transport.send(succ, &forward).is_ok() {
                    return; // the chain continues; its end will ack
                }
                self.node.forget(succ);
            }
            // No reachable successor: this node terminates the chain.
        }
        self.respond(from, req_id, Response::PutAck { replicas: stored });
    }

    /// Sends ring traffic, forgetting dead hops and re-routing routed
    /// requests through the repaired ring (bounded by [`REROUTE_BUDGET`]).
    fn send_all(&mut self, msgs: Vec<(Addr, RingMsg)>) {
        let mut queue = msgs;
        let mut budget = REROUTE_BUDGET;
        while let Some((to, msg)) = queue.pop() {
            if self.transport.send(to, &WireMsg::Ring(msg.clone())).is_ok() {
                continue;
            }
            self.node.forget(to);
            let reroutable = matches!(msg, RingMsg::FindOwner { .. } | RingMsg::Join { .. });
            if reroutable && budget > 0 {
                budget -= 1;
                queue.extend(self.node.handle(msg));
            }
        }
    }

    /// Re-sends the join while the node has no ring pointers: either the
    /// original join or its ack was lost (boot-storm connect timeout),
    /// and the join handshake is the only path that can recover.
    fn retry_join_if_unjoined(&mut self) {
        let Some(seed) = self.seed else { return };
        if self.node.is_joined() || self.last_join_attempt.elapsed() < JOIN_RETRY {
            return;
        }
        self.last_join_attempt = Instant::now();
        let join = RingMsg::Join {
            joiner: self.node.me(),
            hops: 0,
        };
        let _ = self.transport.send(seed, &WireMsg::Ring(join));
    }

    /// Flushes finished lookups back to the clients that asked.
    fn drain_completed(&mut self) {
        for res in self.node.take_completed() {
            if let Some((client, req_id)) = self.pending_lookups.remove(&res.req_id) {
                self.respond(
                    client,
                    req_id,
                    Response::Owner {
                        owner: res.owner,
                        hops: res.hops,
                    },
                );
            }
        }
    }

    fn respond(&mut self, to: Addr, req_id: u64, body: Response) {
        let msg = WireMsg::Response { req_id, body };
        if self.transport.send(to, &msg).is_err() {
            // A client that vanished mid-request is not a node failure;
            // nothing to repair.
        }
    }
}
