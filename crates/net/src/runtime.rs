//! The per-node event loop, generic over the transport and the clock.
//!
//! A [`NodeRuntime`] is one live D2 node: the pure protocol state
//! machine ([`ProtocolNode`]), a local block store, and a
//! [`Transport`] endpoint. [`NodeRuntime::run`] drives it until a
//! [`Request::Shutdown`] arrives or the transport closes — the *same*
//! loop body whether the transport is an in-process channel or a TCP
//! socket, which is the whole point of the [`d2_wire`] seam.
//!
//! The loop body is exposed as two single-step entry points so the
//! deterministic simulation harness (`d2-dst`) can drive the *identical*
//! runtime one event at a time with no threads and no sleeps:
//!
//! - [`NodeRuntime::on_message`] — handle exactly one incoming message;
//! - [`NodeRuntime::on_tick`] — run exactly one maintenance tick
//!   (stabilization, join retry, replica repair).
//!
//! All timeouts read time through the injected [`Clock`], so under a
//! [`crate::clock::SimClock`] every timeout decision is a pure function
//! of the schedule.

use crate::clock::{Clock, SystemClock};
use d2_ring::messages::{Addr, RingMsg};
use d2_ring::node::{NodeConfig, ProtocolNode};
use d2_types::Key;
use d2_wire::codec::{Request, Response, WireMsg, WireStatus};
use d2_wire::transport::{RecvError, Transport};
use std::collections::HashMap;
use std::time::Duration;

/// How long the event loop waits for traffic before running a
/// stabilization tick.
pub const TICK: Duration = Duration::from_millis(20);

/// How long an unjoined node waits before re-sending its join. Longer
/// than the TCP circuit breaker's backoff cap, so every retry is a real
/// connection attempt rather than a fail-fast inside the backoff window.
const JOIN_RETRY_US: u64 = 1_250_000;

/// Bounded local re-routing budget: when a hop turns out dead we forget
/// it and, for routed requests, immediately re-handle the message so it
/// takes the next-best route instead of being dropped.
const REROUTE_BUDGET: u32 = 64;

/// Ticks between replica-repair rounds (≈ 1.28 s of real time at the
/// 20 ms tick). Each round re-pushes owned blocks down the successor
/// chain and re-homes blocks this node holds but no longer owns, so the
/// replica count converges back to the configured factor after churn.
const REPAIR_EVERY_TICKS: u64 = 64;

/// One live node: protocol state machine + block store + transport.
pub struct NodeRuntime<T: Transport, C: Clock = SystemClock> {
    node: ProtocolNode,
    store: HashMap<Key, Vec<u8>>,
    transport: T,
    clock: C,
    /// Ring lookup id → (client addr, client req_id) awaiting the owner.
    pending_lookups: HashMap<u64, (Addr, u64)>,
    /// Ring lookup id → key of a repair re-home awaiting the owner.
    pending_repairs: HashMap<u64, Key>,
    /// Join seed, kept so an unjoined node can retry: the one-shot join
    /// message (or its ack) can be lost to a connect timeout during a
    /// cluster-wide boot storm, and nothing else would ever re-send it.
    seed: Option<Addr>,
    last_join_attempt_us: u64,
    /// Replica-maintenance target (`0` disables repair). Put chains are
    /// always driven by the client's requested fanout; this only governs
    /// the periodic background repair.
    replication: u32,
    ticks: u64,
}

impl<T: Transport> NodeRuntime<T, SystemClock> {
    /// Creates the first node of a new ring at position `id`. The node's
    /// address is the transport's.
    pub fn bootstrap(id: Key, cfg: NodeConfig, transport: T) -> Self {
        Self::bootstrap_with_clock(id, cfg, transport, SystemClock::default())
    }

    /// Creates a node that joins an existing ring through `seed`,
    /// sending the initial join traffic immediately.
    pub fn join(id: Key, cfg: NodeConfig, transport: T, seed: Addr) -> Self {
        Self::join_with_clock(id, cfg, transport, seed, SystemClock::default())
    }
}

impl<T: Transport, C: Clock> NodeRuntime<T, C> {
    /// [`NodeRuntime::bootstrap`] with an explicit clock (used by the
    /// deterministic simulation harness to inject virtual time).
    pub fn bootstrap_with_clock(id: Key, cfg: NodeConfig, transport: T, clock: C) -> Self {
        let node = ProtocolNode::bootstrap(id, transport.local_addr(), cfg);
        let now = clock.now_us();
        NodeRuntime {
            node,
            store: HashMap::new(),
            transport,
            clock,
            pending_lookups: HashMap::new(),
            pending_repairs: HashMap::new(),
            seed: None,
            last_join_attempt_us: now,
            replication: 0,
            ticks: 0,
        }
    }

    /// [`NodeRuntime::join`] with an explicit clock.
    pub fn join_with_clock(id: Key, cfg: NodeConfig, transport: T, seed: Addr, clock: C) -> Self {
        let (node, join_msgs) = ProtocolNode::join(id, transport.local_addr(), cfg, seed);
        let now = clock.now_us();
        let mut rt = NodeRuntime {
            node,
            store: HashMap::new(),
            transport,
            clock,
            pending_lookups: HashMap::new(),
            pending_repairs: HashMap::new(),
            seed: Some(seed),
            last_join_attempt_us: now,
            replication: 0,
            ticks: 0,
        };
        rt.send_all(join_msgs);
        rt
    }

    /// Sets the replica-maintenance target: background repair keeps
    /// every owned block on the owner plus `replicas - 1` successors.
    /// `0` (the default) disables repair.
    pub fn set_replication(&mut self, replicas: u32) {
        self.replication = replicas;
    }

    /// The node's transport address.
    pub fn local_addr(&self) -> Addr {
        self.transport.local_addr()
    }

    /// Read-only view of the protocol state machine (ring pointers),
    /// used by the simulation harness's invariant checkers.
    pub fn protocol(&self) -> &ProtocolNode {
        &self.node
    }

    /// Read-only view of the local block store, used by the simulation
    /// harness's storage invariant checkers.
    pub fn blocks(&self) -> &HashMap<Key, Vec<u8>> {
        &self.store
    }

    /// Runs the event loop until shutdown, then closes the transport.
    pub fn run(mut self) {
        loop {
            match self.transport.recv_timeout(TICK) {
                Err(RecvError::Timeout) => self.on_tick(),
                Err(RecvError::Closed) => break,
                Ok(msg) => {
                    if !self.on_message(msg) {
                        break;
                    }
                }
            }
        }
        self.transport.shutdown();
    }

    /// Handles exactly one incoming message; returns `false` when the
    /// message was a shutdown request and the loop should exit.
    pub fn on_message(&mut self, msg: WireMsg) -> bool {
        match msg {
            WireMsg::Ring(m) => {
                let out = self.node.handle(m);
                self.send_all(out);
                self.drain_completed();
                true
            }
            WireMsg::Request { req_id, from, body } => self.handle_request(req_id, from, body),
            // Nodes only issue fire-and-forget repair puts, so responses
            // (e.g. a repair chain's PutAck, or a late client PutAck
            // racing a chain we forwarded) are dropped.
            WireMsg::Response { .. } => true,
        }
    }

    /// Runs exactly one maintenance tick: stabilization probes, join
    /// retry while unjoined, and (every [`REPAIR_EVERY_TICKS`]) one
    /// replica-repair round.
    pub fn on_tick(&mut self) {
        let out = self.node.tick();
        self.send_all(out);
        self.retry_join_if_unjoined();
        self.ticks += 1;
        if self.replication > 0 && self.ticks % REPAIR_EVERY_TICKS == 0 {
            self.repair_round();
        }
        self.drain_completed();
    }

    /// Handles one client request; returns `false` on shutdown.
    fn handle_request(&mut self, req_id: u64, from: Addr, body: Request) -> bool {
        match body {
            Request::Lookup { key } => {
                let (ring_req, out) = self.node.start_lookup(key);
                self.pending_lookups.insert(ring_req, (from, req_id));
                self.send_all(out);
                self.drain_completed();
            }
            Request::Put {
                key,
                fanout,
                stored,
                data,
            } => self.handle_put(req_id, from, key, fanout, stored, data),
            Request::Get { key } => {
                self.respond(
                    from,
                    req_id,
                    Response::Block {
                        data: self.store.get(&key).cloned(),
                    },
                );
            }
            Request::Status => {
                let status = WireStatus {
                    me: self.node.me(),
                    predecessor: self.node.predecessor(),
                    successors: self.node.successors().to_vec(),
                    blocks: self.store.len() as u64,
                };
                self.respond(from, req_id, Response::Status(status));
            }
            Request::Shutdown => {
                self.respond(from, req_id, Response::ShutdownAck);
                return false;
            }
        }
        true
    }

    /// Replica-chain store: write the local copy, then either forward
    /// down the successor list or — as the end of the chain — ack the
    /// original client directly. The ack therefore means *every*
    /// reachable replica is written, not merely the first.
    fn handle_put(
        &mut self,
        req_id: u64,
        from: Addr,
        key: Key,
        fanout: u32,
        stored: u32,
        data: Vec<u8>,
    ) {
        self.store.insert(key, data.clone());
        let stored = stored + 1;
        if fanout > 0 {
            let me = self.node.me().addr;
            let succs: Vec<Addr> = self
                .node
                .successors()
                .iter()
                .map(|p| p.addr)
                .filter(|&a| a != me)
                .collect();
            let forward = WireMsg::Request {
                req_id,
                from,
                body: Request::Put {
                    key,
                    fanout: fanout - 1,
                    stored,
                    data,
                },
            };
            for succ in succs {
                if self.transport.send(succ, &forward).is_ok() {
                    return; // the chain continues; its end will ack
                }
                self.node.forget(succ);
            }
            // No reachable successor: this node terminates the chain.
        }
        self.respond(from, req_id, Response::PutAck { replicas: stored });
    }

    /// One replica-repair round. Two cases per held block:
    ///
    /// - we *own* the key: re-push the chain so the next `replication-1`
    ///   successors hold a copy (heals replicas lost to crash-restarts);
    /// - we do *not* own the key (the ring moved around us, or we are a
    ///   surviving replica of a dead owner): look the owner up and
    ///   re-put the block through it, restoring the canonical
    ///   owner-plus-successors placement.
    ///
    /// Repair puts carry `from = self`, so the chain's final PutAck
    /// comes back here and is dropped as a stray response — no client
    /// is waiting on it. Blocks are never deleted: an over-replicated
    /// stale copy is garbage, a deleted last copy is data loss.
    fn repair_round(&mut self) {
        if !self.node.is_joined() {
            return;
        }
        let me = self.node.me().addr;
        // Sorted so repair traffic is emitted in a deterministic order —
        // HashMap iteration order would otherwise leak the process's
        // random hasher seed into the simulation harness's schedules.
        let mut owned: Vec<Key> = self.store.keys().copied().collect();
        owned.sort_unstable();
        for key in owned {
            let owns = match self.node.owned_range() {
                Some(r) => r.contains(&key),
                None => false,
            };
            if owns {
                if self.replication < 2 {
                    continue;
                }
                let data = self.store[&key].clone();
                self.handle_put(0, me, key, self.replication - 1, 0, data);
            } else {
                let (ring_req, out) = self.node.start_lookup(key);
                self.pending_repairs.insert(ring_req, key);
                self.send_all(out);
            }
        }
    }

    /// Sends ring traffic, forgetting dead hops and re-routing routed
    /// requests through the repaired ring (bounded by [`REROUTE_BUDGET`]).
    fn send_all(&mut self, msgs: Vec<(Addr, RingMsg)>) {
        let mut queue = msgs;
        let mut budget = REROUTE_BUDGET;
        while let Some((to, msg)) = queue.pop() {
            if self.transport.send(to, &WireMsg::Ring(msg.clone())).is_ok() {
                continue;
            }
            self.node.forget(to);
            let reroutable = matches!(msg, RingMsg::FindOwner { .. } | RingMsg::Join { .. });
            if reroutable && budget > 0 {
                budget -= 1;
                queue.extend(self.node.handle(msg));
            }
        }
    }

    /// Re-sends the join while the node has no ring pointers: either the
    /// original join or its ack was lost (boot-storm connect timeout),
    /// and the join handshake is the only path that can recover.
    fn retry_join_if_unjoined(&mut self) {
        let Some(seed) = self.seed else { return };
        if self.node.is_joined() {
            return;
        }
        let now = self.clock.now_us();
        if now.saturating_sub(self.last_join_attempt_us) < JOIN_RETRY_US {
            return;
        }
        self.last_join_attempt_us = now;
        let join = RingMsg::Join {
            joiner: self.node.me(),
            hops: 0,
        };
        let _ = self.transport.send(seed, &WireMsg::Ring(join));
    }

    /// Flushes finished lookups: client lookups go back to the clients
    /// that asked; repair lookups turn into a re-put through the owner.
    fn drain_completed(&mut self) {
        for res in self.node.take_completed() {
            if let Some((client, req_id)) = self.pending_lookups.remove(&res.req_id) {
                self.respond(
                    client,
                    req_id,
                    Response::Owner {
                        owner: res.owner,
                        hops: res.hops,
                    },
                );
            } else if let Some(key) = self.pending_repairs.remove(&res.req_id) {
                self.repair_rehome(key, res.owner.addr);
            }
        }
    }

    /// Second half of a non-owned-block repair: push the block to the
    /// owner the lookup found, which stores it and replicates down its
    /// own successor chain.
    fn repair_rehome(&mut self, key: Key, owner: Addr) {
        let me = self.node.me().addr;
        let Some(data) = self.store.get(&key).cloned() else {
            return;
        };
        if owner == me {
            // The lookup raced a ring change and we own the key after
            // all; the next repair round handles it as an owned block.
            return;
        }
        let put = WireMsg::Request {
            req_id: 0,
            from: me,
            body: Request::Put {
                key,
                fanout: self.replication.saturating_sub(1),
                stored: 0,
                data,
            },
        };
        if self.transport.send(owner, &put).is_err() {
            self.node.forget(owner);
        }
    }

    fn respond(&mut self, to: Addr, req_id: u64, body: Response) {
        let msg = WireMsg::Response { req_id, body };
        if self.transport.send(to, &msg).is_err() {
            // A client that vanished mid-request is not a node failure;
            // nothing to repair.
        }
    }
}
