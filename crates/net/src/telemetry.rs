//! Rendering for the cluster telemetry plane: the `d2-node top` table.
//!
//! A [`ClusterScrape`] (one [`Request::MetricsDump`] round trip per
//! node) carries everything shown here: per-node registries, the merged
//! cluster registry, and every node's flight-recorder spans. This
//! module only formats — merging happens in [`crate::ops`], so the
//! numbers printed for a live TCP cluster and the ones a simulation
//! run reports come from the same code path.
//!
//! [`Request::MetricsDump`]: d2_wire::codec::Request::MetricsDump

use crate::ops::ClusterScrape;
use d2_obs::SpanRecord;
use d2_ring::messages::Addr;

/// How many slow/failed spans the top view lists.
const NOTABLE_ROWS: usize = 8;

/// Pads each cell so columns line up, left-aligning the first column
/// and right-aligning the rest (numbers).
fn render_rows(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<w$}", w = widths[i]));
            } else {
                out.push_str(&format!("{cell:>w$}", w = widths[i]));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    fmt_row(&mut out, &header);
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Sum of every counter whose name starts with `prefix`.
fn prefixed_sum(reg: &d2_obs::Registry, prefix: &str) -> u64 {
    reg.counters()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(_, v)| v)
        .sum()
}

/// Renders the `d2-node top` view: one row per scraped node, the merged
/// cluster distributions, and the slowest / failed recent operations
/// with their trace ids. `fmt_addr` turns transport addresses into
/// something readable (`ip:port` for TCP, the raw index for channels).
pub fn render_top(scrape: &ClusterScrape, fmt_addr: &dyn Fn(Addr) -> String) -> String {
    let mut out = String::new();

    // ---- per-node table -------------------------------------------
    let mut rows: Vec<Vec<String>> = Vec::new();
    for n in &scrape.nodes {
        let reg = &n.registry;
        let pos = reg.gauge("node.ring_position").unwrap_or(0.0);
        let blocks = reg.gauge("node.blocks").unwrap_or(0.0) as u64;
        let msgs_in = prefixed_sum(reg, "node.msgs_in.");
        let net_msgs = reg.counter("net.msgs");
        let reconnects = reg.counter("net.reconnects");
        let (l_p50, l_p99) = match reg.histogram("node.lookup_us") {
            Some(h) => {
                let s = h.snapshot();
                (s.p50, s.p99)
            }
            None => (0, 0),
        };
        rows.push(vec![
            fmt_addr(n.addr),
            format!("{pos:.4}"),
            blocks.to_string(),
            msgs_in.to_string(),
            net_msgs.to_string(),
            reconnects.to_string(),
            reg.counter("node.lookups").to_string(),
            reg.counter("node.puts").to_string(),
            l_p50.to_string(),
            l_p99.to_string(),
            reg.counter("node.send_failures").to_string(),
        ]);
    }
    out.push_str(&format!(
        "cluster: {} node(s) scraped\n",
        scrape.nodes.len()
    ));
    out.push_str(&render_rows(
        &[
            "node", "pos", "blocks", "msgs_in", "net_msgs", "reconn", "lookups", "puts",
            "lk_p50us", "lk_p99us", "sendfail",
        ],
        &rows,
    ));

    // ---- erasure-coding table (only when any node runs EC) ---------
    let ec_active = scrape.nodes.iter().any(|n| {
        n.registry.gauge("ec.fragments").is_some()
            || n.registry
                .counters()
                .any(|(name, _)| name.starts_with("ec."))
    });
    if ec_active {
        let mut ec_rows: Vec<Vec<String>> = Vec::new();
        for n in &scrape.nodes {
            let reg = &n.registry;
            ec_rows.push(vec![
                fmt_addr(n.addr),
                (reg.gauge("ec.fragments").unwrap_or(0.0) as u64).to_string(),
                (reg.gauge("ec.repair_queue").unwrap_or(0.0) as u64).to_string(),
                reg.counter("ec.decode_fallbacks").to_string(),
                reg.counter("ec.repaired_fragments").to_string(),
                reg.counter("ec.repair_bytes").to_string(),
                reg.counter("ec.repair_throttled_bytes").to_string(),
                reg.counter("ec.repairs_skipped_lazy").to_string(),
                reg.counter("ec.corrupt_fragments").to_string(),
            ]);
        }
        out.push_str("\nerasure coding\n");
        out.push_str(&render_rows(
            &[
                "node",
                "frags",
                "rq",
                "dec_fb",
                "repaired",
                "rep_B",
                "throttled_B",
                "lazy_skip",
                "corrupt",
            ],
            &ec_rows,
        ));
    }

    // ---- merged cluster distributions ------------------------------
    let mut dist_rows: Vec<Vec<String>> = Vec::new();
    for (name, h) in scrape.merged.histograms() {
        let s = h.snapshot();
        dist_rows.push(vec![
            name.to_string(),
            s.count.to_string(),
            format!("{:.1}", h.mean()),
            s.p50.to_string(),
            s.p90.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
        ]);
    }
    if !dist_rows.is_empty() {
        out.push_str("\nmerged distributions\n");
        out.push_str(&render_rows(
            &["metric", "count", "mean", "p50", "p90", "p99", "max"],
            &dist_rows,
        ));
    }

    // ---- slowest / failed recent spans -----------------------------
    let mut spans = scrape.all_spans();
    spans.sort_by(|a, b| {
        (b.dur_us, a.ok, a.trace_id, a.span_id).cmp(&(a.dur_us, b.ok, b.trace_id, b.span_id))
    });
    spans.retain(|s| !s.ok || s.dur_us > 0);
    spans.truncate(NOTABLE_ROWS);
    if !spans.is_empty() {
        out.push_str("\nslowest recent ops\n");
        let rows: Vec<Vec<String>> = spans
            .iter()
            .map(|s| {
                vec![
                    format!("{:#018x}", s.trace_id),
                    fmt_addr(s.node as Addr),
                    s.op.clone(),
                    format!("{}us", s.dur_us),
                    if s.ok { "ok".into() } else { "FAIL".into() },
                ]
            })
            .collect();
        out.push_str(&render_rows(
            &["trace", "node", "op", "dur", "status"],
            &rows,
        ));
    }
    out
}

/// Renders the spans of one collected trace as a causal tree.
/// `fmt_addr` turns the span's node field (a packed transport address)
/// into something readable, exactly as in [`render_top`].
pub fn render_trace(spans: &[SpanRecord], fmt_addr: &dyn Fn(Addr) -> String) -> String {
    d2_obs::render_span_tree_with(spans, &|n| fmt_addr(n as Addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NodeScrape;
    use d2_obs::Registry;

    fn scrape_with_two_nodes() -> ClusterScrape {
        let mut a = Registry::new();
        a.inc("node.msgs_in.lookup");
        a.inc("node.lookups");
        a.set_gauge("node.ring_position", 0.25);
        a.set_gauge("node.blocks", 3.0);
        a.observe("node.lookup_us", 120);
        let mut b = Registry::new();
        b.add("node.msgs_in.put", 2);
        b.inc("node.puts");
        b.set_gauge("node.ring_position", 0.75);
        b.observe("node.lookup_us", 480);
        let mut merged = Registry::new();
        merged.merge(&a);
        merged.merge(&b);
        let span = SpanRecord {
            trace_id: 0xAB,
            span_id: 7,
            parent_span_id: 0,
            hop: 0,
            node: 1,
            start_us: 10,
            dur_us: 55_000,
            ok: false,
            op: "put".into(),
            detail: String::new(),
        };
        ClusterScrape {
            nodes: vec![
                NodeScrape {
                    addr: 0,
                    registry: a,
                    spans: vec![],
                },
                NodeScrape {
                    addr: 1,
                    registry: b,
                    spans: vec![span],
                },
            ],
            merged,
        }
    }

    #[test]
    fn top_view_shows_nodes_merged_histograms_and_slow_ops() {
        let scrape = scrape_with_two_nodes();
        let top = render_top(&scrape, &|a| format!("n{a}"));
        assert!(top.contains("2 node(s) scraped"));
        assert!(top.contains("n0"));
        assert!(top.contains("0.2500"));
        assert!(top.contains("node.lookup_us"));
        // Merged histogram sees both samples.
        assert!(top.contains("merged distributions"));
        assert_eq!(
            scrape.merged.histogram("node.lookup_us").unwrap().count(),
            2
        );
        // The failed slow put surfaces with its trace id.
        assert!(top.contains("slowest recent ops"));
        assert!(top.contains("0x00000000000000ab"));
        assert!(top.contains("FAIL"));
        // No node reports ec.* — the erasure-coding table is omitted.
        assert!(!top.contains("erasure coding"));
    }

    #[test]
    fn top_view_shows_ec_table_when_a_node_runs_ec() {
        let mut scrape = scrape_with_two_nodes();
        let reg = &mut scrape.nodes[0].registry;
        reg.set_gauge("ec.fragments", 12.0);
        reg.set_gauge("ec.repair_queue", 2.0);
        reg.add("ec.decode_fallbacks", 3);
        reg.add("ec.repair_bytes", 4096);
        reg.add("ec.repair_throttled_bytes", 512);
        let top = render_top(&scrape, &|a| format!("n{a}"));
        assert!(top.contains("erasure coding"));
        assert!(top.contains("throttled_B"));
        assert!(top.contains("12"));
        assert!(top.contains("4096"));
        // The node without ec.* still gets a (zeroed) row.
        assert!(top.lines().any(|l| l.starts_with("n1") && l.contains('0')));
    }

    #[test]
    fn top_view_of_empty_scrape_is_still_renderable() {
        let scrape = ClusterScrape {
            nodes: vec![],
            merged: Registry::new(),
        };
        let top = render_top(&scrape, &|a| a.to_string());
        assert!(top.contains("0 node(s) scraped"));
    }
}
