//! The windowed batch API ([`ClusterOps::put_many`] /
//! [`ClusterOps::get_many`]) against an in-process channel cluster:
//! every op resolves to the right key, misses read as misses, and
//! failures stay per-op.

use d2_net::{Deployment, PipelineConfig};
use d2_types::{D2Error, Key};
use std::time::Duration;

fn cfg(window: usize) -> PipelineConfig {
    PipelineConfig {
        window,
        // Short per-op timeout: lookups dropped during ring
        // stabilization retry quickly instead of stalling the test.
        op_timeout: Duration::from_secs(1),
    }
}

#[test]
fn put_many_then_get_many_round_trips_every_key() {
    let d = Deployment::launch(5, 2);
    let items: Vec<(Key, Vec<u8>)> = (0..40u64)
        .map(|i| (Key::from_u64(i), format!("block-{i}").into_bytes()))
        .collect();
    let keys: Vec<Key> = items.iter().map(|(k, _)| *k).collect();

    let puts = d.ops().put_many(items, 2, cfg(8));
    assert_eq!(puts.len(), 40);
    for p in &puts {
        let written = *p.result.as_ref().expect("batch put failed");
        assert!(written >= 1, "put {} wrote no replica", p.index);
        assert!(p.latency > Duration::ZERO);
    }

    let gets = d.ops().get_many(&keys, cfg(8));
    assert_eq!(gets.len(), 40);
    for (i, g) in gets.iter().enumerate() {
        assert_eq!(g.index, i, "outcomes come back in submission order");
        assert_eq!(g.key, keys[i]);
        assert_eq!(
            g.result.as_ref().expect("batch get failed"),
            &format!("block-{i}").into_bytes(),
            "get {i} returned the wrong block"
        );
    }
    d.shutdown();
}

#[test]
fn get_many_reports_misses_per_op() {
    let d = Deployment::launch(3, 1);
    d.ops()
        .put(Key::from_u64(1), b"present".to_vec(), 1)
        .unwrap();
    let keys = [Key::from_u64(1), Key::from_u64(999)];
    let gets = d.ops().get_many(&keys, cfg(4));
    assert_eq!(gets[0].result.as_ref().unwrap(), &b"present".to_vec());
    match &gets[1].result {
        Err(D2Error::NotFound(k)) => assert_eq!(*k, Key::from_u64(999)),
        other => panic!("expected NotFound for missing key, got {other:?}"),
    }
    d.shutdown();
}

#[test]
fn window_of_one_degrades_to_serial_but_still_completes() {
    let d = Deployment::launch(3, 1);
    let items: Vec<(Key, Vec<u8>)> = (100..110u64)
        .map(|i| (Key::from_u64(i), vec![i as u8; 32]))
        .collect();
    let puts = d.ops().put_many(items, 1, cfg(1));
    assert!(puts.iter().all(|p| p.result.is_ok()));
    d.shutdown();
}
