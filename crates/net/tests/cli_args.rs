//! Exit-code contract of the `d2-node` binary: argument errors exit 2
//! with usage on stderr, operational failures exit 1, successes exit 0.
//! Scripts (scripts/tcp_cluster.sh, operators' tooling) key off these
//! codes, so they are a public interface.

use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

fn d2_node(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_d2-node"));
    cmd.args(args).stdin(Stdio::null());
    cmd
}

/// Runs to completion and returns (exit code, stderr).
fn run(args: &[&str]) -> (i32, String) {
    let out = d2_node(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn d2-node");
    (
        out.status.code().expect("no exit code"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A TCP port that nothing is listening on (bound, then released).
fn dead_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

#[test]
fn bad_arguments_exit_2_with_usage() {
    let cases: &[&[&str]] = &[
        &[],                                                    // no subcommand
        &["frobnicate"],                                        // unknown subcommand
        &["serve"],                                             // missing --listen/--pos
        &["serve", "--listen", "127.0.0.1:0"],                  // missing --pos
        &["lookup", "--node", "127.0.0.1:1"],                   // missing key
        &["lookup", "--key-frac", "0.5"],                       // missing --node
        &["put", "--node", "127.0.0.1:1", "--key-frac", "0.5"], // missing --data
        &["status"],                                            // missing --node
        &["stop", "--node"],                                    // flag without value
        &["status", "--node", "127.0.0.1:1", "--bogus", "x"],   // unknown flag
        &["serve-many"],                                        // missing --nodes
        &["check"],                                             // missing --node
    ];
    for args in cases {
        let (code, stderr) = run(args);
        assert_eq!(code, 2, "args {args:?} should exit 2, stderr: {stderr}");
        assert!(!stderr.is_empty(), "args {args:?} should explain on stderr");
    }
}

#[test]
fn malformed_values_exit_2() {
    let cases: &[&[&str]] = &[
        &["status", "--node", "not-an-addr"],
        &["status", "--node", "example.org:80"], // hostnames are not IPv4 literals
        &["serve", "--listen", "127.0.0.1:0", "--pos", "1.5"], // pos out of [0,1]
        &["serve", "--listen", "127.0.0.1:0", "--pos", "abc"],
        &["lookup", "--node", "127.0.0.1:1", "--key-frac", "-0.25"],
        &["lookup", "--node", "127.0.0.1:1", "--key-u64", "twelve"],
        &[
            "put",
            "--node",
            "127.0.0.1:1",
            "--key-frac",
            "0.5",
            "--data",
            "x",
            "--replicas",
            "0",
        ],
        &["serve-many", "--nodes", "0"],    // zero nodes is nonsense
        &["serve-many", "--nodes", "many"], // not a number
        &["serve-many", "--nodes", "4", "--join-batch", "0"],
        &["serve-many", "--nodes", "4", "--tick-ms", "0"],
        &["check", "--node", "127.0.0.1:1", "--expect", "0"],
    ];
    for args in cases {
        let (code, stderr) = run(args);
        assert_eq!(code, 2, "args {args:?} should exit 2, stderr: {stderr}");
    }
}

#[test]
fn operations_against_dead_node_exit_1() {
    let node = format!("127.0.0.1:{}", dead_port());
    let cases: &[&[&str]] = &[
        &["lookup", "--node", &node, "--key-frac", "0.5"],
        &[
            "put",
            "--node",
            &node,
            "--key-frac",
            "0.5",
            "--data",
            "hello",
        ],
        &["get", "--node", &node, "--key-u64", "7"],
        &["status", "--node", &node],
        &["check", "--node", &node],
        &["stop", "--node", &node],
        &["stop", "--node", &node, "--all"],
    ];
    for args in cases {
        let (code, stderr) = run(args);
        assert_eq!(code, 1, "args {args:?} should exit 1, stderr: {stderr}");
        assert!(
            stderr.contains("failed"),
            "args {args:?} should report the failure, stderr: {stderr}"
        );
    }
}

/// Kills a serve child if a test assertion unwinds before `stop` lands.
struct Reap(Child);
impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_status_stop_roundtrip_exits_0() {
    let child = d2_node(&["serve", "--listen", "127.0.0.1:0", "--pos", "0.5"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut child = Reap(child);

    // The serve process prints the actual bound address first.
    let stdout = child.0.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout);
    let mut first = String::new();
    lines.read_line(&mut first).expect("read LISTEN line");
    let addr = first
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected LISTEN line, got {first:?}"))
        .to_string();

    let (code, stderr) = run(&["status", "--node", &addr]);
    assert_eq!(code, 0, "status against live node, stderr: {stderr}");

    let (code, stderr) = run(&["stop", "--node", &addr]);
    assert_eq!(code, 0, "stop against live node, stderr: {stderr}");

    let status = child.0.wait().expect("serve exit");
    assert_eq!(status.code(), Some(0), "serve should exit 0 after stop");
    // Drain any remaining output so the pipe closes cleanly.
    let mut rest = String::new();
    let _ = lines.read_to_string(&mut rest);
}
