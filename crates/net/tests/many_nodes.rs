//! End-to-end: a 200-node single-process cluster.
//!
//! Boots 200 nodes through [`ManyCluster`] (one reactor, one
//! multiplexer thread), waits for every join, polls the Zave ring
//! invariants to quiescence, stores replicated blocks through real
//! recursive lookups, verifies the storage invariant, asserts the OS
//! thread count stayed constant in N, then stops every node gracefully
//! over the wire and watches the cluster drain itself.

use d2_net::invariants::check_ring;
use d2_net::ops::ClusterOps;
use d2_net::{ManyCluster, ManyConfig, NodeStatus};
use d2_ring::messages::Addr;
use d2_types::Key;
use d2_wire::client::WireClient;
use d2_wire::metrics::NetMetrics;
use d2_wire::tcp::{TcpConfig, TcpTransport};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 200;
const REPLICAS: usize = 3;

/// Current OS thread count of this process, from /proc/self/status.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn scrape_statuses(ops: &ClusterOps<TcpTransport>, addrs: &[Addr]) -> Vec<NodeStatus> {
    addrs.iter().filter_map(|&a| ops.status_of(a)).collect()
}

#[test]
fn two_hundred_nodes_in_one_process() {
    let threads_before = os_threads();

    let metrics = Arc::new(NetMetrics::new());
    let mut cluster =
        ManyCluster::launch(ManyConfig::for_nodes(N), Arc::clone(&metrics)).expect("launch");
    assert!(
        cluster.wait_joined(Duration::from_secs(120)),
        "only {}/{N} nodes joined",
        cluster.joined()
    );
    assert_eq!(cluster.live(), N);

    // Constant thread budget: the multiplexer plus the reactor poller,
    // regardless of N. (The allowance leaves room for the harness.)
    let threads_during = os_threads();
    assert!(
        threads_during <= threads_before + 4,
        "thread count grew with N: {threads_before} -> {threads_during}"
    );

    // Client over its own transport (one more reactor + poller).
    let client_metrics = Arc::new(NetMetrics::new());
    let client = WireClient::new(
        TcpTransport::bind(
            Ipv4Addr::LOCALHOST,
            0,
            TcpConfig::default(),
            Arc::clone(&client_metrics),
        )
        .expect("bind client"),
        client_metrics,
    );
    let addrs: Vec<Addr> = cluster.addrs().to_vec();
    let ops = ClusterOps::new(client, addrs.clone());

    // Poll the Zave suite to quiescence: joined, corpse-free, ordered
    // successor lists, one sorted cycle, consistent predecessors.
    let deadline = Instant::now() + Duration::from_secs(120);
    let report = loop {
        let statuses = scrape_statuses(&ops, &addrs);
        let report = check_ring(&statuses);
        if statuses.len() == N && report.ok() {
            break report;
        }
        assert!(
            Instant::now() < deadline,
            "ring never quiesced; {}/{N} statuses, violations: {:?}",
            statuses.len(),
            report.violations.iter().take(8).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(250));
    };
    assert_eq!(report.nodes, N);

    // Replicated puts through recursive lookups; chain acks certify
    // every copy, so the storage invariant holds immediately.
    let keys: Vec<Key> = (0..50u64)
        .map(|i| Key::from_u64_ordered(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect();
    for (i, &k) in keys.iter().enumerate() {
        let written = ops
            .put(k, format!("many-{i}").into_bytes(), REPLICAS)
            .unwrap_or_else(|e| panic!("put {i}: {e}"));
        assert_eq!(written, REPLICAS, "put {i} wrote a short chain");
    }
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(
            ops.get(k, REPLICAS)
                .unwrap_or_else(|e| panic!("get {i}: {e}")),
            format!("many-{i}").into_bytes()
        );
    }
    let report = check_ring(&scrape_statuses(&ops, &addrs));
    assert!(
        report.ok(),
        "violations after load: {:?}",
        report.violations
    );
    assert!(
        report.total_blocks >= keys.len() * REPLICAS,
        "storage invariant: {} blocks < {} puts x {REPLICAS} replicas",
        report.total_blocks,
        keys.len()
    );

    // Co-hosted nodes talk over the loopback fast path, not frames.
    let m = metrics.snapshot();
    assert!(
        m.counter("net.loopback_msgs") > 0,
        "no loopback fast-path traffic recorded"
    );

    // Graceful drain: stop every node over the wire; when the last
    // runtime goes, the multiplexer exits on its own.
    for &a in cluster.addrs() {
        assert!(ops.stop(a), "node {a} did not ack shutdown");
    }
    assert!(
        cluster.wait_finished(Duration::from_secs(30)),
        "multiplexer did not exit after all nodes stopped ({} live)",
        cluster.live()
    );
    assert_eq!(cluster.live(), 0);
    cluster.shutdown();
}
