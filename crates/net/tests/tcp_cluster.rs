//! End-to-end: a real multi-process D2 cluster on localhost.
//!
//! Boots nine `d2-node` processes over TCP, stores replicated blocks
//! through real recursive lookups, crash-kills one process, verifies the
//! ring heals and every block stays readable, then shuts the cluster
//! down gracefully and checks the exported `net.*` metrics.

use d2_net::ops::ClusterOps;
use d2_ring::messages::Addr;
use d2_types::Key;
use d2_wire::client::WireClient;
use d2_wire::metrics::NetMetrics;
use d2_wire::tcp::{pack_addr, TcpConfig, TcpTransport};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{Ipv4Addr, SocketAddrV4};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kills the child on drop so a failed assertion never leaks processes.
struct NodeProc {
    child: Child,
    addr: Addr,
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_node(pos: f64, seed: Option<SocketAddrV4>, obs_out: Option<&str>) -> NodeProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_d2-node"));
    cmd.arg("serve")
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--pos")
        .arg(format!("{pos}"))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(seed) = seed {
        cmd.arg("--seed").arg(format!("{seed}"));
    }
    if let Some(path) = obs_out {
        cmd.arg("--obs-out").arg(path);
    }
    let mut child = cmd.spawn().expect("spawn d2-node");
    // The node prints `LISTEN ip:port` once the listener is bound, which
    // makes port discovery race-free.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTEN line");
    let sock: SocketAddrV4 = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse LISTEN addr");
    NodeProc {
        child,
        addr: pack_addr(sock),
    }
}

/// Following successor pointers from `start` visits every live node.
fn ring_is_consistent(
    start: Addr,
    statuses: &HashMap<Addr, d2_net::NodeStatus>,
    live: &[Addr],
) -> bool {
    let mut cur = start;
    let mut seen = 0usize;
    for _ in 0..live.len() {
        seen += 1;
        let Some(s) = statuses.get(&cur) else {
            return false;
        };
        let Some(next) = s.successors.first() else {
            return false;
        };
        if !live.contains(&next.addr) {
            return false;
        }
        cur = next.addr;
        if cur == start {
            break;
        }
    }
    seen == live.len() && cur == start
}

fn wait_stable(ops: &ClusterOps<TcpTransport>, live: &[Addr], what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let statuses: HashMap<Addr, d2_net::NodeStatus> = live
            .iter()
            .filter_map(|&a| ops.status_of(a).map(|s| (a, s)))
            .collect();
        // Predecessors must be live too: ownership ranges derive from
        // them, so a stale dead predecessor leaves a key range unowned.
        let preds_live = statuses.values().all(|s| {
            s.predecessor
                .map(|p| live.contains(&p.addr))
                .unwrap_or(false)
        });
        if statuses.len() == live.len()
            && preds_live
            && ring_is_consistent(live[0], &statuses, live)
        {
            return;
        }
        if Instant::now() >= deadline {
            let mut shape = String::new();
            for &a in live {
                use std::fmt::Write;
                match statuses.get(&a) {
                    Some(s) => writeln!(
                        shape,
                        "  {a}: pred={:?} succs={:?}",
                        s.predecessor.map(|p| p.addr),
                        s.successors.iter().map(|p| p.addr).collect::<Vec<_>>()
                    )
                    .unwrap(),
                    None => writeln!(shape, "  {a}: <no status>").unwrap(),
                }
            }
            panic!(
                "{what}: ring failed to stabilize; have {}/{} statuses\n{shape}",
                statuses.len(),
                live.len()
            );
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn test_keys() -> Vec<Key> {
    (1..=12u64)
        .map(|i| Key::from_fraction(i as f64 / 13.0))
        .collect()
}

#[test]
fn nine_process_tcp_cluster_survives_a_crash() {
    const N: usize = 9;
    const REPLICAS: usize = 3;
    let obs_path = std::env::temp_dir().join(format!("d2-node-obs-{}.jsonl", std::process::id()));
    let obs_path = obs_path.to_str().expect("utf8 temp path").to_string();
    let _ = std::fs::remove_file(&obs_path);

    // Boot the seed, then join the rest through it.
    let seed = spawn_node(0.5 / N as f64, None, Some(&obs_path));
    let seed_sock = d2_wire::tcp::unpack_addr(seed.addr);
    let mut procs = vec![seed];
    for i in 1..N {
        procs.push(spawn_node(
            (i as f64 + 0.5) / N as f64,
            Some(seed_sock),
            None,
        ));
    }
    let mut live: Vec<Addr> = procs.iter().map(|p| p.addr).collect();

    let metrics = Arc::new(NetMetrics::new());
    let client = WireClient::new(
        TcpTransport::bind(
            Ipv4Addr::LOCALHOST,
            0,
            TcpConfig::default(),
            metrics.clone(),
        )
        .expect("bind client"),
        metrics,
    );
    let ops = ClusterOps::new(client, live.clone());

    wait_stable(&ops, &live, "after boot");

    // Store replicated blocks; the ack certifies the whole chain, so
    // reads immediately afterwards need no settling sleep.
    for (i, &k) in test_keys().iter().enumerate() {
        let written = ops
            .put(k, format!("block-{i}").into_bytes(), REPLICAS)
            .unwrap_or_else(|e| panic!("put {i}: {e}"));
        assert_eq!(written, REPLICAS, "put {i} wrote a short chain");
    }
    for (i, &k) in test_keys().iter().enumerate() {
        assert_eq!(
            ops.get(k, REPLICAS)
                .unwrap_or_else(|e| panic!("get {i}: {e}")),
            format!("block-{i}").into_bytes()
        );
    }

    // Lookups enter through rotating nodes and find the right owner.
    let owner = ops.lookup(Key::from_fraction(0.61)).expect("lookup");
    assert!(live.contains(&owner.addr));

    // A traced put: the lookup and the replica chain share one trace id,
    // and every node that touched the block recorded a span under it.
    let traced_key = Key::from_fraction(0.345);
    let (written, trace_id) = ops
        .put_traced(traced_key, b"traced-block".to_vec(), REPLICAS)
        .expect("traced put");
    assert_eq!(written, REPLICAS);

    // Ring discovery from the entry set enumerates the whole cluster.
    let discovered = ops.discover();
    for &a in &live {
        assert!(discovered.contains(&a), "discover missed node {a}");
    }

    // Remote scrape of all nine nodes, mid-run: the merged registry must
    // be exactly the sum of the per-node sheets (counters sum; each
    // node's private net.* counters are disjoint).
    let scrape = ops.scrape(&live);
    assert_eq!(scrape.nodes.len(), N, "scrape missed a node");
    for counter in ["net.msgs", "net.bytes_in", "net.bytes_out", "node.puts"] {
        let per_node: u64 = scrape
            .nodes
            .iter()
            .map(|n| n.registry.counter(counter))
            .sum();
        assert_eq!(
            scrape.merged.counter(counter),
            per_node,
            "merged {counter} disagrees with per-node sum"
        );
    }
    // Nodes talked TCP to each other, so the merged frame counters are
    // live, and every put fed the cluster-wide replica distribution.
    assert!(scrape.merged.counter("net.msgs") > 0);
    assert!(scrape.merged.counter("node.puts") >= test_keys().len() as u64);
    assert!(scrape.merged.histogram("node.put_replicas").is_some());

    // The traced put's spans are collectable from the flight recorders
    // and cover at least the replica chain.
    let spans = ops.collect_trace(trace_id);
    let span_nodes: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.node).collect();
    assert!(
        span_nodes.len() >= REPLICAS,
        "trace {trace_id:#x} seen on {} node(s), wanted >= {REPLICAS}; spans: {spans:?}",
        span_nodes.len()
    );
    // The chain put shows up as causally linked: some span's parent is
    // another collected span (cross-node parent/child edge).
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    assert!(
        spans
            .iter()
            .any(|s| s.parent_span_id != 0 && ids.contains(&s.parent_span_id)),
        "no cross-span causal edge in {spans:?}"
    );

    // Crash-kill one non-seed process (SIGKILL: no goodbye traffic).
    let victim = procs.remove(5);
    let victim_addr = victim.addr;
    drop(victim);
    live.retain(|&a| a != victim_addr);
    ops.set_entries(live.clone());

    wait_stable(&ops, &live, "after crash");

    // The healed ring passes the full Zave invariant suite: joined,
    // corpse-free, ordered successor lists, one sorted cycle,
    // consistent predecessors — the same checks `d2-node check` runs.
    // Polled: the suite asserts quiescent properties, and stabilization
    // may still be converging predecessors right after the heal.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let statuses: Vec<d2_net::NodeStatus> =
            live.iter().filter_map(|&a| ops.status_of(a)).collect();
        let report = d2_net::check_ring(&statuses);
        if statuses.len() == live.len() && report.ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healed ring never satisfied the invariant suite: {:?}",
            report.violations
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Every block survives the crash (replicas outlive one failure).
    for (i, &k) in test_keys().iter().enumerate() {
        assert_eq!(
            ops.get(k, REPLICAS)
                .unwrap_or_else(|e| panic!("get {i} after crash: {e}")),
            format!("block-{i}").into_bytes()
        );
    }

    // Graceful shutdown: every surviving node acks and its process exits.
    for p in &mut procs {
        assert!(ops.stop(p.addr), "node did not ack shutdown");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match p.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "node exited with {status}");
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "node did not exit after stop");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    // The seed exported live net.* metrics as JSONL.
    let obs = std::fs::read_to_string(&obs_path).expect("read obs JSONL");
    let last = obs.lines().last().expect("at least one snapshot line");
    // (RTT histograms live on the client side; a serving node exports
    // the frame counters.)
    for key in [
        "net.bytes_in",
        "net.bytes_out",
        "net.msgs",
        "net.reconnects",
    ] {
        assert!(last.contains(key), "obs line missing {key}: {last}");
    }
    let _ = std::fs::remove_file(&obs_path);
}
