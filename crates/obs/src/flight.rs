//! Causal trace context and the per-node flight recorder.
//!
//! One client operation (a lookup, a replicated put) fans out across
//! several nodes: the entry node forwards `FindOwner` around the ring,
//! the owner walks the put down its successor chain, the tail acks the
//! client directly. To reconstruct that story from a *running* cluster,
//! every wire frame carries a compact [`TraceCtx`] — `trace_id` names
//! the operation, `span_id` names the sender's handling step, `hop`
//! counts forwarding depth — and every node records a bounded ring
//! buffer of [`SpanRecord`]s (the [`FlightRecorder`]) that a scraper
//! can collect remotely and reassemble with [`render_span_tree`].
//!
//! Everything here is plain data with deterministic ordering, so the
//! DST harness can emit byte-identical span trees for the same seed.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Compact causal trace context carried in every wire envelope.
///
/// `trace_id == 0` means "untraced" — background chatter (stabilization
/// probes, metric scrapes) travels with [`TraceCtx::NONE`] and records
/// nothing. A traced message's receiver allocates its own span, records
/// it with `span_id` as the parent, and forwards child messages with
/// [`TraceCtx::child`] (same trace, new span, `hop + 1`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Names the end-to-end client operation; 0 = untraced.
    pub trace_id: u64,
    /// The sender's span: the parent of whatever the receiver records.
    pub span_id: u64,
    /// Forwarding depth so far (saturates at 255).
    pub hop: u8,
}

impl TraceCtx {
    /// The untraced context: all zeros, recorded nowhere.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
        hop: 0,
    };

    /// A fresh root context for a new client operation.
    pub fn root(trace_id: u64) -> Self {
        TraceCtx {
            trace_id,
            span_id: 0,
            hop: 0,
        }
    }

    /// Whether this context should be recorded and propagated.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }

    /// The context for a message caused by span `span_id` of this trace:
    /// same trace, new parent span, one hop deeper.
    pub fn child(&self, span_id: u64) -> Self {
        TraceCtx {
            trace_id: self.trace_id,
            span_id,
            hop: self.hop.saturating_add(1),
        }
    }
}

/// One recorded handling step on one node, causally linked to its
/// parent span by `parent_span_id` (0 = root: the client itself).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The operation this span belongs to.
    pub trace_id: u64,
    /// This span's own id (unique within the trace).
    pub span_id: u64,
    /// The span that caused this one; 0 when the client is the parent.
    pub parent_span_id: u64,
    /// Forwarding depth at which this span ran.
    pub hop: u8,
    /// Address of the node that recorded the span.
    pub node: u64,
    /// Start time in the recording node's clock, microseconds.
    pub start_us: u64,
    /// Duration, microseconds (0 for instantaneous handling steps).
    pub dur_us: u64,
    /// Whether the step succeeded (failed sends / missing blocks clear it).
    pub ok: bool,
    /// What ran: `"lookup"`, `"find_owner"`, `"put.chain"`, ...
    pub op: String,
    /// Free-form detail (key fraction, hop counts, replica counts).
    pub detail: String,
}

/// Default capacity of each flight-recorder ring.
pub const FLIGHT_CAPACITY: usize = 256;
/// Default slow-op threshold: spans at least this long are retained in
/// the notable ring even after the recent ring has evicted them.
pub const SLOW_THRESHOLD_US: u64 = 50_000;

/// A bounded in-memory recorder of recent spans plus a second ring of
/// *notable* ones (slow or failed), so a scrape shortly after an
/// incident still sees the interesting spans even under message load.
///
/// Memory is strictly bounded: two rings of at most `capacity` records
/// each; everything older is dropped (and counted in
/// [`FlightRecorder::dropped`]).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slow_us: u64,
    recent: VecDeque<SpanRecord>,
    notable: VecDeque<SpanRecord>,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FLIGHT_CAPACITY, SLOW_THRESHOLD_US)
    }
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` recent spans and
    /// `capacity` notable (slow ≥ `slow_us` or failed) spans.
    pub fn new(capacity: usize, slow_us: u64) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            slow_us,
            recent: VecDeque::new(),
            notable: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Records one span, evicting the oldest when full. Untraced spans
    /// (`trace_id == 0`) are ignored.
    pub fn push(&mut self, span: SpanRecord) {
        if span.trace_id == 0 {
            return;
        }
        if !span.ok || span.dur_us >= self.slow_us {
            if self.notable.len() == self.capacity {
                self.notable.pop_front();
            }
            self.notable.push_back(span.clone());
        }
        if self.recent.len() == self.capacity {
            self.recent.pop_front();
            self.dropped += 1;
        }
        self.recent.push_back(span);
    }

    /// Spans evicted from the recent ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of spans currently held in the recent ring.
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// Whether no spans are held.
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty() && self.notable.is_empty()
    }

    /// Every held span — recent plus still-notable — deduplicated by
    /// span id and sorted by `(start_us, trace_id, span_id)` so the
    /// snapshot is deterministic for a deterministic clock.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut out: Vec<SpanRecord> = Vec::with_capacity(self.recent.len());
        for span in self.recent.iter().chain(self.notable.iter()) {
            if seen.insert((span.trace_id, span.span_id)) {
                out.push(span.clone());
            }
        }
        out.sort_by(|a, b| {
            (a.start_us, a.trace_id, a.span_id).cmp(&(b.start_us, b.trace_id, b.span_id))
        });
        out
    }

    /// The notable (slow or failed) spans, oldest first.
    pub fn notable(&self) -> impl Iterator<Item = &SpanRecord> {
        self.notable.iter()
    }
}

/// Renders a set of spans (possibly from many nodes and many traces) as
/// indented causal trees, one per trace, ordered by trace id.
///
/// Spans whose parent is absent (recorded on a crashed node, or evicted
/// from a ring) are shown at the root level so partial traces still
/// read coherently. Timestamps are printed relative to the earliest
/// span of each trace; note that across *different* nodes' system
/// clocks they are only approximately comparable.
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    render_span_tree_with(spans, &|n| n.to_string())
}

/// [`render_span_tree`] with a caller-supplied node formatter, for
/// callers whose node ids are packed transport addresses rather than
/// small indices (`d2-node trace` prints `ip:port`).
pub fn render_span_tree_with(spans: &[SpanRecord], fmt_node: &dyn Fn(u64) -> String) -> String {
    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        if s.trace_id != 0 {
            by_trace.entry(s.trace_id).or_default().push(s);
        }
    }
    let mut out = String::new();
    for (trace_id, mut spans) in by_trace {
        spans.sort_by_key(|s| (s.start_us, s.span_id));
        let t0 = spans.first().map(|s| s.start_us).unwrap_or(0);
        let nodes: BTreeSet<u64> = spans.iter().map(|s| s.node).collect();
        out.push_str(&format!(
            "trace {:#018x} — {} span(s) across {} node(s)\n",
            trace_id,
            spans.len(),
            nodes.len()
        ));
        // Children keyed by parent span id, already in (start, span) order.
        let present: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for s in &spans {
            if s.parent_span_id != 0 && present.contains(&s.parent_span_id) {
                children.entry(s.parent_span_id).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        for root in roots {
            render_subtree(&mut out, root, &children, &mut visited, 1, t0, fmt_node);
        }
    }
    out
}

fn render_subtree(
    out: &mut String,
    span: &SpanRecord,
    children: &BTreeMap<u64, Vec<&SpanRecord>>,
    visited: &mut BTreeSet<u64>,
    depth: usize,
    t0: u64,
    fmt_node: &dyn Fn(u64) -> String,
) {
    if !visited.insert(span.span_id) {
        return; // malformed parent cycle: render each span once
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&format!(
        "+- [node {}] {} hop={} t=+{}us",
        fmt_node(span.node),
        span.op,
        span.hop,
        span.start_us.saturating_sub(t0)
    ));
    if span.dur_us > 0 {
        out.push_str(&format!(" dur={}us", span.dur_us));
    }
    if !span.detail.is_empty() {
        out.push(' ');
        out.push_str(&span.detail);
    }
    if !span.ok {
        out.push_str(" FAIL");
    }
    out.push('\n');
    if let Some(kids) = children.get(&span.span_id) {
        for kid in kids {
            render_subtree(out, kid, children, visited, depth + 1, t0, fmt_node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, hop: u8, node: u64, t: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span_id: parent,
            hop,
            node,
            start_us: t,
            dur_us: 0,
            ok: true,
            op: "step".into(),
            detail: String::new(),
        }
    }

    #[test]
    fn trace_ctx_child_advances_hop_and_parent() {
        let root = TraceCtx::root(42);
        assert!(root.is_traced());
        assert!(!TraceCtx::NONE.is_traced());
        let c = root.child(7);
        assert_eq!(c.trace_id, 42);
        assert_eq!(c.span_id, 7);
        assert_eq!(c.hop, 1);
        let mut deep = c;
        for _ in 0..300 {
            deep = deep.child(9);
        }
        assert_eq!(deep.hop, 255, "hop saturates");
    }

    #[test]
    fn recorder_bounds_memory_and_keeps_notable() {
        let mut rec = FlightRecorder::new(4, 1_000);
        // A failed span early on, then a flood of fast successes.
        let mut bad = span(1, 100, 0, 0, 9, 10);
        bad.ok = false;
        rec.push(bad);
        for i in 0..20u64 {
            rec.push(span(1, 200 + i, 100, 1, 9, 20 + i));
        }
        assert_eq!(rec.len(), 4);
        assert!(rec.dropped() > 0);
        let snap = rec.snapshot();
        // The failure survived eviction via the notable ring.
        assert!(snap.iter().any(|s| s.span_id == 100 && !s.ok));
        // Slow spans are notable too.
        let mut slow = span(1, 999, 100, 1, 9, 50);
        slow.dur_us = 5_000;
        rec.push(slow);
        assert!(rec.notable().any(|s| s.span_id == 999));
        // Untraced spans are ignored entirely.
        rec.push(span(0, 1, 0, 0, 9, 60));
        assert!(rec.snapshot().iter().all(|s| s.trace_id != 0));
    }

    #[test]
    fn snapshot_is_sorted_and_deduplicated() {
        let mut rec = FlightRecorder::new(8, 0); // everything notable
        rec.push(span(2, 5, 0, 0, 1, 30));
        rec.push(span(1, 4, 0, 0, 2, 20));
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2, "notable duplicates collapse");
        assert!(snap[0].start_us <= snap[1].start_us);
    }

    #[test]
    fn span_tree_renders_causal_indentation() {
        let spans = vec![
            span(7, 1, 0, 0, 0, 100),
            span(7, 2, 1, 1, 1, 110),
            span(7, 3, 2, 2, 2, 120),
            span(7, 9, 777, 3, 3, 130), // orphan: parent missing
        ];
        let tree = render_span_tree(&spans);
        assert!(tree.contains("4 span(s) across 4 node(s)"));
        let l1 = tree.find("[node 0]").unwrap();
        let l2 = tree.find("[node 1]").unwrap();
        let l3 = tree.find("[node 2]").unwrap();
        assert!(l1 < l2 && l2 < l3);
        // Indentation deepens along the causal chain.
        let indent = |pos: usize| tree[..pos].rfind('\n').map(|n| pos - n).unwrap_or(pos);
        assert!(indent(l2) > indent(l1));
        assert!(indent(l3) > indent(l2));
        // Orphans still render (at root level).
        assert!(tree.contains("[node 3]"));
    }

    #[test]
    fn cyclic_parents_do_not_hang_the_renderer() {
        let spans = vec![span(3, 1, 2, 0, 0, 10), span(3, 2, 1, 0, 0, 11)];
        let tree = render_span_tree(&spans);
        assert!(tree.contains("trace"));
    }
}
