//! Minimal deterministic JSON encoding helpers.
//!
//! The workspace deliberately carries no `serde_json` dependency; trace
//! export needs only a small, fixed vocabulary of shapes, and
//! hand-rolling them guarantees byte-stable output (field order is the
//! declaration order, maps are pre-sorted, floats use Rust's shortest
//! round-trip formatting).

/// Escapes a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn floats() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
