//! D2-Obs: the observability substrate of the D2 reproduction.
//!
//! The paper's whole evaluation is measurement — lookup hops, message
//! counts, cache hit rates, load imbalance, migration traffic — and
//! explaining *why* a number moved requires distributions and traces,
//! not just means. This crate provides the three pieces every layer of
//! the stack shares:
//!
//! - [`Registry`] — named counters, gauges, and log-bucketed
//!   [`Histogram`]s with p50/p90/p99/max [`Snapshot`]s;
//! - [`TraceSink`] / [`SharedSink`] — a virtual-time span/event recorder
//!   capturing per-lookup hop paths ([`TraceEvent::Route`]), per-fetch
//!   latency splits ([`TraceEvent::Fetch`]), cache outcomes, and
//!   balancer migrations, with a bounded [`MemorySink`] ring buffer and
//!   a zero-cost disabled default;
//! - [`to_jsonl`] — deterministic JSONL export (same seed ⇒ byte-
//!   identical bytes), so traces can be committed, diffed, and gated in
//!   CI alongside `BENCH_*.json`;
//! - [`flight`] — the causal tracing layer: a compact [`TraceCtx`]
//!   carried in every wire envelope, the bounded per-node
//!   [`FlightRecorder`] of recent/slow/failed [`SpanRecord`]s that
//!   remote scrapes collect, and [`render_span_tree`] to reassemble
//!   one client operation's cross-node story.
//!
//! No dependencies beyond `serde`; time is plain virtual microseconds so
//! the crate sits below `d2-sim` in the dependency graph.

pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

pub use flight::{render_span_tree, render_span_tree_with, FlightRecorder, SpanRecord, TraceCtx};
pub use metrics::{Histogram, HistogramSnapshot, Registry, Snapshot};
pub use trace::{
    to_jsonl, CacheResult, CacheTier, MemorySink, MigrationKind, NullSink, SharedSink, TraceEvent,
    TraceSink,
};
