//! The metric registry: named counters, gauges, and log-bucketed
//! histograms with deterministic snapshots.
//!
//! Everything here is plain data keyed by `BTreeMap`, so a snapshot of
//! the same measurements always serializes to the same bytes — the
//! property the CI trace-diffing workflow relies on. Histograms use
//! log-linear buckets (16 sub-buckets per power of two, ≤ 6.25% relative
//! error) like HdrHistogram, which keeps `record` allocation-free after
//! the bucket vector has grown to cover the observed range.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;

/// A log-linear histogram over `u64` values (hop counts, microseconds,
/// bytes).
///
/// # Examples
///
/// ```
/// use d2_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert!(h.quantile(0.5) >= 45 && h.quantile(0.5) <= 55);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) - SUB;
    ((msb - SUB_BITS) as usize + 1) * SUB + sub
}

/// Largest value mapping to bucket `idx` (the bucket's representative).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let shift = (idx / SUB - 1) as u32;
    let sub = (idx % SUB) as u128;
    let upper = ((SUB as u128 + sub + 1) << shift) - 1;
    upper.min(u64::MAX as u128) as u64
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` occurrences of one value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of recorded values, up to bucket
    /// resolution. Always within `[self.min(), self.max()]`.
    ///
    /// # Empty-histogram contract
    ///
    /// On an empty histogram every summary accessor returns zero —
    /// `quantile` (any `q`), [`Histogram::min`], [`Histogram::max`],
    /// [`Histogram::mean`] — and [`Histogram::snapshot`] returns an
    /// all-zero [`HistogramSnapshot`]. Callers (the `d2-top`
    /// aggregator, JSON exports) may rely on this instead of guarding
    /// every read with a `count() == 0` check.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (total count is the sum of
    /// both counts).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The raw bucket counts, lowest bucket first. The last bucket is
    /// always non-zero when the histogram is non-empty (no trailing
    /// zeros), which wire encodings rely on for canonical round trips.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuilds a histogram from its raw parts (the inverse of reading
    /// [`Histogram::count`]/[`Histogram::sum`]/[`Histogram::min`]/
    /// [`Histogram::max`]/[`Histogram::buckets`]), validating the
    /// invariants a hostile or corrupted wire payload could violate:
    /// bucket counts must sum to `count`, the bucket vector must not
    /// exceed the indexable range, and `min`/`max` must be ordered.
    /// Returns `None` when the parts are inconsistent. An empty
    /// histogram (`count == 0`) must carry `sum == 0`, `min == 0`,
    /// `max == 0` and an all-zero bucket vector.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        mut buckets: Vec<u64>,
    ) -> Option<Histogram> {
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        if buckets.len() > bucket_index(u64::MAX) + 1 {
            return None;
        }
        let mut total = 0u64;
        for &b in &buckets {
            total = total.checked_add(b)?;
        }
        if total != count {
            return None;
        }
        if count == 0 {
            if sum != 0 || min != 0 || max != 0 {
                return None;
            }
            return Some(Histogram::new());
        }
        if min > max {
            return None;
        }
        Some(Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    /// Fixed-quantile summary of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time quantile summary of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of values.
    pub sum: u64,
    /// Minimum value.
    pub min: u64,
    /// Maximum value.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are free-form dotted paths (`"lookup.hops"`); the registry is
/// ordered, so [`Registry::snapshot`] and its JSON form are deterministic
/// for the same set of recordings.
///
/// # Examples
///
/// ```
/// use d2_obs::Registry;
///
/// let mut reg = Registry::new();
/// reg.add("cache.lookup.hit", 9);
/// reg.inc("cache.lookup.miss");
/// reg.observe("lookup.hops", 3);
/// reg.set_gauge("imbalance", 0.25);
/// assert_eq!(reg.counter("cache.lookup.hit"), 9);
/// assert_eq!(reg.snapshot().histograms["lookup.hops"].count, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// The histogram `name`, if any value was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges a pre-built histogram into histogram `name` (creating it
    /// empty first). This is how a histogram decoded off the wire
    /// enters a local registry without replaying its samples.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge, and gauges take the **maximum** of the two values.
    ///
    /// # Gauge merge semantics
    ///
    /// Gauges deliberately merge by `max`, not last-write-wins: a
    /// cluster scrape merges one registry per node in whatever order
    /// the nodes answered, and the aggregate must not depend on that
    /// order. `max` makes `merge` commutative and associative (up to
    /// snapshot equality) for every metric kind, which the `d2-top`
    /// aggregation relies on and a property test enforces. Per-node
    /// gauge values (block counts, ring positions) remain meaningful
    /// only in the per-node registries; the merged gauge is a "worst
    /// case across the cluster" number. (NaN inputs follow
    /// [`f64::max`]: the non-NaN operand wins.)
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            self.add(k, v);
        }
        for (k, &v) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .and_modify(|g| *g = g.max(v))
                .or_insert(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Deterministic point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A serializable snapshot of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Renders the snapshot as one deterministic JSON object (maps are
    /// name-ordered; no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_map(
            &mut out,
            self.gauges
                .iter()
                .map(|(k, v)| (k, crate::json::fmt_f64(*v))),
        );
        out.push_str("},\"histograms\":{");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                (
                    k,
                    format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                    ),
                )
            }),
        );
        out.push_str("}}");
        out
    }
}

fn push_map<'a, I: Iterator<Item = (&'a String, String)>>(out: &mut String, entries: I) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&crate::json::escape(k));
        out.push_str("\":");
        out.push_str(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        // The documented empty-histogram contract: every summary
        // accessor returns 0, for every quantile, and the snapshot is
        // exactly the all-zero snapshot.
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "quantile({q}) on empty");
        }
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        // Merging an empty histogram is a no-op both ways.
        let mut a = Histogram::new();
        a.record(7);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_garbage() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 17, 4096, 123_456_789] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), h.buckets().to_vec())
                .unwrap();
        assert_eq!(rebuilt, h);
        // Empty round trip.
        assert_eq!(
            Histogram::from_parts(0, 0, 0, 0, vec![]).unwrap(),
            Histogram::new()
        );
        assert_eq!(
            Histogram::from_parts(0, 0, 0, 0, vec![0, 0]).unwrap(),
            Histogram::new(),
            "trailing zeros are canonicalized away"
        );
        // Inconsistent parts are refused.
        assert!(
            Histogram::from_parts(2, 5, 1, 4, vec![1]).is_none(),
            "count mismatch"
        );
        assert!(
            Histogram::from_parts(1, 5, 9, 4, vec![0, 1]).is_none(),
            "min > max"
        );
        assert!(
            Histogram::from_parts(0, 5, 0, 0, vec![]).is_none(),
            "empty with sum"
        );
        assert!(
            Histogram::from_parts(2, 5, 1, 4, vec![1; 100_000]).is_none(),
            "bucket vector beyond indexable range"
        );
        assert!(
            Histogram::from_parts(u64::MAX, 0, 0, 1, vec![u64::MAX, u64::MAX]).is_none(),
            "bucket sum overflow"
        );
    }

    #[test]
    fn gauge_merge_takes_max_in_any_order() {
        let mut a = Registry::new();
        a.set_gauge("g", 1.0);
        let mut b = Registry::new();
        b.set_gauge("g", 3.0);
        b.set_gauge("only_b", -2.5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.gauge("g"), Some(3.0));
        assert_eq!(ba.gauge("g"), Some(3.0));
        assert_eq!(ab.gauge("only_b"), Some(-2.5));
        assert_eq!(ab.snapshot(), ba.snapshot());
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease: v={v}");
            assert!(bucket_upper(idx) >= v, "upper bound must cover v={v}");
            last = idx;
        }
        // Extremes.
        assert!(bucket_upper(bucket_index(u64::MAX)) == u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!((450..=560).contains(&p50), "p50={p50}");
        assert!((850..=1000).contains(&p90), "p90={p90}");
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..50u64 {
            a.record(v);
        }
        for v in 5000..5100u64 {
            b.record(v * 100);
        }
        let (ca, cb) = (a.count(), b.count());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 509_900);
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = Registry::new();
        reg.inc("a");
        reg.add("a", 2);
        reg.set_gauge("g", 1.5);
        reg.observe("h", 10);
        reg.observe("h", 20);
        assert_eq!(reg.counter("a"), 3);
        assert_eq!(reg.gauge("g"), Some(1.5));
        assert_eq!(reg.histogram("h").unwrap().count(), 2);

        let mut other = Registry::new();
        other.add("a", 7);
        other.observe("h", 30);
        reg.merge(&other);
        assert_eq!(reg.counter("a"), 10);
        assert_eq!(reg.histogram("h").unwrap().count(), 3);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let mut reg = Registry::new();
            reg.add("z.last", 1);
            reg.add("a.first", 2);
            reg.observe("lat", 100);
            reg.set_gauge("imb", 0.5);
            reg.snapshot().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
        assert!(a.starts_with('{') && a.ends_with('}'));
    }
}
