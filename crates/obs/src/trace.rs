//! The structured trace layer: virtual-time event records, sinks, and
//! deterministic JSONL export.
//!
//! Library code never prints; it offers each interesting moment (a
//! routed lookup's hop path, a cache probe, a migration transfer) to a
//! [`TraceSink`] as a [`TraceEvent`]. The default sink is the disabled
//! [`SharedSink::null`], which records nothing and — because events are
//! built lazily via [`SharedSink::record_with`] — allocates nothing on
//! the instrumented paths. Drivers that want traces attach a
//! [`MemorySink`] and export [`to_jsonl`] afterwards; the export is
//! byte-identical for identical seeded runs.
//!
//! Timestamps are virtual microseconds (`t_us`), the same clock as
//! `d2_sim::SimTime`; this crate stays at the bottom of the dependency
//! graph and therefore stores the raw integer.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Which cache tier a probe hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CacheTier {
    /// The range-based lookup cache (paper Section 5).
    Lookup,
    /// The block retrieval cache (paper Section 6).
    Block,
}

impl CacheTier {
    /// Stable lowercase label (used in JSON and metric names).
    pub fn label(&self) -> &'static str {
        match self {
            CacheTier::Lookup => "lookup",
            CacheTier::Block => "block",
        }
    }
}

/// Outcome of one cache probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CacheResult {
    /// Fresh entry, used directly.
    Hit,
    /// No usable entry.
    Miss,
    /// Entry existed but pointed at a node that no longer owns the key
    /// (costs a wasted round trip, then a routed lookup).
    Stale,
}

impl CacheResult {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            CacheResult::Hit => "hit",
            CacheResult::Miss => "miss",
            CacheResult::Stale => "stale",
        }
    }
}

/// Why bytes moved between nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MigrationKind {
    /// Load-balance move shipping a replica to the mover.
    Balance,
    /// Replica regeneration after failures / membership change.
    Repair,
    /// A deferred block pointer being resolved into a real copy.
    PointerResolve,
}

impl MigrationKind {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            MigrationKind::Balance => "balance",
            MigrationKind::Repair => "repair",
            MigrationKind::PointerResolve => "pointer_resolve",
        }
    }
}

/// One structured trace event. All timestamps are virtual microseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "ev", rename_all = "snake_case")]
pub enum TraceEvent {
    /// Free-form marker delimiting phases of a run (e.g. one swept
    /// configuration cell).
    Mark {
        /// Virtual time.
        t_us: u64,
        /// Marker text.
        label: String,
    },
    /// One routed DHT lookup: the hop path from requester to owner
    /// (emitted by `d2-ring`'s router; latency-free — the router knows
    /// topology hops, not wire time).
    Route {
        /// Virtual time.
        t_us: u64,
        /// Requesting user.
        user: u32,
        /// Looked-up key (64-bit ordered prefix).
        key: u64,
        /// Requesting node.
        from: usize,
        /// Owner found.
        owner: usize,
        /// Forwarding hops.
        hops: u32,
        /// Messages spent (hops + reply).
        messages: u32,
        /// Nodes visited, requester first, owner last.
        path: Vec<usize>,
    },
    /// One block fetch end-to-end (emitted by the performance
    /// simulator): cache outcome, lookup and transfer latency split.
    Fetch {
        /// Virtual time the fetch was issued.
        t_us: u64,
        /// Requesting user.
        user: u32,
        /// Fetched key (64-bit ordered prefix).
        key: u64,
        /// Lookup-cache outcome for this fetch.
        result: CacheResult,
        /// Time spent resolving the owner (0 on a fresh cache hit).
        lookup_us: u64,
        /// One-way latency of each lookup hop (empty when not routed).
        hop_us: Vec<u64>,
        /// Server queueing + TCP transfer time.
        transfer_us: u64,
        /// Total fetch latency.
        total_us: u64,
        /// Replica that served the block.
        server: usize,
        /// Bytes fetched.
        len: u32,
    },
    /// One cache probe (emitted by `d2-store` caches).
    CacheProbe {
        /// Virtual time.
        t_us: u64,
        /// Probing user (0 when the tier is not per-user).
        user: u32,
        /// Which tier.
        tier: CacheTier,
        /// Hit, miss, or stale.
        result: CacheResult,
        /// Probed key (64-bit ordered prefix).
        key: u64,
    },
    /// Bytes copied between nodes for balance/repair/pointer resolution
    /// (emitted by `d2-core`'s cluster).
    Migration {
        /// Virtual time.
        t_us: u64,
        /// Why the copy happened.
        kind: MigrationKind,
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
        /// Block key (64-bit ordered prefix).
        key: u64,
        /// Bytes on the wire.
        bytes: u64,
    },
    /// A balancer ID change: `mover` rejoined next to `heavy` to share
    /// its load.
    BalanceMove {
        /// Virtual time.
        t_us: u64,
        /// Node whose ID changed.
        mover: usize,
        /// Overloaded node being relieved.
        heavy: usize,
    },
    /// One churn-hardened lookup under injected faults: retries,
    /// timeouts, and the total virtual latency including backoffs
    /// (emitted by `d2-ring`'s churn layer).
    ChurnLookup {
        /// Virtual time the lookup was issued.
        t_us: u64,
        /// Requesting node.
        from: usize,
        /// Looked-up key (64-bit ordered prefix).
        key: u64,
        /// Whether the live owner was reached.
        ok: bool,
        /// Successful forwarding hops.
        hops: u32,
        /// Retries consumed (timeout + backoff each).
        retries: u32,
        /// Hop attempts that timed out.
        timeouts: u32,
        /// Total virtual latency (delays + timeouts + backoffs).
        latency_us: u64,
    },
    /// One ring self-stabilization round: successor-list repair,
    /// long-link refresh, dead-link eviction (emitted by `d2-ring`).
    Stabilize {
        /// Virtual time of the round.
        t_us: u64,
        /// Live nodes refreshed.
        nodes: u32,
        /// Links added or retargeted.
        repaired: u32,
        /// Stale links removed.
        evicted: u32,
    },
    /// One causally-linked wire span collected from a node's
    /// [`crate::FlightRecorder`]: the DST harness exports these so a
    /// shrunk failing seed yields the same cross-node causal narrative
    /// `d2-node trace` prints for a live cluster.
    WireSpan {
        /// Start time on the recording node's clock.
        t_us: u64,
        /// The client operation this span belongs to.
        trace_id: u64,
        /// This span's id.
        span_id: u64,
        /// The causing span (0 = the client).
        parent_span_id: u64,
        /// Forwarding depth.
        hop: u8,
        /// Recording node.
        node: u64,
        /// Duration (0 for instantaneous steps).
        dur_us: u64,
        /// Whether the step succeeded.
        ok: bool,
        /// Operation label (`"lookup"`, `"put.chain"`, ...).
        op: String,
        /// Free-form detail.
        detail: String,
    },
    /// A completed timed span (e.g. one user task / access group).
    Span {
        /// Virtual start time.
        t_us: u64,
        /// Span name.
        name: String,
        /// Owning user.
        user: u32,
        /// Duration.
        dur_us: u64,
        /// Items covered (e.g. blocks fetched).
        items: u32,
    },
}

impl TraceEvent {
    /// Virtual timestamp of the event.
    pub fn t_us(&self) -> u64 {
        match self {
            TraceEvent::Mark { t_us, .. }
            | TraceEvent::Route { t_us, .. }
            | TraceEvent::Fetch { t_us, .. }
            | TraceEvent::CacheProbe { t_us, .. }
            | TraceEvent::Migration { t_us, .. }
            | TraceEvent::BalanceMove { t_us, .. }
            | TraceEvent::ChurnLookup { t_us, .. }
            | TraceEvent::Stabilize { t_us, .. }
            | TraceEvent::WireSpan { t_us, .. }
            | TraceEvent::Span { t_us, .. } => *t_us,
        }
    }

    /// Renders the event as one compact, deterministic JSON object
    /// (fields in declaration order).
    pub fn to_json(&self) -> String {
        fn list(vals: &[impl ToString]) -> String {
            let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
            format!("[{}]", items.join(","))
        }
        match self {
            TraceEvent::Mark { t_us, label } => {
                format!("{{\"ev\":\"mark\",\"t_us\":{t_us},\"label\":\"{}\"}}", crate::json::escape(label))
            }
            TraceEvent::Route { t_us, user, key, from, owner, hops, messages, path } => format!(
                "{{\"ev\":\"route\",\"t_us\":{t_us},\"user\":{user},\"key\":{key},\"from\":{from},\"owner\":{owner},\"hops\":{hops},\"messages\":{messages},\"path\":{}}}",
                list(path)
            ),
            TraceEvent::Fetch {
                t_us, user, key, result, lookup_us, hop_us, transfer_us, total_us, server, len,
            } => format!(
                "{{\"ev\":\"fetch\",\"t_us\":{t_us},\"user\":{user},\"key\":{key},\"result\":\"{}\",\"lookup_us\":{lookup_us},\"hop_us\":{},\"transfer_us\":{transfer_us},\"total_us\":{total_us},\"server\":{server},\"len\":{len}}}",
                result.label(),
                list(hop_us)
            ),
            TraceEvent::CacheProbe { t_us, user, tier, result, key } => format!(
                "{{\"ev\":\"cache_probe\",\"t_us\":{t_us},\"user\":{user},\"tier\":\"{}\",\"result\":\"{}\",\"key\":{key}}}",
                tier.label(),
                result.label()
            ),
            TraceEvent::Migration { t_us, kind, src, dst, key, bytes } => format!(
                "{{\"ev\":\"migration\",\"t_us\":{t_us},\"kind\":\"{}\",\"src\":{src},\"dst\":{dst},\"key\":{key},\"bytes\":{bytes}}}",
                kind.label()
            ),
            TraceEvent::BalanceMove { t_us, mover, heavy } => format!(
                "{{\"ev\":\"balance_move\",\"t_us\":{t_us},\"mover\":{mover},\"heavy\":{heavy}}}"
            ),
            TraceEvent::ChurnLookup { t_us, from, key, ok, hops, retries, timeouts, latency_us } => format!(
                "{{\"ev\":\"churn_lookup\",\"t_us\":{t_us},\"from\":{from},\"key\":{key},\"ok\":{ok},\"hops\":{hops},\"retries\":{retries},\"timeouts\":{timeouts},\"latency_us\":{latency_us}}}"
            ),
            TraceEvent::Stabilize { t_us, nodes, repaired, evicted } => format!(
                "{{\"ev\":\"stabilize\",\"t_us\":{t_us},\"nodes\":{nodes},\"repaired\":{repaired},\"evicted\":{evicted}}}"
            ),
            TraceEvent::WireSpan {
                t_us, trace_id, span_id, parent_span_id, hop, node, dur_us, ok, op, detail,
            } => format!(
                "{{\"ev\":\"wire_span\",\"t_us\":{t_us},\"trace_id\":{trace_id},\"span_id\":{span_id},\"parent_span_id\":{parent_span_id},\"hop\":{hop},\"node\":{node},\"dur_us\":{dur_us},\"ok\":{ok},\"op\":\"{}\",\"detail\":\"{}\"}}",
                crate::json::escape(op),
                crate::json::escape(detail)
            ),
            TraceEvent::Span { t_us, name, user, dur_us, items } => format!(
                "{{\"ev\":\"span\",\"t_us\":{t_us},\"name\":\"{}\",\"user\":{user},\"dur_us\":{dur_us},\"items\":{items}}}",
                crate::json::escape(name)
            ),
        }
    }
}

/// Renders events as JSON Lines (one event per line, trailing newline
/// after each). Byte-identical for identical event sequences.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Receives trace events. Implementations must be cheap when disabled.
pub trait TraceSink {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// Removes and returns all buffered events (empty for sinks that do
    /// not buffer).
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// The zero-cost disabled sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory ring buffer of events. When full, the oldest
/// events are dropped (and counted).
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl MemorySink {
    /// Creates a sink holding at most `capacity` events (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        if self.capacity > 0 && self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

/// A cheaply clonable handle to a sink, shared by every component of one
/// simulation (`Clone` shares the underlying buffer, it does not fork
/// it). The default / [`SharedSink::null`] handle is disabled and
/// allocation-free.
#[derive(Clone, Default)]
pub struct SharedSink {
    inner: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl SharedSink {
    /// The disabled sink: records nothing, costs one branch per offer.
    pub fn null() -> Self {
        SharedSink { inner: None }
    }

    /// Wraps any sink implementation.
    pub fn new<S: TraceSink + 'static>(sink: S) -> Self {
        SharedSink {
            inner: Some(Rc::new(RefCell::new(sink))),
        }
    }

    /// A shared in-memory ring buffer of at most `capacity` events.
    pub fn memory(capacity: usize) -> Self {
        Self::new(MemorySink::new(capacity))
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        match &self.inner {
            Some(s) => s.borrow().enabled(),
            None => false,
        }
    }

    /// Records the event produced by `build` — called only when the sink
    /// is enabled, so disabled sinks pay no event construction.
    pub fn record_with<F: FnOnce() -> TraceEvent>(&self, build: F) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            if s.enabled() {
                s.record(build());
            }
        }
    }

    /// Removes and returns all buffered events.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(s) => s.borrow_mut().drain(),
            None => Vec::new(),
        }
    }

    /// Records a batch of already-built events in order. Used to merge
    /// per-worker trace buffers back into a parent sink in a canonical
    /// order; a disabled sink discards the batch.
    pub fn extend<I: IntoIterator<Item = TraceEvent>>(&self, events: I) {
        if let Some(s) = &self.inner {
            let mut s = s.borrow_mut();
            if s.enabled() {
                for ev in events {
                    s.record(ev);
                }
            }
        }
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "SharedSink(active)"),
            None => write!(f, "SharedSink(null)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(t: u64) -> TraceEvent {
        TraceEvent::Route {
            t_us: t,
            user: 1,
            key: 99,
            from: 0,
            owner: 3,
            hops: 2,
            messages: 3,
            path: vec![0, 5, 3],
        }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = SharedSink::null();
        assert!(!sink.enabled());
        let mut built = false;
        sink.record_with(|| {
            built = true;
            route(0)
        });
        assert!(!built, "event must not be constructed for a null sink");
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn memory_sink_records_and_drains() {
        let sink = SharedSink::memory(10);
        assert!(sink.enabled());
        sink.record_with(|| route(1));
        sink.record_with(|| route(2));
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_us(), 1);
        assert!(sink.drain().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn clone_shares_the_buffer() {
        let a = SharedSink::memory(10);
        let b = a.clone();
        b.record_with(|| route(7));
        assert_eq!(a.drain().len(), 1);
    }

    #[test]
    fn extend_appends_in_order_and_null_discards() {
        let sink = SharedSink::memory(0);
        sink.record_with(|| route(1));
        sink.extend(vec![route(2), route(3)]);
        let ts: Vec<u64> = sink.drain().iter().map(|e| e.t_us()).collect();
        assert_eq!(ts, vec![1, 2, 3]);
        let null = SharedSink::null();
        null.extend(vec![route(9)]);
        assert!(null.drain().is_empty());
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut sink = MemorySink::new(2);
        sink.record(route(1));
        sink.record(route(2));
        sink.record(route(3));
        assert_eq!(sink.dropped(), 1);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_us(), 2);
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_event() {
        let events = vec![
            TraceEvent::Mark {
                t_us: 0,
                label: "cell \"a\"".into(),
            },
            route(5),
            TraceEvent::CacheProbe {
                t_us: 6,
                user: 2,
                tier: CacheTier::Lookup,
                result: CacheResult::Stale,
                key: 42,
            },
            TraceEvent::Migration {
                t_us: 7,
                kind: MigrationKind::PointerResolve,
                src: 1,
                dst: 2,
                key: 9,
                bytes: 8192,
            },
            TraceEvent::BalanceMove {
                t_us: 8,
                mover: 4,
                heavy: 9,
            },
            TraceEvent::Fetch {
                t_us: 9,
                user: 1,
                key: 3,
                result: CacheResult::Hit,
                lookup_us: 0,
                hop_us: vec![],
                transfer_us: 100,
                total_us: 100,
                server: 2,
                len: 8192,
            },
            TraceEvent::Span {
                t_us: 10,
                name: "group".into(),
                user: 1,
                dur_us: 50,
                items: 3,
            },
            TraceEvent::ChurnLookup {
                t_us: 11,
                from: 4,
                key: 77,
                ok: false,
                hops: 6,
                retries: 8,
                timeouts: 9,
                latency_us: 4_700_000,
            },
            TraceEvent::Stabilize {
                t_us: 12,
                nodes: 64,
                repaired: 5,
                evicted: 7,
            },
            TraceEvent::WireSpan {
                t_us: 13,
                trace_id: 0xBEEF,
                span_id: 2,
                parent_span_id: 1,
                hop: 3,
                node: 6,
                dur_us: 250,
                ok: true,
                op: "put.chain".into(),
                detail: "stored=2/3".into(),
            },
        ];
        let a = to_jsonl(&events);
        let b = to_jsonl(&events);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), events.len());
        assert!(a.contains("\"ev\":\"route\""));
        assert!(a.contains("\"path\":[0,5,3]"));
        assert!(a.contains("\"tier\":\"lookup\""));
        assert!(a.contains("\"result\":\"stale\""));
        assert!(a.contains("\"kind\":\"pointer_resolve\""));
        assert!(a.contains("\"ev\":\"churn_lookup\""));
        assert!(a.contains("\"ok\":false"));
        assert!(a.contains("\"ev\":\"stabilize\""));
        assert!(a.contains("\"repaired\":5"));
        assert!(a.contains("cell \\\"a\\\""));
        for line in a.lines() {
            assert!(line.starts_with("{\"ev\":\"") && line.ends_with('}'));
        }
    }
}
