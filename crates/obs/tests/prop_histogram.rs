//! Property tests for the log-bucketed histogram: quantile monotonicity,
//! quantile bounds, and merge count preservation.

use d2_obs::Histogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = hist_of(&values);
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = 0u64;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < previous {last}");
            last = v;
        }
        prop_assert!(h.quantile(0.5) <= h.quantile(0.9));
        prop_assert!(h.quantile(0.9) <= h.quantile(0.99));
        prop_assert!(h.quantile(0.99) <= h.max());
    }

    #[test]
    fn quantiles_lie_within_recorded_extremes(
        values in prop::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = hist_of(&values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        let v = h.quantile(q);
        prop_assert!(v >= min && v <= max, "quantile({q}) = {v} outside [{min}, {max}]");
    }

    #[test]
    fn merge_preserves_total_count_and_extremes(
        a in prop::collection::vec(any::<u64>(), 0..150),
        b in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        let mut ha = hist_of(&a);
        let hb = hist_of(&b);
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        if !all.is_empty() {
            prop_assert_eq!(ha.min(), *all.iter().min().unwrap());
            prop_assert_eq!(ha.max(), *all.iter().max().unwrap());
            // Merged quantiles are still bounded and monotone.
            prop_assert!(ha.quantile(0.5) <= ha.quantile(0.9));
            prop_assert!(ha.quantile(0.9) <= ha.quantile(0.99));
            prop_assert!(ha.quantile(0.99) <= ha.max());
        }
    }

    #[test]
    fn merge_equals_bulk_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let bulk = hist_of(&all);
        prop_assert_eq!(merged.snapshot(), bulk.snapshot());
    }

    #[test]
    fn quantile_tracks_exact_rank_within_bucket_error(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(q);
            // Log-linear buckets with 16 sub-buckets: ≤ 6.25% relative
            // error, and never below the exact order statistic.
            prop_assert!(approx >= exact, "quantile({q}) = {approx} < exact {exact}");
            let bound = exact + exact / 16 + 1;
            prop_assert!(approx <= bound, "quantile({q}) = {approx} > bound {bound}");
        }
    }
}
