//! Property tests for the merge algebra behind cluster-wide
//! aggregation: `Registry::merge` and `Histogram::merge` must be
//! commutative and associative up to snapshot equality, or the merged
//! view `d2-node top` prints would depend on scrape order.
//!
//! Gauge merge is *max* (not sum or last-write): the only fold that is
//! commutative and associative for point-in-time readings.

use d2_obs::{Histogram, Registry};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Counter, gauge, and histogram fragments drawn from a 3-name pool so
/// merged registries genuinely collide on names.
type RegParts = (
    Vec<(String, u64)>,
    Vec<(String, f64)>,
    Vec<(String, Vec<u64>)>,
);

fn registry_of(parts: &RegParts) -> Registry {
    let (counters, gauges, hists) = parts;
    let mut reg = Registry::new();
    for (name, v) in counters {
        reg.add(name, *v);
    }
    for (name, v) in gauges {
        // set_gauge overwrites; last write per name wins, like a real
        // point-in-time reading.
        reg.set_gauge(name, *v);
    }
    for (name, samples) in hists {
        for &s in samples {
            reg.observe(name, s);
        }
    }
    reg
}

fn arb_parts() -> impl Strategy<Value = RegParts> {
    (
        prop::collection::vec(("[a-c]", 0u64..1_000), 0..5),
        prop::collection::vec(("[a-c]", 0.0f64..=100.0), 0..5),
        prop::collection::vec(
            ("[a-c]", prop::collection::vec(0u64..1_000_000, 0..15)),
            0..4,
        ),
    )
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
        prop_assert_eq!(ab.buckets(), ba.buckets());
    }

    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..60),
        b in prop::collection::vec(any::<u64>(), 0..60),
        c in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        let mut bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left.snapshot(), right.snapshot());
        prop_assert_eq!(left.buckets(), right.buckets());
    }

    #[test]
    fn registry_merge_is_commutative(a in arb_parts(), b in arb_parts()) {
        let mut ab = registry_of(&a);
        ab.merge(&registry_of(&b));
        let mut ba = registry_of(&b);
        ba.merge(&registry_of(&a));
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
    }

    #[test]
    fn registry_merge_is_associative(
        a in arb_parts(),
        b in arb_parts(),
        c in arb_parts(),
    ) {
        let mut left = registry_of(&a);
        left.merge(&registry_of(&b));
        left.merge(&registry_of(&c));
        let mut bc = registry_of(&b);
        bc.merge(&registry_of(&c));
        let mut right = registry_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left.snapshot(), right.snapshot());
    }

    #[test]
    fn gauge_merge_takes_the_max(a in arb_parts(), b in arb_parts()) {
        let ra = registry_of(&a);
        let rb = registry_of(&b);
        let mut merged = ra.clone();
        merged.merge(&rb);
        for (name, v) in merged.gauges() {
            let expect = match (ra.gauge(name), rb.gauge(name)) {
                (Some(x), Some(y)) => x.max(y),
                (Some(x), None) | (None, Some(x)) => x,
                (None, None) => unreachable!("merged gauge from nowhere"),
            };
            prop_assert_eq!(v, expect, "gauge {} must merge as max", name);
        }
    }
}
