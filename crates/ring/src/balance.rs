//! Active load balancing (paper Section 6).
//!
//! D2 cannot rely on consistent hashing for storage balance because its
//! key distribution follows the (highly non-uniform) file name space. It
//! instead runs the Karger–Ruhl item-balancing algorithm as implemented by
//! Mercury: every *probe interval*, each node `B` contacts a random node
//! `A`; if `load(A) > t · load(B)` (the paper uses `t = 4`), `B` leaves the
//! ring and rejoins as `A`'s predecessor at the key that splits `A`'s
//! primary blocks in half.
//!
//! Only *primary* replica count is used as the load value — ID changes only
//! directly affect primary ranges, and balancing primaries balances total
//! load by the `r·max / r·min` argument in the paper's footnote 3.
//!
//! This module computes the balancing *decisions* ([`BalanceOp`]); applying
//! them — moving ring positions, migrating blocks or installing block
//! pointers — is done by the store layer, which knows where the data is.

use crate::ring::{NodeIdx, Ring};
use d2_types::Key;
use serde::{Deserialize, Serialize};

/// A view of per-node storage load, provided by the store layer.
pub trait LoadView {
    /// Number of primary blocks currently assigned to `node`.
    fn primary_load(&self, node: NodeIdx) -> u64;

    /// A key `m` inside `node`'s range such that about half of the node's
    /// primary blocks have keys ≤ `m`. `None` if the node has fewer than
    /// two blocks (nothing to split).
    fn split_key(&self, node: NodeIdx) -> Option<Key>;
}

/// Tunables for the balancing algorithm.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BalanceConfig {
    /// Load-ratio trigger `t`. The paper uses 4, guaranteeing steady-state
    /// node loads within a factor of 4 of each other.
    pub threshold: f64,
    /// Ignore probes against nodes with fewer than this many blocks
    /// (splitting a near-empty node is pointless churn).
    pub min_split_load: u64,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            threshold: 4.0,
            min_split_load: 2,
        }
    }
}

/// A balancing decision: the light node moves to split the heavy node's
/// load.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceOp {
    /// `light` leaves its current position (shedding its blocks to its old
    /// successor) and rejoins at `new_id`, immediately before `heavy`,
    /// taking over the keys in `(pred(heavy), new_id]`.
    Relocate {
        /// The probing, lightly loaded node that moves.
        light: NodeIdx,
        /// Its position before the move.
        old_id: Key,
        /// Its new position: the heavy node's load median.
        new_id: Key,
        /// The overloaded node being split.
        heavy: NodeIdx,
    },
    /// `light` is already `heavy`'s predecessor, so no leave/rejoin is
    /// needed: it just advances its ID to absorb half of `heavy`'s load.
    ShiftBoundary {
        /// The predecessor node absorbing load.
        light: NodeIdx,
        /// Its position before the shift.
        old_id: Key,
        /// Its new position (clockwise of `old_id`).
        new_id: Key,
        /// The overloaded successor shedding load.
        heavy: NodeIdx,
    },
}

impl BalanceOp {
    /// The node whose ID changes.
    pub fn mover(&self) -> NodeIdx {
        match self {
            BalanceOp::Relocate { light, .. } | BalanceOp::ShiftBoundary { light, .. } => *light,
        }
    }

    /// The node being relieved of load.
    pub fn heavy(&self) -> NodeIdx {
        match self {
            BalanceOp::Relocate { heavy, .. } | BalanceOp::ShiftBoundary { heavy, .. } => *heavy,
        }
    }

    /// The mover's new ring position.
    pub fn new_id(&self) -> Key {
        match self {
            BalanceOp::Relocate { new_id, .. } | BalanceOp::ShiftBoundary { new_id, .. } => *new_id,
        }
    }
}

/// One probe by `prober` against `target`: decides whether the prober
/// should move, per Section 6. Returns `None` when the loads are within
/// the threshold or a valid split point does not exist.
pub fn probe(
    ring: &Ring,
    loads: &dyn LoadView,
    prober: NodeIdx,
    target: NodeIdx,
    cfg: &BalanceConfig,
) -> Option<BalanceOp> {
    if prober == target || !ring.contains(prober) || !ring.contains(target) {
        return None;
    }
    let load_b = loads.primary_load(prober);
    let load_a = loads.primary_load(target);
    if load_a < cfg.min_split_load {
        return None;
    }
    if (load_a as f64) <= cfg.threshold * (load_b as f64) {
        return None;
    }
    let new_id = loads.split_key(target)?;
    let target_id = ring.id_of(target)?;
    let old_id = ring.id_of(prober)?;
    if new_id == target_id || new_id == old_id {
        return None;
    }
    // The split key must lie strictly inside the heavy node's range.
    let range = ring.range_of(target)?;
    if !range.contains(&new_id) {
        return None;
    }
    if ring.predecessor(target) == Some(prober) {
        Some(BalanceOp::ShiftBoundary {
            light: prober,
            old_id,
            new_id,
            heavy: target,
        })
    } else {
        Some(BalanceOp::Relocate {
            light: prober,
            old_id,
            new_id,
            heavy: target,
        })
    }
}

/// Applies the ring-position part of `op` (the store layer migrates data
/// separately). Returns `false` if the new position is occupied, in which
/// case the op should be dropped.
pub fn apply_to_ring(ring: &mut Ring, op: &BalanceOp) -> bool {
    ring.move_node(op.mover(), op.new_id())
}

/// Runs one balancing round: every in-ring node probes one random other
/// node, in random order; each accepted op is applied to the ring and
/// reported to `on_op` (where the store layer migrates blocks / installs
/// pointers) before the next probe, matching the sequential nature of
/// leave-and-rejoin.
pub fn run_round<R, F>(
    ring: &mut Ring,
    loads: &mut dyn LoadView,
    rng: &mut R,
    cfg: &BalanceConfig,
    mut on_op: F,
) -> usize
where
    R: rand::Rng + ?Sized,
    F: FnMut(&mut Ring, &BalanceOp),
{
    use rand::seq::SliceRandom;
    let mut nodes = ring.nodes();
    nodes.shuffle(rng);
    let mut applied = 0;
    for prober in nodes {
        if !ring.contains(prober) {
            continue;
        }
        let Some(target) = ring.random_node(rng) else {
            continue;
        };
        if let Some(op) = probe(ring, loads, prober, target, cfg) {
            if apply_to_ring(ring, &op) {
                on_op(ring, &op);
                applied += 1;
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    /// A toy store: blocks keyed on the ring, loads derived from ownership.
    struct ToyStore {
        blocks: BTreeMap<Key, ()>,
        ring: Ring,
    }

    impl ToyStore {
        fn owned_keys(&self, node: NodeIdx) -> Vec<Key> {
            let Some(range) = self.ring.range_of(node) else {
                return vec![];
            };
            self.blocks
                .keys()
                .filter(|k| range.contains(k))
                .copied()
                .collect()
        }
    }

    impl LoadView for ToyStore {
        fn primary_load(&self, node: NodeIdx) -> u64 {
            self.owned_keys(node).len() as u64
        }
        fn split_key(&self, node: NodeIdx) -> Option<Key> {
            let keys = self.owned_keys(node);
            if keys.len() < 2 {
                return None;
            }
            Some(keys[keys.len() / 2 - 1])
        }
    }

    fn setup(node_fracs: &[f64], block_fracs: &[f64]) -> (ToyStore, Vec<NodeIdx>) {
        let mut ring = Ring::new();
        let idxs: Vec<_> = node_fracs
            .iter()
            .map(|&f| ring.add_node(Key::from_fraction(f)))
            .collect();
        let blocks = block_fracs
            .iter()
            .map(|&f| (Key::from_fraction(f), ()))
            .collect();
        (ToyStore { blocks, ring }, idxs)
    }

    #[test]
    fn probe_triggers_on_imbalance() {
        // Node at 0.9 owns (0.5, 0.9] with 8 blocks; node at 0.5 owns 0.
        let blocks: Vec<f64> = (0..8).map(|i| 0.55 + i as f64 * 0.04).collect();
        let (store, idx) = setup(&[0.5, 0.9], &blocks);
        let op = probe(
            &store.ring,
            &store,
            idx[0],
            idx[1],
            &BalanceConfig::default(),
        );
        let op = op.expect("imbalance 8:0 must trigger");
        // idx0 is the predecessor of idx1 -> boundary shift.
        assert!(matches!(op, BalanceOp::ShiftBoundary { .. }));
        assert_eq!(op.mover(), idx[0]);
        assert_eq!(op.heavy(), idx[1]);
        // New id splits the 8 blocks: 4 on each side.
        assert!(op.new_id() >= Key::from_fraction(0.55));
        assert!(op.new_id() < Key::from_fraction(0.9));
    }

    #[test]
    fn probe_respects_threshold() {
        // 4 blocks vs 2 blocks: ratio 2 < 4, no move.
        let (store, idx) = setup(&[0.5, 0.9], &[0.1, 0.2, 0.55, 0.6, 0.7, 0.8]);
        assert_eq!(store.primary_load(idx[0]), 2);
        assert_eq!(store.primary_load(idx[1]), 4);
        assert!(probe(
            &store.ring,
            &store,
            idx[0],
            idx[1],
            &BalanceConfig::default()
        )
        .is_none());
    }

    #[test]
    fn distant_light_node_relocates() {
        let blocks: Vec<f64> = (0..10).map(|i| 0.41 + i as f64 * 0.01).collect();
        let (store, idx) = setup(&[0.1, 0.2, 0.6], &blocks);
        // idx1 (owns (0.1,0.2], empty) probes idx2 (owns (0.2,0.6], 10 blocks).
        // idx1 IS the predecessor though. Use idx0 which is not.
        let op = probe(
            &store.ring,
            &store,
            idx[0],
            idx[2],
            &BalanceConfig::default(),
        )
        .unwrap();
        assert!(matches!(op, BalanceOp::Relocate { .. }));
    }

    #[test]
    fn self_probe_is_noop() {
        let (store, idx) = setup(&[0.5], &[0.1, 0.2]);
        assert!(probe(
            &store.ring,
            &store,
            idx[0],
            idx[0],
            &BalanceConfig::default()
        )
        .is_none());
    }

    #[test]
    fn rounds_converge_to_factor_t() {
        // 32 nodes uniformly placed, all 512 blocks crammed into 5% of the
        // key space — the defragmented-file-system distribution.
        let mut ring = Ring::new();
        let idxs: Vec<_> = (0..32)
            .map(|i| ring.add_node(Key::from_fraction(i as f64 / 32.0)))
            .collect();
        let blocks: BTreeMap<Key, ()> = (0..512)
            .map(|i| (Key::from_fraction(0.40 + 0.05 * i as f64 / 512.0), ()))
            .collect();
        let mut store = ToyStore { blocks, ring };
        let cfg = BalanceConfig::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);

        for _round in 0..40 {
            // run_round needs ring and loads simultaneously; swap out ring.
            let mut ring = store.ring.clone();
            run_round(&mut ring, &mut store, &mut rng, &cfg, |_r, _op| {});
            store.ring = ring;
        }
        let loads: Vec<u64> = idxs.iter().map(|&i| store.primary_load(i)).collect();
        let max = *loads.iter().max().unwrap();
        let nonzero_min = loads.iter().copied().filter(|&l| l > 0).min().unwrap();
        // Steady state: max/min within the guaranteed constant factor
        // (paper: factor of 4 for t=4; allow slack for integer splits).
        assert!(
            max <= 8 * nonzero_min.max(1),
            "loads did not converge: max={max} min={nonzero_min} loads={loads:?}"
        );
        // The mean load is 16; max should be within a small factor.
        assert!(max <= 64, "max load {max} too far from mean 16");
    }

    #[test]
    fn apply_moves_ring_position() {
        let blocks: Vec<f64> = (0..8).map(|i| 0.55 + i as f64 * 0.04).collect();
        let (mut store, idx) = setup(&[0.5, 0.9], &blocks);
        let op = probe(
            &store.ring,
            &store,
            idx[0],
            idx[1],
            &BalanceConfig::default(),
        )
        .unwrap();
        assert!(apply_to_ring(&mut store.ring, &op));
        assert_eq!(store.ring.id_of(idx[0]), Some(op.new_id()));
        // Loads are now split roughly in half.
        let a = store.primary_load(idx[0]);
        let b = store.primary_load(idx[1]);
        assert_eq!(a + b, 8);
        assert!(a >= 3 && b >= 3, "split {a}/{b} should be near-even");
    }
}
